//! End-to-end integration: simulate a car, drive the tool with the
//! robotic clicker, sniff the bus, film the screen, reverse engineer, and
//! score against ground truth — the full paper loop across crates.

use dp_reverser::{evaluate, DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::Scheme;
use dpr_ocr::OcrChannel;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use dpr_vehicle::TransportKind;

fn scheme_for(id: CarId) -> Scheme {
    match profiles::spec(id).transport {
        TransportKind::IsoTp => Scheme::IsoTp,
        TransportKind::VwTp => Scheme::VwTp,
        TransportKind::BmwRaw => Scheme::BmwRaw,
    }
}

fn run_car(id: CarId, seed: u64, read_secs: u64) -> (dp_reverser::ReverseEngineeringResult, dpr_cps::CollectionReport) {
    let spec = profiles::spec(id);
    let car = profiles::build(id, seed);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).expect("Tab. 3 tool"));
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(read_secs),
            ..CollectConfig::default()
        },
    )
    .expect("collection succeeds");
    let pipeline = DpReverser::new(PipelineConfig::fast(scheme_for(id), seed));
    let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
    (result, report)
}

#[test]
fn uds_car_full_loop_reaches_high_precision() {
    // Car P (Honda Accord): 7 formula + 6 enum ESVs.
    let (result, report) = run_car(CarId::P, 42, 5);
    let precision = evaluate(&result, &report.vehicle);

    assert!(
        precision.formula_total >= 6,
        "recovered only {} of 7 formula ESVs",
        precision.formula_total
    );
    assert!(
        precision.formula_precision() >= 0.8,
        "precision {:.3}: {:#?}",
        precision.formula_precision(),
        precision
            .verdicts
            .iter()
            .filter(|v| !v.correct)
            .collect::<Vec<_>>()
    );
    assert!(precision.enum_total >= 5);
    assert_eq!(precision.enum_correct, precision.enum_total);
}

#[test]
fn kwp_car_over_vwtp_full_loop() {
    // Car C (VW Lavida): 5 formula ESVs over VW TP 2.0 + LAUNCH X431.
    let (result, report) = run_car(CarId::C, 7, 5);
    let precision = evaluate(&result, &report.vehicle);
    assert!(
        precision.formula_total >= 4,
        "recovered {} of 5",
        precision.formula_total
    );
    assert!(
        precision.formula_precision() >= 0.75,
        "{:#?}",
        precision.verdicts
    );
    // KWP recoveries carry their wire formula-type byte.
    assert!(result
        .esvs
        .iter()
        .all(|e| e.f_type.is_some() || !matches!(e.key, dpr_frames::SourceKey::Kwp { .. })));
}

#[test]
fn bmw_raw_car_full_loop() {
    // Car E (Mini Cooper R56): 5 formula + 4 enum over the raw scheme.
    let (result, report) = run_car(CarId::E, 11, 5);
    let precision = evaluate(&result, &report.vehicle);
    assert!(
        precision.formula_total + precision.enum_total >= 7,
        "recovered {} + {}",
        precision.formula_total,
        precision.enum_total
    );
    assert!(precision.formula_precision() >= 0.75);
}

#[test]
fn scheme_autodetection_matches_explicit_configuration() {
    // Deliberately configure the WRONG scheme; analyze_auto must detect
    // the right one from the capture and produce the same result as an
    // explicitly correct configuration.
    let spec = profiles::spec(CarId::C); // VW TP car
    let car = profiles::build(CarId::C, 19);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap();
    let misconfigured = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 19));
    let auto = misconfigured.analyze_auto(&report.log, &report.frames, None);
    let explicit = DpReverser::new(PipelineConfig::fast(Scheme::VwTp, 19))
        .analyze(&report.log, &report.frames, None);
    assert_eq!(auto, explicit);
    assert!(auto.formula_esvs().count() >= 4);
}

#[test]
fn kwp_formula_type_table_reconstructed() {
    // Car C (KWP): the recovered per-slot formulas, grouped by the wire
    // formula-type byte, reconstruct rows of the hidden manufacturer
    // table (dpr_protocol::kwp::FormulaTypeTable::standard).
    let (result, _report) = run_car(CarId::C, 7, 5);
    let table = result.kwp_formula_table();
    assert!(!table.is_empty(), "KWP car must yield table rows");
    let truth = dpr_protocol::kwp::FormulaTypeTable::standard();
    for (f_type, recovered, count) in &table {
        assert!(*count >= 1);
        let expected = truth.get(*f_type).expect("observed types exist in the table");
        // Spot-check the cleanest row shapes: identity and X0-40 families
        // canonicalize to exactly the table's form.
        if let dpr_protocol::EsvFormula::Linear { a, b } = expected {
            let want = dpr_protocol::EsvFormula::Linear { a: *a, b: *b }.to_string();
            assert_eq!(
                recovered, &want,
                "type 0x{f_type:02X}: recovered {recovered} vs table {want}"
            );
        }
    }
}

#[test]
fn semantics_recovered_for_most_esvs() {
    let (result, report) = run_car(CarId::P, 3, 4);
    let precision = evaluate(&result, &report.vehicle);
    let recovered = precision.verdicts.len();
    assert!(
        precision.semantics_correct * 10 >= recovered * 9,
        "semantics: {}/{recovered}",
        precision.semantics_correct
    );
}

#[test]
fn ocr_noise_tolerated_by_the_filter() {
    // Same car, but with a deliberately degraded OCR channel: the
    // two-stage filter plus GP robustness should still deliver.
    let id = CarId::M; // 4 formula ESVs — small and quick
    let spec = profiles::spec(id);
    let car = profiles::build(id, 9);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(6),
            ..CollectConfig::default()
        },
    )
    .unwrap();
    let mut config = PipelineConfig::fast(scheme_for(id), 9);
    config.ocr = OcrChannel::new(0.95, 9); // 5% of values corrupted
    let pipeline = DpReverser::new(config);
    let result = pipeline.analyze(&report.log, &report.frames, None);
    let precision = evaluate(&result, &report.vehicle);
    assert!(
        precision.formula_total >= 3,
        "recovered {}",
        precision.formula_total
    );
    assert!(
        precision.formula_precision() >= 0.7,
        "noisy precision {:.2}",
        precision.formula_precision()
    );
}
