//! Regression test: structured logging is observation, not
//! intervention. Turning on the stderr sink (at `debug`) and the
//! JSON-lines sink must not change pipeline output — same
//! `ReverseEngineeringResult`, down to its canonical JSON
//! serialization.
//!
//! Single `#[test]` function on purpose: the test mutates the global
//! logger's runtime sinks, and sibling tests in this binary would race
//! on them.

use dp_reverser::{DpReverser, PipelineConfig, ReverseEngineeringResult};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig, CollectionReport};
use dpr_frames::Scheme;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn quick_collect(id: CarId, seed: u64) -> CollectionReport {
    let car = profiles::build(id, seed);
    let spec = profiles::spec(id);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

fn analyze(seed: u64, report: &CollectionReport) -> ReverseEngineeringResult {
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));
    pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
}

fn canonical(mut result: ReverseEngineeringResult) -> String {
    // Clear the one wall-clock-carrying field (the stage trace) —
    // stage timings differ between *any* two runs, logged or not.
    result.trace = dpr_telemetry::PipelineTrace::default();
    dpr_telemetry::json::to_string(&result).unwrap()
}

/// One test fn on purpose — see module docs.
#[test]
fn logging_does_not_change_pipeline_output() {
    let json_path = std::env::temp_dir().join(format!(
        "dpr-log-identity-{}.jsonl",
        std::process::id()
    ));

    for (id, seed) in [(CarId::M, 5), (CarId::O, 13)] {
        let report = quick_collect(id, seed);

        dpr_log::set_stderr_level(None);
        dpr_log::set_json_path(None).expect("disable json sink");
        let off = analyze(seed, &report);

        dpr_log::set_stderr_level(Some(dpr_log::Level::Debug));
        dpr_log::set_json_path(Some(&json_path)).expect("enable json sink");
        let on = analyze(seed, &report);
        dpr_log::set_stderr_level(None);
        dpr_log::set_json_path(None).expect("disable json sink");

        assert_eq!(off, on, "{id:?}: result differs with logging on");
        assert_eq!(
            canonical(off),
            canonical(on),
            "{id:?}: canonical JSON differs with logging on"
        );

        // The logged run actually wrote its stage lines, so the
        // comparison above had teeth. (`set_json_path` truncates, so
        // the file holds exactly this iteration's records.)
        let logged = std::fs::read_to_string(&json_path).expect("json log written");
        let stage_lines = logged
            .lines()
            .filter(|l| {
                let record = dpr_log::Record::from_json(l).expect("log line parses");
                record.target == "pipeline" && record.message == "stage complete"
            })
            .count();
        assert!(
            stage_lines >= 4,
            "{id:?}: expected stage-complete lines from the logged run, got {stage_lines}"
        );
    }
    let _ = std::fs::remove_file(&json_path);
}
