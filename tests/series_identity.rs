//! Regression test: metrics-history sampling is observation, not
//! intervention. Running the pipeline with a live [`Sampler`] ticking
//! over its registry must not change pipeline output — same
//! `ReverseEngineeringResult`, down to its canonical JSON
//! serialization. The sampler only *reads* snapshots and publishes its
//! own `series.*` / `slo.*` bookkeeping metrics.
//!
//! Single `#[test]` function on purpose, matching `log_identity.rs`:
//! both runs scope the thread-local registry stack, and sibling tests
//! in this binary would interleave their scopes.

use dp_reverser::{DpReverser, PipelineConfig, ReverseEngineeringResult};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig, CollectionReport};
use dpr_frames::Scheme;
use dpr_series::{Sampler, SeriesConfig};
use dpr_telemetry::Registry;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use std::sync::Arc;
use std::time::Duration;

fn quick_collect(id: CarId, seed: u64) -> CollectionReport {
    let car = profiles::build(id, seed);
    let spec = profiles::spec(id);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

fn analyze(seed: u64, report: &CollectionReport) -> ReverseEngineeringResult {
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));
    pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
}

fn canonical(mut result: ReverseEngineeringResult) -> String {
    // Clear the one wall-clock-carrying field (the stage trace) —
    // stage timings differ between *any* two runs, sampled or not.
    result.trace = dpr_telemetry::PipelineTrace::default();
    dpr_telemetry::json::to_string(&result).unwrap()
}

/// One test fn on purpose — see module docs.
#[test]
fn sampling_does_not_change_pipeline_output() {
    for (id, seed) in [(CarId::M, 5), (CarId::O, 13)] {
        let report = quick_collect(id, seed);

        // Off: a fresh registry, no sampler watching it.
        let off_registry = Arc::new(Registry::new());
        let off = dpr_telemetry::scoped(Arc::clone(&off_registry), || analyze(seed, &report));

        // On: a fresh registry with a sampler ticking fast over it the
        // whole time the pipeline runs.
        let on_registry = Arc::new(Registry::new());
        let sampler = Sampler::start(
            Arc::clone(&on_registry),
            SeriesConfig {
                interval: Duration::from_millis(10),
                capacity: 512,
            },
            dpr_series::service_slos(8),
        );
        let on = dpr_telemetry::scoped(Arc::clone(&on_registry), || analyze(seed, &report));
        sampler.force_tick();

        // Teeth: the sampler really watched the analysis — it ticked,
        // and it tracked pipeline metrics beyond its own bookkeeping.
        let history = sampler.history();
        assert!(history.samples >= 2, "{id:?}: {history:?}");
        assert!(
            history
                .counters
                .keys()
                .any(|k| !k.starts_with("series.") && !k.starts_with("slo.")),
            "{id:?}: sampler saw no pipeline counters, only {:?}",
            history.counters.keys().collect::<Vec<_>>()
        );
        sampler.stop();

        assert_eq!(off, on, "{id:?}: result differs with sampling on");
        assert_eq!(
            canonical(off),
            canonical(on),
            "{id:?}: canonical JSON differs with sampling on"
        );
    }
}
