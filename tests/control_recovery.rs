//! ECR / IO-control integration (paper §4.5 and Tab. 11): active tests on
//! the Tab. 11 cars are driven by the collector, and the pipeline must
//! recover every control record, the three-message pattern, and the
//! component semantics.

use dp_reverser::{DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::{EcrTarget, Scheme};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use dpr_vehicle::TransportKind;

fn scheme_for(id: CarId) -> Scheme {
    match profiles::spec(id).transport {
        TransportKind::IsoTp => Scheme::IsoTp,
        TransportKind::VwTp => Scheme::VwTp,
        TransportKind::BmwRaw => Scheme::BmwRaw,
    }
}

fn recover_ecrs(id: CarId, seed: u64) -> (Vec<dp_reverser::RecoveredEcr>, usize) {
    let spec = profiles::spec(id);
    let car = profiles::build(id, seed);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(1),
            ..CollectConfig::default()
        },
    )
    .unwrap();
    let pipeline = DpReverser::new(PipelineConfig::fast(scheme_for(id), seed));
    let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
    (result.ecrs, spec.ecrs)
}

#[test]
fn uds_2f_car_recovers_all_ecrs() {
    // Car H: 6 ECRs over service 0x2F.
    let (ecrs, expected) = recover_ecrs(CarId::H, 3);
    assert_eq!(ecrs.len(), expected);
    assert!(ecrs.iter().all(|e| matches!(e.target, EcrTarget::Id2F(_))));
    assert!(
        ecrs.iter().all(|e| e.complete_pattern),
        "every procedure follows freeze/adjust/return: {ecrs:#?}"
    );
}

#[test]
fn service_30_car_recovers_all_ecrs() {
    // Car D (Lexus NX300): 5 ECRs over the 0x30 service.
    let (ecrs, expected) = recover_ecrs(CarId::D, 5);
    assert_eq!(ecrs.len(), expected);
    assert!(ecrs
        .iter()
        .all(|e| matches!(e.target, EcrTarget::Local30(_))));
}

#[test]
fn ecr_semantics_from_click_log() {
    let (ecrs, _) = recover_ecrs(CarId::O, 7);
    // Car O has 4 components with distinct names; each recovered ECR must
    // carry the clicked button's label.
    assert_eq!(ecrs.len(), 4);
    let mut labels: Vec<&str> = ecrs
        .iter()
        .map(|e| e.label.as_deref().expect("label recovered"))
        .collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), 4, "labels must be distinct: {labels:?}");
}

#[test]
fn control_state_bytes_recovered_verbatim() {
    let (ecrs, _) = recover_ecrs(CarId::O, 11);
    for e in &ecrs {
        // The tool sends a 4-byte control state (duration + selector +
        // padding, the paper's fog-light shape).
        assert_eq!(e.state.len(), 4, "{e:?}");
        assert_eq!(&e.state[2..], &[0x00, 0x00]);
    }
}

#[test]
fn bmw_raw_car_recovers_ecrs_over_service_30() {
    // Car J (BMW 532Li): 27 ECRs over 0x30 on the raw transport.
    let (ecrs, expected) = recover_ecrs(CarId::J, 13);
    assert_eq!(ecrs.len(), expected);
}
