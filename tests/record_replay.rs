//! Record-then-replay determinism: a capture recorded from a live
//! collection run, replayed offline through
//! `DpReverser::analyze_capture`, must reproduce the live
//! `ReverseEngineeringResult` **bit for bit** — same recovered ESVs and
//! formulas, same ECRs, same stats — across multiple car profiles and
//! transport schemes. This is the contract that makes golden-trace
//! regression corpora possible: analysis never needs the simulator the
//! capture came from.

use dp_reverser::{CaptureReader, CaptureWriter, DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_capture::record_report;
use dpr_cps::{collect_vehicle, CollectConfig, CollectionReport};
use dpr_frames::Scheme;
use dpr_telemetry::json;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn quick_collect(id: CarId, seed: u64) -> CollectionReport {
    let car = profiles::build(id, seed);
    let spec = profiles::spec(id);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

/// The result serialized to JSON with the observability trace zeroed
/// out — wall-clock times differ run to run by nature; everything else
/// must match to the byte. Delegates to the shared canonical form so
/// this test and the analysis service compare through one code path.
fn canonical_json(result: &dp_reverser::ReverseEngineeringResult) -> String {
    result.canonical_json()
}

#[test]
fn replayed_capture_matches_live_run_bit_for_bit() {
    // Car M (IsoTp, formula + enum ESVs) and Car O (IsoTp, ECR
    // recovery with an execution log) — together they cover every
    // record kind a capture carries.
    for (id, seed) in [(CarId::M, 5), (CarId::O, 13)] {
        let report = quick_collect(id, seed);
        let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));
        let live = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));

        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        writer.write_meta("car", &format!("{id:?}")).unwrap();
        record_report(&report, &mut writer).unwrap();
        let bytes = writer.finish().unwrap();

        let reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let replayed = pipeline.analyze_capture(reader);

        assert_eq!(live, replayed, "car {id:?}: replay diverged from live");
        assert_eq!(
            canonical_json(&live),
            canonical_json(&replayed),
            "car {id:?}: serialized results must be byte-identical"
        );
        // The runs actually recovered something — this is not a
        // vacuous equality between two empty results.
        assert!(
            live.esvs.len() >= 3,
            "car {id:?} recovered only {} ESVs",
            live.esvs.len()
        );

        // The evidence ledger is part of the replay contract too: the
        // chains are built from simulation-clock data only, so the
        // live ledger and the replayed one must serialize to the same
        // bytes — and must not be vacuously empty.
        assert_eq!(
            live.evidence, replayed.evidence,
            "car {id:?}: evidence ledger diverged between live and replay"
        );
        assert_eq!(
            json::to_string(&live.evidence).unwrap(),
            json::to_string(&replayed.evidence).unwrap(),
            "car {id:?}: serialized evidence must be byte-identical"
        );
        assert_eq!(
            live.evidence.chains.len(),
            live.esvs.len(),
            "car {id:?}: every recovered ESV carries one evidence chain"
        );
        for chain in &live.evidence.chains {
            assert!(
                !chain.samples.is_empty(),
                "car {id:?} sensor {} has no bus samples",
                chain.sensor
            );
            assert!(
                !chain.candidates.is_empty(),
                "car {id:?} sensor {} has no alignment candidates",
                chain.sensor
            );
        }
    }
}

#[test]
fn replay_survives_mid_capture_damage() {
    // Scribbling over a chunk of the capture must cost some events but
    // never the replay: analysis still runs end to end on what's left.
    let report = quick_collect(CarId::M, 5);
    let mut writer = CaptureWriter::new(Vec::new()).unwrap();
    record_report(&report, &mut writer).unwrap();
    let mut bytes = writer.finish().unwrap();

    let start = bytes.len() / 3;
    for b in &mut bytes[start..start + 200] {
        *b ^= 0x55;
    }

    let reader = CaptureReader::new(bytes.as_slice()).unwrap();
    let (session, stats) = reader.read_session();
    assert!(stats.skipped() > 0, "damage must be tallied: {stats:?}");
    assert!(stats.resyncs > 0);
    assert!(!session.log.is_empty(), "most of the capture must survive");

    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 5));
    let result = pipeline.analyze_replay(&session);
    assert!(result.stats.total() > 0);
}
