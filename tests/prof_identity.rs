//! Regression test: profiling is observation, not intervention.
//! `DPR_PROF=1` turns on allocation attribution in `dpr-prof` and makes
//! `dpr-par` record heap deltas into its call profiles, but the pipeline
//! output must be byte-identical with it on or off — same
//! `ReverseEngineeringResult`, down to its canonical JSON serialization.
//!
//! Single `#[test]` function on purpose: the test mutates the
//! `DPR_PROF` process environment, and sibling tests in this binary
//! would race on it.

use dp_reverser::{DpReverser, PipelineConfig, ReverseEngineeringResult};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig, CollectionReport};
use dpr_frames::Scheme;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn quick_collect(id: CarId, seed: u64) -> CollectionReport {
    let car = profiles::build(id, seed);
    let spec = profiles::spec(id);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

fn analyze(seed: u64, report: &CollectionReport) -> ReverseEngineeringResult {
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));
    pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
}

/// One test fn on purpose — see module docs.
#[test]
fn profiling_does_not_change_pipeline_output() {
    let restore = std::env::var(dpr_prof::PROF_ENV).ok();

    // The same two Tab. 3 car profiles the thread-count determinism test
    // uses: Car M (formula + enum ESVs) and Car O (ECR recovery).
    for (id, seed) in [(CarId::M, 5), (CarId::O, 13)] {
        let report = quick_collect(id, seed);

        std::env::remove_var(dpr_prof::PROF_ENV);
        let off = analyze(seed, &report);
        assert!(
            !dpr_prof::enabled(),
            "profiling should be off with {} unset",
            dpr_prof::PROF_ENV
        );

        std::env::set_var(dpr_prof::PROF_ENV, "1");
        let on = analyze(seed, &report);
        assert!(
            dpr_prof::enabled(),
            "the run above should have refreshed {}=1",
            dpr_prof::PROF_ENV
        );

        assert_eq!(off, on, "{id:?}: result differs with {}=1", dpr_prof::PROF_ENV);
        // Byte-level identity: serialize both results with the one
        // wall-clock-carrying field (the stage trace) cleared — stage
        // timings differ between *any* two runs, profiled or not.
        let (mut off, mut on) = (off, on);
        off.trace = dpr_telemetry::PipelineTrace::default();
        on.trace = dpr_telemetry::PipelineTrace::default();
        let off_json = dpr_telemetry::json::to_string(&off).unwrap();
        let on_json = dpr_telemetry::json::to_string(&on).unwrap();
        assert_eq!(
            off_json, on_json,
            "{id:?}: canonical JSON differs with {}=1",
            dpr_prof::PROF_ENV
        );
        // The profiled run actually recorded pool calls, so the
        // comparison above had teeth.
        assert!(dpr_prof::snapshot().total_calls > 0);
    }

    match restore {
        Some(v) => std::env::set_var(dpr_prof::PROF_ENV, v),
        None => std::env::remove_var(dpr_prof::PROF_ENV),
    }
}
