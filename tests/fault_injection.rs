//! Fault injection: the analysis pipeline must degrade gracefully — never
//! panic, keep whatever is recoverable — when the capture is damaged
//! (dropped frames, truncated capture, corrupted bytes). A sniffer in a
//! car has no flow control over reality.

use dp_reverser::{DpReverser, PipelineConfig};
use dpr_can::{BusLog, CanFrame, Micros};
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::{analyze_capture, Scheme};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn collect(id: CarId, seed: u64) -> dpr_cps::CollectionReport {
    let spec = profiles::spec(id);
    let car = profiles::build(id, seed);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

/// Drops every frame whose hash falls under `permille`.
fn drop_frames(log: &BusLog, permille: u64, seed: u64) -> BusLog {
    log.iter()
        .enumerate()
        .filter(|(i, _)| splitmix(seed ^ *i as u64) % 1000 >= permille)
        .map(|(_, e)| e.clone())
        .collect()
}

/// Corrupts one byte in a fraction of frames.
fn corrupt_frames(log: &BusLog, permille: u64, seed: u64) -> BusLog {
    log.iter()
        .enumerate()
        .map(|(i, e)| {
            let h = splitmix(seed ^ (i as u64) << 1);
            if h % 1000 < permille && !e.frame.data().is_empty() {
                let mut data = e.frame.data().to_vec();
                let pos = (h >> 10) as usize % data.len();
                data[pos] ^= (h >> 20) as u8 | 1;
                dpr_can::TimestampedFrame {
                    at: e.at,
                    frame: CanFrame::new(e.frame.id(), &data).unwrap(),
                }
            } else {
                e.clone()
            }
        })
        .collect()
}

#[test]
fn pipeline_survives_two_percent_frame_loss() {
    let report = collect(CarId::P, 17);
    let lossy = drop_frames(&report.log, 20, 99); // 2% loss
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 17));
    let clean = pipeline.analyze(&report.log, &report.frames, None);
    let damaged = pipeline.analyze(&lossy, &report.frames, None);
    // Nothing panicked, and most of the protocol is still recovered.
    assert!(
        damaged.esvs.len() * 10 >= clean.esvs.len() * 6,
        "lossy: {} vs clean: {}",
        damaged.esvs.len(),
        clean.esvs.len()
    );
}

#[test]
fn pipeline_survives_byte_corruption() {
    let report = collect(CarId::M, 23);
    let corrupted = corrupt_frames(&report.log, 30, 5); // 3% of frames
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 23));
    let result = pipeline.analyze(&corrupted, &report.frames, None);
    assert!(
        !result.esvs.is_empty(),
        "some signals must survive byte corruption"
    );
}

#[test]
fn frames_analysis_total_on_heavily_damaged_captures() {
    // 30% loss and 20% corruption together: the analysis must stay total
    // for every scheme.
    for (id, scheme) in [
        (CarId::P, Scheme::IsoTp),
        (CarId::C, Scheme::VwTp),
        (CarId::E, Scheme::BmwRaw),
    ] {
        let report = collect(id, 31);
        let mangled = corrupt_frames(&drop_frames(&report.log, 300, 7), 200, 11);
        let analysis = analyze_capture(&mangled, scheme);
        // Tally covers every surviving frame.
        assert_eq!(analysis.stats.total(), mangled.len(), "{id:?}");
    }
}

#[test]
fn truncated_capture_is_fine() {
    let report = collect(CarId::P, 41);
    let half: BusLog = report
        .log
        .iter()
        .take(report.log.len() / 2)
        .cloned()
        .collect();
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 41));
    let result = pipeline.analyze(&half, &report.frames, None);
    // Half the traffic still pairs with the (full) video for the rows that
    // were polled in the first half.
    assert!(result.stats.total() > 0);
}

#[test]
fn empty_inputs_yield_empty_results() {
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 1));
    let result = pipeline.analyze(&BusLog::new(), &[], None);
    assert!(result.esvs.is_empty());
    assert!(result.ecrs.is_empty());
    assert_eq!(result.stats.total(), 0);
}
