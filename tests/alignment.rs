//! Clock-alignment integration (paper §9.4): the camera clock is skewed
//! against the bus clock; the pipeline must estimate and undo the offset
//! before pairing (X, Y) samples, using decodable OBD-II traffic.

use dp_reverser::{Alignment, DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_cps::clock::{align_by_obd, ntp_sync, SkewedClock};
use dpr_frames::Scheme;
use dpr_ocr::{read_frames, OcrChannel};
use dpr_tool::database::obd_database;
use dpr_tool::{ToolProfile, ToolSession, UiFrame};
use dpr_vehicle::profiles::{self, CarId};

/// Collects an OBD app session and returns (log, frames).
fn obd_session(seed: u64) -> (dpr_can::BusLog, Vec<UiFrame>) {
    let car = profiles::build(CarId::L, seed);
    let (req, rsp) = car.obd_ids().expect("profile cars expose OBD-II");
    let db = obd_database("Simulator", req, rsp);
    let mut session = ToolSession::with_database(car, ToolProfile::chevrosys_app(), db);
    session.tool_mut().goto_data_stream(0, 0);
    session.wait(Micros::from_secs(8)).unwrap();
    let (log, frames, _) = session.into_artifacts();
    (log, frames)
}

/// Applies a camera-clock offset to recorded frames.
fn skew_frames(frames: &[UiFrame], clock: SkewedClock) -> Vec<UiFrame> {
    frames
        .iter()
        .map(|f| {
            let mut shot = f.screenshot.clone();
            shot.at = clock.to_local(shot.at);
            UiFrame {
                at: clock.to_local(f.at),
                screenshot: shot,
            }
        })
        .collect()
}

#[test]
fn obd_alignment_estimates_camera_offset() {
    let (log, frames) = obd_session(3);
    let true_offset: i64 = 1_250_000; // camera 1.25 s ahead of the bus
    let skewed = skew_frames(&frames, SkewedClock::with_offset_us(true_offset));

    let readings = read_frames(&skewed, &OcrChannel::perfect());
    let estimated = align_by_obd(&log, &readings).expect("OBD traffic must match");
    assert!(
        (estimated - true_offset).abs() < 400_000,
        "estimated {estimated} vs true {true_offset}"
    );
}

#[test]
fn pipeline_with_obd_alignment_still_infers_formulas() {
    let (log, frames) = obd_session(5);
    let true_offset: i64 = 900_000;
    let skewed = skew_frames(&frames, SkewedClock::with_offset_us(true_offset));

    let mut config = PipelineConfig::fast(Scheme::IsoTp, 5);
    config.align = Alignment::ByObd;
    let result = DpReverser::new(config).analyze(&log, &skewed, None);
    assert!(
        (result.alignment_offset_us - true_offset).abs() < 400_000,
        "pipeline estimated {}",
        result.alignment_offset_us
    );
    assert!(
        result.formula_esvs().count() >= 5,
        "only {} formulas under skew",
        result.formula_esvs().count()
    );
}

#[test]
fn misaligned_clocks_without_correction_hurt() {
    // With a large uncorrected offset, pairing fails (or produces garbage)
    // — demonstrating why §9.4 exists.
    let (log, frames) = obd_session(7);
    let skewed = skew_frames(&frames, SkewedClock::with_offset_us(20_000_000));
    let mut config = PipelineConfig::fast(Scheme::IsoTp, 7);
    config.align = Alignment::None;
    let result = DpReverser::new(config).analyze(&log, &skewed, None);
    let aligned_count = {
        let mut config = PipelineConfig::fast(Scheme::IsoTp, 7);
        config.align = Alignment::ByObd;
        DpReverser::new(config)
            .analyze(&log, &skewed, None)
            .formula_esvs()
            .count()
    };
    assert!(
        result.formula_esvs().count() < aligned_count || aligned_count == 0,
        "unaligned {} vs aligned {aligned_count}",
        result.formula_esvs().count()
    );
}

#[test]
fn ntp_alignment_is_an_alternative() {
    // §9.4 method 1: simulate the NTP estimate and hand it to the
    // pipeline as a fixed offset.
    let (log, frames) = obd_session(9);
    let true_offset: i64 = 2_000_000;
    let skewed = skew_frames(&frames, SkewedClock::with_offset_us(true_offset));
    let estimated = ntp_sync(true_offset, Micros::from_millis(8), 1);

    let mut config = PipelineConfig::fast(Scheme::IsoTp, 9);
    config.align = Alignment::FixedOffset(estimated.offset_us);
    let result = DpReverser::new(config).analyze(&log, &skewed, None);
    assert!(result.formula_esvs().count() >= 5);
}
