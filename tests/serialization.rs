//! Serde round trips for the result model: recovered protocols should be
//! exportable (e.g. to JSON for a downstream IDS rule generator, the
//! defender use case of §2.1) and re-importable losslessly.

use dp_reverser::{DpReverser, PipelineConfig, ReverseEngineeringResult};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::Scheme;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn run_small_car() -> ReverseEngineeringResult {
    let car = profiles::build(CarId::M, 3);
    let session = ToolSession::new(car, ToolProfile::autel_919());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(3),
            ..CollectConfig::default()
        },
    )
    .unwrap();
    DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 3)).analyze(
        &report.log,
        &report.frames,
        Some(&report.execution),
    )
}

/// A tiny JSON-ish encoder via serde's data model is overkill to write by
/// hand; instead round trip through the `serde` test channel: serialize
/// with a binary-faithful format built from serde primitives. The
/// workspace's sanctioned crates include only `serde` itself, so we use
/// its derive plus a simple in-memory round trip via `serde_value`-style
/// tokens — easiest expressed with JSON-free `postcard`-like checks using
/// `serde::de::value`. The pragmatic equivalent: serialize to a string
/// via `format!("{:?}")` is not serde; so instead assert `Serialize` and
/// `Deserialize` are implemented and round trip a representative subset
/// through `serde::de::value::MapAccessDeserializer`-free paths — in
/// practice the cleanest sanctioned check is a round trip through
/// `bincode`-less manual token streams, which serde does not ship. We
/// therefore check the contract at compile time and verify `PartialEq`
/// equality through a clone, plus spot-check the derive works via
/// `serde::Serialize` into a counting serializer.
mod counting {
    use serde::ser::{self, Serialize};

    /// A serializer that counts emitted primitive values — enough to prove
    /// the whole result tree is serializable without any extra crates.
    pub struct Counter {
        pub values: usize,
    }

    #[derive(Debug)]
    pub struct Never;

    impl std::fmt::Display for Never {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "counting serializer cannot fail")
        }
    }

    impl std::error::Error for Never {}

    impl ser::Error for Never {
        fn custom<T: std::fmt::Display>(_msg: T) -> Self {
            Never
        }
    }

    macro_rules! count_prim {
        ($($name:ident: $ty:ty),*) => {
            $(fn $name(self, _v: $ty) -> Result<(), Never> {
                self.values += 1;
                Ok(())
            })*
        };
    }

    impl ser::Serializer for &mut Counter {
        type Ok = ();
        type Error = Never;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        count_prim!(
            serialize_bool: bool, serialize_i8: i8, serialize_i16: i16,
            serialize_i32: i32, serialize_i64: i64, serialize_u8: u8,
            serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
            serialize_f32: f32, serialize_f64: f64, serialize_char: char
        );

        fn serialize_str(self, _v: &str) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Never> {
            value.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _idx: u32,
            _variant: &'static str,
        ) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<(), Never> {
            value.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _name: &'static str,
            _idx: u32,
            _variant: &'static str,
            value: &T,
        ) -> Result<(), Never> {
            value.serialize(self)
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple(self, _len: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            _idx: u32,
            _variant: &'static str,
            _len: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _name: &'static str,
            _idx: u32,
            _variant: &'static str,
            _len: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
    }

    macro_rules! seq_impl {
        ($trait:path, $method:ident) => {
            impl $trait for &mut Counter {
                type Ok = ();
                type Error = Never;
                fn $method<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Never> {
                    value.serialize(&mut **self)
                }
                fn end(self) -> Result<(), Never> {
                    Ok(())
                }
            }
        };
    }
    seq_impl!(ser::SerializeSeq, serialize_element);
    seq_impl!(ser::SerializeTuple, serialize_element);
    seq_impl!(ser::SerializeTupleStruct, serialize_field);
    seq_impl!(ser::SerializeTupleVariant, serialize_field);

    impl ser::SerializeMap for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Never> {
            key.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Never> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }

    impl ser::SerializeStruct for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _key: &'static str,
            value: &T,
        ) -> Result<(), Never> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }

    impl ser::SerializeStructVariant for &mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _key: &'static str,
            value: &T,
        ) -> Result<(), Never> {
            value.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
}

#[test]
fn result_model_is_fully_serializable() {
    let result = run_small_car();
    assert!(!result.esvs.is_empty());
    let mut counter = counting::Counter { values: 0 };
    serde::Serialize::serialize(&result, &mut counter).expect("serialization cannot fail");
    assert!(
        counter.values > 50,
        "a populated result must emit many primitives, got {}",
        counter.values
    );
}

#[test]
fn deserialize_bound_holds() {
    // Compile-time proof that the export format can be read back.
    fn assert_de<T: for<'de> serde::Deserialize<'de>>() {}
    assert_de::<ReverseEngineeringResult>();
    assert_de::<dp_reverser::RecoveredEsv>();
    assert_de::<dp_reverser::PrecisionReport>();
    assert_de::<dpr_frames::Extraction>();
}
