//! Regression test: the full pipeline is bit-identical under parallel
//! and sequential GP fitness scoring. `DpReverser::analyze` with
//! `DPR_THREADS=1` must equal `DPR_THREADS=N` — same
//! `ReverseEngineeringResult`, same GP error trajectories, same
//! telemetry counters — because all randomness stays in the sequential
//! breeding phase and parallel scoring preserves index order. The
//! scoring-path optimizations layered on top (`DPR_GP_DEDUP` subtree
//! dedup, `DPR_GP_BATCH` dispatch policy) must also leave the result
//! untouched at any thread count.
//!
//! Single `#[test]` function on purpose: the test mutates the
//! `DPR_THREADS` / `DPR_GP_DEDUP` / `DPR_GP_BATCH` process
//! environment, and sibling tests in this binary would race on it.

use dp_reverser::{DpReverser, PipelineConfig, ReverseEngineeringResult};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig, CollectionReport};
use dpr_frames::Scheme;
use dpr_telemetry::{MetricsSnapshot, Registry};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use std::sync::Arc;

fn quick_collect(id: CarId, seed: u64) -> CollectionReport {
    let car = profiles::build(id, seed);
    let spec = profiles::spec(id);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )
    .unwrap()
}

/// Analyzes inside a private telemetry scope and returns the result
/// together with the run's metrics.
fn analyze_scoped(
    seed: u64,
    report: &CollectionReport,
) -> (ReverseEngineeringResult, MetricsSnapshot) {
    let registry = Arc::new(Registry::new());
    let result = dpr_telemetry::scoped(Arc::clone(&registry), || {
        let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));
        pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
    });
    (result, registry.snapshot())
}

/// Strips the wall-clock-dependent metrics: `span.*` duration
/// histograms, the scheduling-dependent `par.*` / `prof.*` pool
/// accounting, and the `gp.evals_per_sec` throughput gauge. Everything
/// else — counters, the `gp.best_error_trajectory` histogram, SDU-size
/// histograms — must match exactly across thread counts.
///
/// With `same_dedup_config: false` the `gp.dedup_*` counters are also
/// dropped: they count cache behaviour, which legitimately differs
/// between dedup-on and dedup-off runs (both are still required to be
/// thread-count-invariant, which the `same_dedup_config: true`
/// comparisons check).
fn deterministic_view(snapshot: &MetricsSnapshot, same_dedup_config: bool) -> MetricsSnapshot {
    let mut view = snapshot.without_prefixes(&["span.", "par.", "prof."]);
    view.gauges.remove("gp.evals_per_sec");
    if !same_dedup_config {
        view.counters.remove("gp.dedup_hits");
        view.counters.remove("gp.dedup_distinct");
    }
    view
}

/// One test fn on purpose — see module docs.
#[test]
fn analyze_is_bit_identical_across_thread_counts() {
    let parallel = std::env::var("DPR_THREADS")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| "4".to_string());
    let restore: Vec<(&str, Option<String>)> =
        ["DPR_THREADS", dpr_gp::dedup::DEDUP_ENV, dpr_gp::BATCH_ENV]
            .iter()
            .map(|k| (*k, std::env::var(k).ok()))
            .collect();
    let set_gp_config = |dedup: &str, batch: &str| {
        std::env::set_var(dpr_gp::dedup::DEDUP_ENV, dedup);
        std::env::set_var(dpr_gp::BATCH_ENV, batch);
    };

    // Two Tab. 3 car profiles: Car M (formula + enum ESVs) and Car O
    // (ECR recovery) — together they exercise every analyze stage.
    for (id, seed) in [(CarId::M, 5), (CarId::O, 13)] {
        let report = quick_collect(id, seed);

        set_gp_config("1", "auto");
        std::env::set_var("DPR_THREADS", "1");
        let (seq_result, seq_metrics) = analyze_scoped(seed, &report);
        std::env::set_var("DPR_THREADS", &parallel);
        let (par_result, par_metrics) = analyze_scoped(seed, &report);

        assert_eq!(
            seq_result, par_result,
            "{id:?}: result differs between 1 and {parallel} threads"
        );
        assert_eq!(
            deterministic_view(&seq_metrics, true),
            deterministic_view(&par_metrics, true),
            "{id:?}: telemetry (GP error trajectories, counters) differs"
        );
        // The GP actually ran, so the comparison above had teeth.
        assert!(seq_metrics.counters.get("gp.fits").copied().unwrap_or(0) > 0);
        assert!(seq_metrics.histograms.contains_key("gp.best_error_trajectory"));

        // Scoring-path knobs: dedup off + always-pool batching, and
        // dedup on + always-pool, both at the parallel thread count,
        // must reproduce the sequential default-config result exactly.
        for (dedup, batch) in [("0", "0"), ("1", "0")] {
            set_gp_config(dedup, batch);
            let (alt_result, alt_metrics) = analyze_scoped(seed, &report);
            assert_eq!(
                seq_result, alt_result,
                "{id:?}: result differs with dedup={dedup} batch={batch}"
            );
            let same_dedup = dedup == "1";
            assert_eq!(
                deterministic_view(&seq_metrics, same_dedup),
                deterministic_view(&alt_metrics, same_dedup),
                "{id:?}: telemetry differs with dedup={dedup} batch={batch}"
            );
        }
    }

    for (key, value) in restore {
        match value {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }
}
