//! SecurityAccess (UDS 0x27) integration — the paper's §6 "seed-key"
//! extension surface: security-gated actuators require the handshake, the
//! professional tool performs it transparently (it ships the algorithm),
//! the pipeline records the handshakes without cracking them, and a naive
//! replay attacker is stopped by it.

use dp_reverser::{DpReverser, PipelineConfig};
use dpr_can::{CanBus, Micros};
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::{analyze_capture, Scheme};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_transport::isotp::IsoTpEndpoint;
use dpr_transport::Endpoint;
use dpr_vehicle::ecu::ComponentKey;
use dpr_vehicle::profiles::{self, CarId};
use dpr_vehicle::run_exchange;

/// Car N (Kia k2): 21 components over UDS 0x2F, every third secured.
const CAR: CarId = CarId::N;

#[test]
fn tool_unlocks_and_drives_secured_components() {
    let car = profiles::build(CAR, 33);
    let secured: Vec<ComponentKey> = car
        .ecus()
        .iter()
        .flat_map(|e| {
            e.component_keys()
                .filter(|&k| e.is_secured(k))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(secured.len(), 7, "every third of 21 components is secured");

    let session = ToolSession::new(car, ToolProfile::autel_919());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(1),
            ..CollectConfig::default()
        },
    )
    .unwrap();

    // The professional tool performed the handshake and drove everything,
    // secured components included.
    for key in &secured {
        let adjusted = report
            .vehicle
            .ecus()
            .filter_map(|e| e.component(*key))
            .any(|c| c.was_adjusted());
        assert!(adjusted, "{key:?} should be driven after unlock");
    }

    // The capture contains the seed-key handshakes (one seed request and
    // one key per secured test at minimum).
    let analysis = analyze_capture(&report.log, Scheme::IsoTp);
    assert!(
        analysis.extraction.security_handshakes >= secured.len(),
        "expected >= {} handshake messages, saw {}",
        secured.len(),
        analysis.extraction.security_handshakes
    );

    // And the pipeline still recovers all 21 ECRs.
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 33));
    let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
    assert_eq!(result.ecrs.len(), 21);
}

#[test]
fn naive_replay_is_stopped_by_security_gate() {
    // The attacker replays a recovered control procedure byte for byte —
    // without the handshake — at a fresh vehicle. The secured component
    // must reject with NRC 0x33 and stay unmoved.
    let car = profiles::build(CAR, 33);
    let (ecu_req, ecu_rsp, secured_key) = car
        .ecus()
        .iter()
        .find_map(|e| {
            e.component_keys()
                .find(|&k| e.is_secured(k))
                .map(|k| (e.request_id(), e.response_id(), k))
        })
        .expect("car N has secured components");
    let ComponentKey::UdsDid(did) = secured_key else {
        panic!("car N components are UDS-addressed");
    };

    let mut bus = CanBus::new();
    let dongle_node = bus.attach("attacker");
    let mut victim = car.attach(&mut bus);
    let mut dongle = IsoTpEndpoint::new(ecu_req, ecu_rsp);

    for req in dpr_protocol::uds::io_control_procedure(did, vec![0x05, 0x01, 0x00, 0x00]) {
        dongle.send(&req.encode(), bus.now()).unwrap();
        run_exchange(&mut bus, dongle_node, &mut dongle, &mut victim).unwrap();
        let rsp = dongle.receive().expect("ECU answers");
        assert_eq!(rsp, vec![0x7F, 0x2F, 0x33], "must be rejected with NRC 0x33");
    }
    let moved = victim
        .ecus()
        .filter_map(|e| e.component(secured_key))
        .any(|c| c.was_adjusted());
    assert!(!moved, "the secured component must not actuate");
}

#[test]
fn replay_with_extracted_seed_key_algorithm_succeeds() {
    // With the algorithm lifted from the tool, the same attacker unlocks
    // first and then the replay goes through (paper threat model §2.1).
    let car = profiles::build(CAR, 33);
    let (ecu_req, ecu_rsp, secured_key, secret) = car
        .ecus()
        .iter()
        .find_map(|e| {
            e.component_keys()
                .find(|&k| e.is_secured(k))
                .map(|k| (e.request_id(), e.response_id(), k, e.security_secret.unwrap()))
        })
        .expect("car N has secured components");
    let ComponentKey::UdsDid(did) = secured_key else {
        panic!("car N components are UDS-addressed");
    };

    let mut bus = CanBus::new();
    let dongle_node = bus.attach("attacker");
    let mut victim = car.attach(&mut bus);
    let mut dongle = IsoTpEndpoint::new(ecu_req, ecu_rsp);

    // Handshake.
    dongle.send(&[0x27, 0x01], bus.now()).unwrap();
    run_exchange(&mut bus, dongle_node, &mut dongle, &mut victim).unwrap();
    let seed_rsp = dongle.receive().unwrap();
    assert_eq!(seed_rsp[0], 0x67);
    let key = (u16::from_be_bytes([seed_rsp[2], seed_rsp[3]]) ^ secret).to_be_bytes();
    dongle.send(&[0x27, 0x02, key[0], key[1]], bus.now()).unwrap();
    run_exchange(&mut bus, dongle_node, &mut dongle, &mut victim).unwrap();
    assert_eq!(dongle.receive().unwrap(), vec![0x67, 0x02]);

    // Replay.
    for req in dpr_protocol::uds::io_control_procedure(did, vec![0x05, 0x01, 0x00, 0x00]) {
        dongle.send(&req.encode(), bus.now()).unwrap();
        run_exchange(&mut bus, dongle_node, &mut dongle, &mut victim).unwrap();
        let rsp = dongle.receive().expect("ECU answers");
        assert_eq!(rsp[0], 0x6F, "accepted after unlock: {rsp:02X?}");
    }
    let moved = victim
        .ecus()
        .filter_map(|e| e.component(secured_key))
        .any(|c| c.was_adjusted());
    assert!(moved);
}
