//! KWP 2000 over VW TP 2.0: the paper's Car K (Volkswagen Passat).
//!
//! ```text
//! cargo run --release --example kwp_passat
//! ```
//!
//! Car K is the paper's richest KWP 2000 car (41 formula ESVs, Tab. 6)
//! and one of the four dashboard-validation cars (Tab. 7: GP recovers
//! `Y = X0·X1/5` for the engine speed). This example reverse engineers
//! it and cross-checks the dashboard signal — the paper's independent
//! ground truth.

use dp_reverser::{evaluate, DpReverser, PipelineConfig, RecoveredKind};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::{Scheme, SourceKey};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::ecu::EsvId;
use dpr_vehicle::profiles::{self, CarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 77;
    let car = profiles::build(CarId::K, seed);
    println!("== Car K: {} (KWP 2000 over VW TP 2.0) ==\n", car.name());

    let session = ToolSession::new(car, ToolProfile::autel_919());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(6),
            ..CollectConfig::default()
        },
    )?;
    println!(
        "capture: {} frames across {} distinct CAN ids",
        report.log.len(),
        report.log.distinct_ids().len()
    );

    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::VwTp, seed));
    let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
    println!(
        "frame mix: {:.1}% single / {:.1}% multi (paper Tab. 9 KWP row: 24.8% / 75.2%)",
        result.stats.single_share() * 100.0,
        result.stats.multi_share() * 100.0
    );

    // Group recovered formulas by their wire formula-type byte — the
    // KWP-specific reverse-engineering target.
    println!("\nrecovered measuring-block formulas (by formula-type byte):");
    let mut by_type: std::collections::BTreeMap<u8, Vec<&dp_reverser::RecoveredEsv>> =
        Default::default();
    for esv in result.esvs.iter().filter(|e| e.has_formula()) {
        if let Some(ft) = esv.f_type {
            by_type.entry(ft).or_default().push(esv);
        }
    }
    for (ft, esvs) in &by_type {
        println!("  F_type 0x{ft:02X}:");
        for esv in esvs {
            println!(
                "    {:26} {} => {}",
                format!("{}", esv.key),
                esv.label,
                esv.pretty_formula()
            );
        }
    }

    // Dashboard validation (Tab. 7): the dashboard-mirrored engine speed.
    let dash = &report.vehicle.dashboard()[0];
    let EsvId::Kwp { local_id, slot } = dash.id else {
        unreachable!("Car K's dashboard signal is a KWP slot");
    };
    let key = SourceKey::Kwp {
        local_id: local_id.0,
        slot,
    };
    if let Some(esv) = result.esvs.iter().find(|e| e.key == key) {
        if let RecoveredKind::Formula(model) = &esv.kind {
            let t = Micros::from_secs(30);
            let dashboard_value = report.vehicle.true_value(dash.id, t).unwrap();
            println!("\ndashboard validation ({}):", dash.label);
            println!("  recovered formula: {model}");
            println!("  dashboard shows {dashboard_value:.1} rpm at t=30s");
            println!(
                "  ground truth (hidden from the pipeline): Y = X0*X1/5 — paper Tab. 7 Car K"
            );
        }
    }

    // The reconstructed manufacturer formula-type table — the paper's
    // third KWP target.
    println!("\nreconstructed formula-type table:");
    for (f_type, formula, count) in result.kwp_formula_table() {
        println!("  0x{f_type:02X} ({count} slots): {formula}");
    }

    let precision = evaluate(&result, &report.vehicle);
    println!(
        "\nprecision: {}/{} formulas correct ({:.1}%) — paper Tab. 6 Car K: 41/41",
        precision.formula_correct,
        precision.formula_total,
        precision.formula_precision() * 100.0
    );
    Ok(())
}
