//! Quickstart: reverse engineer one simulated vehicle end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's Car O (Ford Kuga: 18 formula ESVs, 9 enumerations,
//! 4 active tests), lets the robotic clicker drive the AUTEL 919 through
//! every ECU, reverse engineers the capture, and prints the recovered
//! protocol next to the ground truth.

use dp_reverser::{evaluate, DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::Scheme;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 42;
    let id = CarId::O;
    let spec = profiles::spec(id);
    println!("== DP-Reverser quickstart ==");
    println!("car: {} ({id}), tool: {}, seed {seed}\n", spec.model, spec.tool);

    // 1. Simulate the car and let the CPS collect data.
    let car = profiles::build(id, seed);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).expect("known tool"));
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(8),
            ..CollectConfig::default()
        },
    )?;
    println!(
        "collected: {} CAN frames, {} video frames, {} clicks ({:.0} cells of stylus travel)",
        report.log.len(),
        report.frames.len(),
        report.clicker.clicks(),
        report.clicker.total_distance(),
    );

    // 2. Reverse engineer from capture + video only.
    let pipeline = DpReverser::new(PipelineConfig::paper(Scheme::IsoTp, seed));
    let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));

    println!(
        "\nframe mix: {:.1}% single, {:.1}% multi-frame, {} control frames",
        result.stats.single_share() * 100.0,
        result.stats.multi_share() * 100.0,
        result.stats.control,
    );

    println!("\nrecovered ESVs (canonicalized where a closed form explains the model):");
    for esv in &result.esvs {
        println!(
            "  {:14} {:24} => {}",
            format!("{}", esv.key),
            esv.label,
            esv.pretty_formula()
        );
    }
    println!("\nrecovered control records:");
    for ecr in &result.ecrs {
        println!(
            "  {:?} state {:02X?} ({}) — {}",
            ecr.target,
            ecr.state,
            if ecr.complete_pattern {
                "freeze/adjust/return"
            } else {
                "partial pattern"
            },
            ecr.label.as_deref().unwrap_or("unlabelled"),
        );
    }

    // 3. Export the recovered protocol (the §2.1 defender deliverable).
    let report_md = dp_reverser::report::to_markdown(&result, spec.model);
    let path = std::env::temp_dir().join("dp_reverser_quickstart_report.md");
    std::fs::write(&path, &report_md)?;
    println!("\nfull protocol report written to {}", path.display());

    // 4. Score against ground truth.
    let precision = evaluate(&result, &report.vehicle);
    println!(
        "\nprecision: {}/{} formulas correct ({:.1}%), {}/{} enumerations, {} missed",
        precision.formula_correct,
        precision.formula_total,
        precision.formula_precision() * 100.0,
        precision.enum_correct,
        precision.enum_total,
        precision.missed,
    );
    Ok(())
}
