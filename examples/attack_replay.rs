//! Replaying reverse-engineered control messages (paper §9.3, Tab. 13).
//!
//! ```text
//! cargo run --release --example attack_replay
//! ```
//!
//! The paper demonstrates that messages recovered by DP-Reverser can be
//! injected to *control* a running vehicle (unlocking the Toyota's doors,
//! driving the Lexus KOMBI). This example recovers the control records of
//! Car D (Lexus NX300, one of the paper's §9.3 attack targets) from a
//! tool session, then — acting as the attacker with only the recovered
//! bytes — replays them at a *fresh* instance of the same vehicle model
//! through a plain OBD dongle connection and verifies the components
//! actually move.

use dp_reverser::{DpReverser, PipelineConfig};
use dpr_can::{CanBus, Micros};
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::{EcrTarget, Scheme};
use dpr_protocol::kwp::LocalId;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_transport::isotp::IsoTpEndpoint;
use dpr_transport::Endpoint;
use dpr_vehicle::ecu::ComponentKey;
use dpr_vehicle::profiles::{self, CarId};
use dpr_vehicle::run_exchange;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 99;
    println!("== Phase 1: reverse engineer a rented Lexus NX300 ==\n");
    let car = profiles::build(CarId::D, seed);
    let session = ToolSession::new(car, ToolProfile::autel_919());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(2),
            ..CollectConfig::default()
        },
    )?;
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));

    let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
    println!("recovered {} control records:", result.ecrs.len());
    for ecr in &result.ecrs {
        println!(
            "  {:?} state {:02X?} — {}",
            ecr.target,
            ecr.state,
            ecr.label.as_deref().unwrap_or("?")
        );
    }

    println!("\n== Phase 2: attack a fresh vehicle of the same model ==\n");
    // The attacker knows only the recovered bytes. A fresh Car D instance
    // (same model ⇒ same proprietary tables) stands in for the victim.
    let victim = profiles::build(CarId::D, seed);
    let mut bus = CanBus::new();
    let dongle_node = bus.attach("malicious OBD dongle");
    let mut victim = victim.attach(&mut bus);

    // Replay each recovered procedure over a plain ISO-TP connection to
    // the body-domain ECU (Car D's 0x30-service components live there).
    let body_req = dpr_can::CanId::standard(0x711)?;
    let body_rsp = dpr_can::CanId::standard(0x719)?;
    let mut dongle = IsoTpEndpoint::new(body_req, body_rsp);

    let mut successes = 0;
    for ecr in &result.ecrs {
        let EcrTarget::Local30(local_id) = ecr.target else {
            continue;
        };
        // The recovered three-message procedure, byte for byte.
        let mut adjust = vec![0x30, local_id, 0x03];
        adjust.extend_from_slice(&ecr.state);
        let messages = vec![
            vec![0x30, local_id, 0x02],
            adjust,
            vec![0x30, local_id, 0x00],
        ];
        let mut all_positive = true;
        for m in messages {
            dongle.send(&m, bus.now())?;
            run_exchange(&mut bus, dongle_node, &mut dongle, &mut victim)?;
            match dongle.receive() {
                Some(rsp) if rsp.first() == Some(&0x70) => {}
                other => {
                    all_positive = false;
                    println!("  0x{local_id:02X}: rejected ({other:02X?})");
                }
            }
        }
        if all_positive {
            let key = ComponentKey::KwpLocal(LocalId(local_id));
            let moved = victim
                .ecus()
                .filter_map(|e| e.component(key))
                .any(|c| c.was_adjusted());
            println!(
                "  0x{local_id:02X} ({}): injected — component {}",
                ecr.label.as_deref().unwrap_or("?"),
                if moved { "ACTUATED" } else { "did not move" }
            );
            if moved {
                successes += 1;
            }
        }
    }
    println!(
        "\n{successes}/{} recovered procedures actuated components on the victim vehicle",
        result.ecrs.len()
    );
    println!("(defenders: this is why OBD ports need message filtering — §2.1)");
    Ok(())
}
