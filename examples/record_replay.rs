//! Capture tour: record a session to disk, inspect it, replay it
//! offline, and verify the replay against the live run.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```
//!
//! Collects the paper's Car A with the robotic clicker, streams the
//! session into a `.dprcap` capture file, prints the file's vital
//! statistics, then reruns the **entire analysis from the file alone**
//! — no simulator, no live bus — and diffs the result against the live
//! pipeline. The two are bit-identical: captures fully decouple
//! collection from analysis.

use dp_reverser::{CaptureReader, CaptureWriter, DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_capture::record_report;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::Scheme;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;
    let id = CarId::A;
    let spec = profiles::spec(id);
    println!("== dpr-capture record/replay tour ==");
    println!("car: {} ({id}), tool: {}, seed {seed}\n", spec.model, spec.tool);

    // 1. Record: collect live and stream the session to disk.
    let car = profiles::build(id, seed);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).expect("known tool"));
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(4),
            ..CollectConfig::default()
        },
    )?;
    let path = std::env::temp_dir().join("dpr_record_replay_car_a.dprcap");
    let mut writer = CaptureWriter::new(std::fs::File::create(&path)?)?;
    writer.write_meta("car", "A")?;
    writer.write_meta("seed", &seed.to_string())?;
    record_report(&report, &mut writer)?;
    let records = writer.records_written();
    let bytes = writer.bytes_written();
    writer.finish()?;
    println!(
        "recorded {} -> {} records, {} bytes\n  ({} CAN frames, {} screen frames, {} actions)",
        path.display(),
        records,
        bytes,
        report.log.len(),
        report.frames.len(),
        report.execution.entries.len(),
    );

    // 2. Info: open the file and report what it holds.
    let reader = CaptureReader::open(&path)?;
    println!("\ncapture info (format v{}):", reader.version());
    let (session, stats) = reader.read_session();
    let span = session
        .log
        .iter()
        .last()
        .map(|e| e.at.as_secs_f64())
        .unwrap_or(0.0);
    println!("  {} CAN frames over {span:.1}s of session time", session.log.len());
    println!("  {} screen frames, {} clicker actions", session.frames.len(), session.execution.entries.len());
    println!(
        "  {} clock-sync samples (median camera-bus offset {} µs)",
        session.clock_syncs.len(),
        session.estimated_offset_us().unwrap_or(0),
    );
    println!("  damage: {} skipped records, {} bytes lost", stats.skipped(), stats.bytes_skipped);

    // 3. Replay: the full pipeline from the file alone.
    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));
    let replayed = pipeline.analyze_capture(CaptureReader::open(&path)?);
    println!(
        "\nreplayed offline: {} formula ESVs, {} enum ESVs, {} ECRs",
        replayed.formula_esvs().count(),
        replayed.enum_esvs().count(),
        replayed.ecrs.len(),
    );
    for esv in replayed.esvs.iter().take(5) {
        println!("  {}", esv.describe());
    }

    // 4. Diff against the live run.
    let live = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
    assert_eq!(live, replayed, "replay must be bit-identical to the live run");
    println!("\nlive vs replay: identical ✓");
    std::fs::remove_file(&path).ok();
    Ok(())
}
