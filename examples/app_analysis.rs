//! Telematics-app analysis (paper §4.6, Tab. 12).
//!
//! ```text
//! cargo run --release --example app_analysis
//! ```
//!
//! Runs Alg. 1 over the synthetic 160-app corpus and prints the Tab. 12
//! population: which apps carry UDS/KWP 2000 formulas, which only OBD-II,
//! and how many resist extraction — the paper's argument for using
//! professional diagnostic tools instead of apps.

use dpr_appscan::corpus::{table12_corpus, AppKind};
use dpr_appscan::{extract_formulas, ProtocolClass, DEFAULT_SOURCE_APIS};

fn main() {
    let corpus = table12_corpus(2023);
    println!("== analyzing {} telematics apps (Alg. 1) ==\n", corpus.len());

    let mut uds_kwp_apps = 0;
    let mut obd_apps = 0;
    let mut empty_apps = 0;
    println!("{:36} {:>6} {:>6} {:>7}", "app", "UDS", "KWP", "OBD-II");
    for app in &corpus {
        let formulas = extract_formulas(&app.program, &DEFAULT_SOURCE_APIS);
        let uds = formulas.iter().filter(|f| f.protocol == ProtocolClass::Uds).count();
        let kwp = formulas
            .iter()
            .filter(|f| f.protocol == ProtocolClass::Kwp2000)
            .count();
        let obd = formulas
            .iter()
            .filter(|f| f.protocol == ProtocolClass::ObdII)
            .count();
        if uds + kwp > 0 {
            uds_kwp_apps += 1;
            println!("{:36} {uds:>6} {kwp:>6} {obd:>7}", app.name);
        } else if obd > 0 {
            obd_apps += 1;
            println!("{:36} {uds:>6} {kwp:>6} {obd:>7}", app.name);
        } else {
            empty_apps += 1;
        }
        // Show one example formula per protocol-rich app.
        if uds + kwp > 0 {
            if let Some(f) = formulas.first() {
                println!(
                    "{:36}   e.g. when response starts with \"{}\": Y = {}",
                    "", f.conditions.first().map(String::as_str).unwrap_or(""), f.formula
                );
            }
        }
    }
    println!(
        "\nsummary: {uds_kwp_apps} apps with UDS/KWP formulas (paper: 3), \
         {obd_apps} with OBD-II only, {empty_apps} with none"
    );
    let resistant = corpus
        .iter()
        .filter(|a| a.kind == AppKind::ExtractionResistant)
        .count();
    println!(
        "of the formula-free apps, {resistant} actually contain formulas that \
         resist taint analysis (paper: 13)"
    );
    println!("\nconclusion (paper §4.6): professional diagnostic tools expose far more");
    println!("proprietary protocol surface than telematics apps — hence DP-Reverser.");
}
