//! Fleet survey: reverse engineer all 18 evaluation vehicles in one run.
//!
//! ```text
//! cargo run --release --example fleet_survey
//! ```
//!
//! The paper's large-scale experiment (§4) covers 18 vehicles from 14
//! manufacturers across three transport schemes. This example runs the
//! entire fleet with a reduced GP budget and prints a per-car summary —
//! the programmatic equivalent of the Tab. 6 bench, showing how the same
//! five-line pipeline handles every car.

use dp_reverser::{evaluate, DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::Scheme;
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use dpr_vehicle::TransportKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== DP-Reverser fleet survey: 18 vehicles ==\n");
    println!(
        "{:6} {:20} {:9} {:12} {:>9} {:>7} {:>6} {:>7}",
        "car", "model", "protocol", "tool", "formulas", "enums", "ECRs", "prec."
    );

    let mut grand = dp_reverser::PrecisionReport::default();
    let mut total_ecrs = 0usize;
    for id in CarId::ALL {
        let spec = profiles::spec(id);
        let seed = 0xF1EE7 ^ (id as u64);
        let car = profiles::build(id, seed);
        let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).expect("known tool"));
        let report = collect_vehicle(
            session,
            &CollectConfig {
                read_wait: Micros::from_secs(4),
                ..CollectConfig::default()
            },
        )?;

        let scheme = match spec.transport {
            TransportKind::IsoTp => Scheme::IsoTp,
            TransportKind::VwTp => Scheme::VwTp,
            TransportKind::BmwRaw => Scheme::BmwRaw,
        };
        let pipeline = DpReverser::new(PipelineConfig::fast(scheme, seed));
        let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
        let precision = evaluate(&result, &report.vehicle);

        println!(
            "{:6} {:20} {:9} {:12} {:>6}/{:<2} {:>7} {:>6} {:>6.0}%",
            format!("{id}"),
            spec.model,
            match spec.protocol {
                dpr_vehicle::ecu::Protocol::Uds => "UDS",
                dpr_vehicle::ecu::Protocol::Kwp2000 => "KWP 2000",
            },
            spec.tool,
            precision.formula_correct,
            precision.formula_total,
            precision.enum_total,
            result.ecrs.len(),
            precision.formula_precision() * 100.0,
        );
        total_ecrs += result.ecrs.len();
        grand.merge(precision);
    }
    println!(
        "\nfleet total: {}/{} formulas correct ({:.1}%), {} enumerations, {} control records",
        grand.formula_correct,
        grand.formula_total,
        grand.formula_precision() * 100.0,
        grand.enum_total,
        total_ecrs,
    );
    println!("paper (Tab. 6 + Tab. 11): 285/290 (98.3%), 156 enumerations, 124 ECRs");
    println!("(this example uses the reduced GP budget; the table6 bench runs the paper's)");
    Ok(())
}
