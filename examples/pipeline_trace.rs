//! Observability tour: run one simulated car end to end and print the
//! stage-timing and counter breakdown the telemetry layer records.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```
//!
//! Builds the paper's Car M, collects it with the robotic clicker, runs
//! the reverse-engineering pipeline inside a fresh telemetry scope, and
//! prints three views of the same run: the live span log (via an
//! in-memory collector), the per-stage trace table, and the full metric
//! registry. A JSON-lines export of every span ends the tour.

use std::sync::Arc;

use dp_reverser::{DpReverser, PipelineConfig};
use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::Scheme;
use dpr_telemetry::{summary, Collector, JsonLines, Registry, Sink};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;
    let id = CarId::M;
    let spec = profiles::spec(id);
    println!("== pipeline trace: {} ({id}) via {} ==\n", spec.model, spec.tool);

    // 1. Collect. This runs outside the scoped registry on purpose: the
    //    trace below covers the analysis, not the simulated drive.
    let car = profiles::build(id, seed);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).expect("known tool"));
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(6),
            ..CollectConfig::default()
        },
    )?;
    println!(
        "collected {} CAN frames and {} video frames\n",
        report.log.len(),
        report.frames.len()
    );

    // 2. Analyze inside a fresh registry with an in-memory span collector
    //    attached, so this run's numbers are isolated and inspectable.
    let registry = Arc::new(Registry::new());
    let spans = Arc::new(Collector::new());
    registry.add_sink(spans.clone());

    let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, seed));
    let result = dpr_telemetry::scoped(Arc::clone(&registry), || {
        pipeline.analyze(&report.log, &report.frames, Some(&report.execution))
    });

    // 3. The live span log, in close order (leaves before parents).
    println!("spans (close order):");
    for record in spans.records() {
        println!(
            "  {:28} {:>10}",
            record.path,
            summary::format_us(record.wall.as_micros() as u64)
        );
    }

    // 4. The per-stage trace carried on the result itself.
    println!();
    print!("{}", summary::render_trace(&result.trace));

    // 5. Everything the registry accumulated: transport reassembly,
    //    OCR filtering, association, GP effort, span histograms.
    println!();
    print!("{}", summary::render(&registry.snapshot()));

    // 6. The same spans as JSON lines, the format experiment harnesses
    //    stream to disk (see dpr-bench's DPR_TRACE_JSON).
    let json = JsonLines::new(Box::new(std::io::stdout()));
    println!("\nspans as JSON lines:");
    for record in spans.records() {
        json.span_closed(&record);
    }
    json.write_record(&result.trace)?;

    println!(
        "\nrecovered {} ESVs ({} formulas) and {} control records",
        result.esvs.len(),
        result.formula_esvs().count(),
        result.ecrs.len()
    );
    Ok(())
}
