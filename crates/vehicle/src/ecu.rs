//! The ECU model: proprietary data tables, sensors, and request handling.

use std::collections::BTreeMap;

use dpr_can::{CanId, Micros};
use dpr_protocol::kwp::{FormulaTypeTable, KwpRequest, KwpResponse, LocalId, RawEsv};
use dpr_protocol::obd::{self, Pid};
use dpr_protocol::uds::{Did, Nrc, UdsRequest, UdsResponse};
use dpr_protocol::{EsvFormula, Quantity};
use serde::{Deserialize, Serialize};

use crate::codec::EsvCodec;
use crate::component::Component;
use crate::signal::SignalGenerator;

/// Which transport scheme the ECU speaks on the diagnostic bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportKind {
    /// ISO 15765-2.
    IsoTp,
    /// VW TP 2.0.
    VwTp,
    /// The BMW/Mini raw ECU-id-prefix scheme.
    BmwRaw,
}

/// Which application protocol the ECU speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Unified Diagnostic Services (ISO 14229).
    Uds,
    /// Keyword Protocol 2000.
    Kwp2000,
}

/// Identifies one readable signal within a vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EsvId {
    /// A UDS data identifier.
    Uds(Did),
    /// One slot of a KWP read-data-by-local-identifier block.
    Kwp {
        /// The block's local identifier.
        local_id: LocalId,
        /// The position of the ESV within the block.
        slot: usize,
    },
}

impl std::fmt::Display for EsvId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EsvId::Uds(did) => write!(f, "DID {did}"),
            EsvId::Kwp { local_id, slot } => write!(f, "local id {local_id} slot {slot}"),
        }
    }
}

/// A sensor: a physical quantity and the generator producing its value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensor {
    /// Name, unit, and plausible range.
    pub quantity: Quantity,
    /// The deterministic value source.
    pub generator: SignalGenerator,
}

impl Sensor {
    /// The (range-clamped) physical value at time `t`.
    pub fn value_at(&self, t: Micros) -> f64 {
        self.quantity.clamp(self.generator.value_at(t))
    }
}

/// The ground-truth description of one readable ESV — what DP-Reverser
/// tries to recover from the outside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EsvPoint {
    /// Which ECU serves it.
    pub ecu: String,
    /// Its identifier.
    pub id: EsvId,
    /// The displayed quantity.
    pub quantity: Quantity,
    /// The proprietary decoding formula.
    pub formula: EsvFormula,
}

/// A signal mirrored on the car's dashboard (used as independent ground
/// truth in the paper's Tab. 7 validation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DashboardSignal {
    /// The signal's ESV identity in the diagnostic tables.
    pub id: EsvId,
    /// The dashboard label.
    pub label: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct UdsPoint {
    sensor: Sensor,
    codec: EsvCodec,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KwpSlot {
    sensor: Sensor,
    f_type: u8,
    codec: EsvCodec,
    /// Filler slots exist on the wire (real measuring blocks carry more
    /// values than a tool displays) but are not part of the tool database
    /// or the ground-truth ESV inventory.
    hidden: bool,
}

/// Keys addressing controllable components across the three IO-control
/// services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentKey {
    /// UDS IO control (service 0x2F) by DID.
    UdsDid(Did),
    /// KWP IO control by local identifier (service 0x30).
    KwpLocal(LocalId),
    /// KWP IO control by common identifier (service 0x2F).
    KwpCommon(u16),
}

/// One electronic control unit.
///
/// An `Ecu` is addressed by a request/response CAN-id pair, speaks one
/// application protocol (plus optionally OBD-II on the engine controller),
/// and owns the proprietary tables DP-Reverser recovers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecu {
    name: String,
    request_id: CanId,
    response_id: CanId,
    transport: TransportKind,
    protocol: Protocol,
    /// ECU address byte for VW TP channel setup / BMW raw addressing.
    pub address: u8,
    uds_points: BTreeMap<Did, UdsPoint>,
    kwp_blocks: BTreeMap<LocalId, Vec<KwpSlot>>,
    kwp_table: FormulaTypeTable,
    obd_pids: BTreeMap<u8, SignalGenerator>,
    components: BTreeMap<ComponentKey, Component>,
    /// Components requiring a security unlock before IO control.
    secured_components: std::collections::BTreeSet<ComponentKey>,
    /// Seed-key secret for UDS SecurityAccess (0x27); `None` disables the
    /// service. The algorithm is a simple XOR whitening — the paper's §6
    /// places real seed-key schemes outside formula inference, so the
    /// simulation only needs the handshake's traffic shape.
    pub security_secret: Option<u16>,
    /// Whether a valid key has been presented this session.
    unlocked: bool,
    /// Monotonic counter feeding seed generation.
    seed_counter: u16,
    /// The last seed handed out, awaiting its key.
    last_seed: Option<[u8; 2]>,
    /// Stored diagnostic trouble codes `(code, status)`.
    dtcs: Vec<(u16, u8)>,
    /// Fixed handling latency before a response is sent.
    pub response_delay: Micros,
}

impl Ecu {
    /// Creates an ECU with no data points yet.
    pub fn new(
        name: impl Into<String>,
        request_id: CanId,
        response_id: CanId,
        transport: TransportKind,
        protocol: Protocol,
    ) -> Self {
        Ecu {
            name: name.into(),
            request_id,
            response_id,
            transport,
            protocol,
            address: 0x01,
            uds_points: BTreeMap::new(),
            kwp_blocks: BTreeMap::new(),
            kwp_table: FormulaTypeTable::standard(),
            obd_pids: BTreeMap::new(),
            components: BTreeMap::new(),
            secured_components: std::collections::BTreeSet::new(),
            security_secret: None,
            unlocked: false,
            seed_counter: 0,
            last_seed: None,
            dtcs: Vec::new(),
            response_delay: Micros::from_millis(2),
        }
    }

    /// The ECU's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CAN id requests arrive on.
    pub fn request_id(&self) -> CanId {
        self.request_id
    }

    /// The CAN id responses leave on.
    pub fn response_id(&self) -> CanId {
        self.response_id
    }

    /// The transport scheme.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// The application protocol.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The ECU's KWP formula-type table.
    pub fn kwp_table(&self) -> &FormulaTypeTable {
        &self.kwp_table
    }

    /// Adds a UDS readable data point.
    pub fn add_uds_point(&mut self, did: Did, sensor: Sensor, codec: EsvCodec) -> &mut Self {
        self.uds_points.insert(did, UdsPoint { sensor, codec });
        self
    }

    /// Adds one ESV slot to a KWP measuring block. `codec` must use the
    /// formula registered for `f_type` in the ECU's table.
    pub fn add_kwp_slot(
        &mut self,
        local_id: LocalId,
        f_type: u8,
        sensor: Sensor,
        codec: EsvCodec,
    ) -> &mut Self {
        self.kwp_blocks.entry(local_id).or_default().push(KwpSlot {
            sensor,
            f_type,
            codec,
            hidden: false,
        });
        self
    }

    /// Adds a *hidden* filler slot to a KWP measuring block: encoded in
    /// responses like any other ESV, but absent from the ground-truth
    /// inventory and the tool's display — the undisplayed remainder of a
    /// real measuring block.
    pub fn add_kwp_filler_slot(
        &mut self,
        local_id: LocalId,
        f_type: u8,
        sensor: Sensor,
        codec: EsvCodec,
    ) -> &mut Self {
        self.kwp_blocks.entry(local_id).or_default().push(KwpSlot {
            sensor,
            f_type,
            codec,
            hidden: true,
        });
        self
    }

    /// Declares OBD-II support for a PID.
    pub fn add_obd_pid(&mut self, pid: Pid, generator: SignalGenerator) -> &mut Self {
        self.obd_pids.insert(pid.0, generator);
        self
    }

    /// Stores a diagnostic trouble code.
    pub fn add_dtc(&mut self, code: u16, status: u8) -> &mut Self {
        self.dtcs.push((code, status));
        self
    }

    /// The stored trouble codes.
    pub fn dtcs(&self) -> &[(u16, u8)] {
        &self.dtcs
    }

    /// Whether the ECU answers OBD-II mode-01 requests.
    pub fn supports_obd(&self) -> bool {
        !self.obd_pids.is_empty()
    }

    /// Adds a controllable component.
    pub fn add_component(&mut self, key: ComponentKey, component: Component) -> &mut Self {
        self.components.insert(key, component);
        self
    }

    /// Marks a component as gated behind SecurityAccess: IO control is
    /// rejected with NRC 0x33 until a valid key has been presented.
    pub fn secure_component(&mut self, key: ComponentKey) -> &mut Self {
        self.secured_components.insert(key);
        self
    }

    /// Whether a component is security-gated.
    pub fn is_secured(&self, key: ComponentKey) -> bool {
        self.secured_components.contains(&key)
    }

    /// Whether the ECU is currently unlocked.
    pub fn is_unlocked(&self) -> bool {
        self.unlocked
    }

    /// The expected key for a seed under the simulation's XOR whitening
    /// scheme (`key = seed ^ secret`, per byte pair).
    pub fn expected_key(seed: [u8; 2], secret: u16) -> [u8; 2] {
        let k = u16::from_be_bytes(seed) ^ secret;
        k.to_be_bytes()
    }

    /// Access to a component (e.g. to assert on its action log).
    pub fn component(&self, key: ComponentKey) -> Option<&Component> {
        self.components.get(&key)
    }

    /// Iterates over component keys.
    pub fn component_keys(&self) -> impl Iterator<Item = ComponentKey> + '_ {
        self.components.keys().copied()
    }

    /// The lengths of the ECU's KWP measuring blocks (all slots, hidden
    /// fillers included).
    pub fn kwp_block_lengths(&self) -> Vec<(LocalId, usize)> {
        self.kwp_blocks
            .iter()
            .map(|(lid, slots)| (*lid, slots.len()))
            .collect()
    }

    /// Ground-truth descriptions of every readable ESV on this ECU.
    pub fn esv_points(&self) -> Vec<EsvPoint> {
        let mut out = Vec::new();
        for (did, p) in &self.uds_points {
            out.push(EsvPoint {
                ecu: self.name.clone(),
                id: EsvId::Uds(*did),
                quantity: p.sensor.quantity.clone(),
                formula: p.codec.formula,
            });
        }
        for (lid, slots) in &self.kwp_blocks {
            for (i, s) in slots.iter().enumerate().filter(|(_, s)| !s.hidden) {
                out.push(EsvPoint {
                    ecu: self.name.clone(),
                    id: EsvId::Kwp {
                        local_id: *lid,
                        slot: i,
                    },
                    quantity: s.sensor.quantity.clone(),
                    formula: s.codec.formula,
                });
            }
        }
        out
    }

    /// The ground-truth sensor value behind an ESV at time `t` (what the
    /// dashboard would show).
    pub fn true_value(&self, id: EsvId, t: Micros) -> Option<f64> {
        match id {
            EsvId::Uds(did) => self.uds_points.get(&did).map(|p| p.sensor.value_at(t)),
            EsvId::Kwp { local_id, slot } => self
                .kwp_blocks
                .get(&local_id)
                .and_then(|slots| slots.get(slot))
                .map(|s| s.sensor.value_at(t)),
        }
    }

    /// Handles one application-layer request payload, returning the
    /// response payload (if the ECU answers at all).
    pub fn handle(&mut self, payload: &[u8], now: Micros) -> Option<Vec<u8>> {
        // OBD-II mode 01 is answered regardless of the main protocol if
        // the ECU declares PIDs (the engine controller does).
        if payload.first() == Some(&0x01) && !self.obd_pids.is_empty() {
            return Some(self.handle_obd(payload, now));
        }
        // Some UDS vehicles (the paper's Toyota/Lexus, Tab. 11 "service
        // 30" rows) expose IO control through the KWP-style 0x30 service;
        // route it to the KWP handler when such components exist.
        if payload.first() == Some(&0x30)
            && self
                .components
                .keys()
                .any(|k| matches!(k, ComponentKey::KwpLocal(_)))
        {
            return Some(self.handle_kwp(payload, now));
        }
        match self.protocol {
            Protocol::Uds => Some(self.handle_uds(payload, now)),
            Protocol::Kwp2000 => Some(self.handle_kwp(payload, now)),
        }
    }

    fn handle_obd(&self, payload: &[u8], now: Micros) -> Vec<u8> {
        let Ok(pid) = obd::parse_request(payload) else {
            return vec![0x7F, 0x01, 0x12];
        };
        let (Some(generator), Some(spec)) = (self.obd_pids.get(&pid.0), obd::pid_spec(pid))
        else {
            return vec![0x7F, 0x01, 0x31];
        };
        let value = spec.quantity.clamp(generator.value_at(now));
        obd::encode_response(pid, &spec.encode(value))
    }

    fn handle_uds(&mut self, payload: &[u8], now: Micros) -> Vec<u8> {
        let request = match UdsRequest::parse(payload) {
            Ok(r) => r,
            Err(_) => {
                let sid = payload.first().copied().unwrap_or(0);
                return UdsResponse::Negative {
                    sid,
                    nrc: Nrc::IncorrectMessageLength,
                }
                .encode();
            }
        };
        match request {
            UdsRequest::SessionControl { session } => {
                UdsResponse::SessionControl { session }.encode()
            }
            UdsRequest::ReadDtc { mask } => UdsResponse::DtcReport {
                dtcs: self
                    .dtcs
                    .iter()
                    .filter(|(_, status)| status & mask != 0 || mask == 0xFF)
                    .copied()
                    .collect(),
            }
            .encode(),
            UdsRequest::ClearDtc => {
                self.dtcs.clear();
                UdsResponse::ClearDtc.encode()
            }
            UdsRequest::EcuReset { kind } => UdsResponse::EcuReset { kind }.encode(),
            UdsRequest::TesterPresent => UdsResponse::TesterPresent.encode(),
            UdsRequest::ReadDataById { dids } => {
                let mut records = Vec::with_capacity(dids.len());
                for did in dids {
                    let Some(point) = self.uds_points.get(&did) else {
                        return UdsResponse::Negative {
                            sid: 0x22,
                            nrc: Nrc::RequestOutOfRange,
                        }
                        .encode();
                    };
                    let value = point.sensor.value_at(now);
                    let (x0, x1) = point.codec.encode(value);
                    let mut data = vec![x0];
                    if let Some(b) = x1 {
                        data.push(b);
                    }
                    records.push((did, data));
                }
                UdsResponse::ReadDataById { records }.encode()
            }
            UdsRequest::SecurityAccess { level, key } => {
                let Some(secret) = self.security_secret else {
                    return UdsResponse::Negative {
                        sid: 0x27,
                        nrc: Nrc::ServiceNotSupported,
                    }
                    .encode();
                };
                if level % 2 == 1 {
                    // Seed request: derive a session seed from the counter.
                    self.seed_counter = self.seed_counter.wrapping_mul(31).wrapping_add(17);
                    let seed = self.seed_counter.to_be_bytes();
                    self.last_seed = Some(seed);
                    UdsResponse::SecurityAccess {
                        level,
                        seed: seed.to_vec(),
                    }
                    .encode()
                } else {
                    let Some(seed) = self.last_seed else {
                        return UdsResponse::Negative {
                            sid: 0x27,
                            nrc: Nrc::ConditionsNotCorrect,
                        }
                        .encode();
                    };
                    let expected = Self::expected_key(seed, secret);
                    if key == expected {
                        self.unlocked = true;
                        UdsResponse::SecurityAccess {
                            level,
                            seed: vec![],
                        }
                        .encode()
                    } else {
                        UdsResponse::Negative {
                            sid: 0x27,
                            nrc: Nrc::InvalidKey,
                        }
                        .encode()
                    }
                }
            }
            UdsRequest::IoControl { did, param, state } => {
                if self.secured_components.contains(&ComponentKey::UdsDid(did)) && !self.unlocked {
                    return UdsResponse::Negative {
                        sid: 0x2F,
                        nrc: Nrc::SecurityAccessDenied,
                    }
                    .encode();
                }
                let Some(component) = self.components.get_mut(&ComponentKey::UdsDid(did)) else {
                    return UdsResponse::Negative {
                        sid: 0x2F,
                        nrc: Nrc::RequestOutOfRange,
                    }
                    .encode();
                };
                if component.handle(param, &state, now) {
                    UdsResponse::IoControl { did, param, state }.encode()
                } else {
                    UdsResponse::Negative {
                        sid: 0x2F,
                        nrc: Nrc::ConditionsNotCorrect,
                    }
                    .encode()
                }
            }
        }
    }

    fn handle_kwp(&mut self, payload: &[u8], now: Micros) -> Vec<u8> {
        let request = match KwpRequest::parse(payload) {
            Ok(r) => r,
            Err(_) => {
                let sid = payload.first().copied().unwrap_or(0);
                return KwpResponse::Negative { sid, code: 0x13 }.encode();
            }
        };
        match request {
            KwpRequest::StartDiagnosticSession { session } => {
                KwpResponse::StartDiagnosticSession { session }.encode()
            }
            KwpRequest::ReadDataByLocalId { local_id } => {
                let Some(slots) = self.kwp_blocks.get(&local_id) else {
                    return KwpResponse::Negative {
                        sid: 0x21,
                        code: 0x31,
                    }
                    .encode();
                };
                let esvs = slots
                    .iter()
                    .map(|s| {
                        let value = s.sensor.value_at(now);
                        let (x0, x1) = s.codec.encode(value);
                        RawEsv {
                            f_type: s.f_type,
                            x0,
                            x1: x1.unwrap_or(0),
                        }
                    })
                    .collect();
                KwpResponse::ReadDataByLocalId { local_id, esvs }.encode()
            }
            KwpRequest::IoControlByLocalId { local_id, ecr } => {
                let Some(component) = self.components.get_mut(&ComponentKey::KwpLocal(local_id))
                else {
                    return KwpResponse::Negative {
                        sid: 0x30,
                        code: 0x31,
                    }
                    .encode();
                };
                // First ECR byte doubles as the IO-control parameter where
                // present; an empty ECR means "return control".
                let param = ecr
                    .first()
                    .and_then(|&b| dpr_protocol::uds::IoControlParameter::from_raw(b))
                    .unwrap_or(dpr_protocol::uds::IoControlParameter::ShortTermAdjustment);
                let state = if ecr.len() > 1 { ecr[1..].to_vec() } else { vec![] };
                if component.handle(param, &state, now) {
                    KwpResponse::IoControlByLocalId {
                        local_id,
                        status: vec![0x01],
                    }
                    .encode()
                } else {
                    KwpResponse::Negative {
                        sid: 0x30,
                        code: 0x22,
                    }
                    .encode()
                }
            }
            KwpRequest::IoControlByCommonId { common_id, ecr } => {
                let Some(component) = self.components.get_mut(&ComponentKey::KwpCommon(common_id))
                else {
                    return KwpResponse::Negative {
                        sid: 0x2F,
                        code: 0x31,
                    }
                    .encode();
                };
                let param = ecr
                    .first()
                    .and_then(|&b| dpr_protocol::uds::IoControlParameter::from_raw(b))
                    .unwrap_or(dpr_protocol::uds::IoControlParameter::ShortTermAdjustment);
                let state = if ecr.len() > 1 { ecr[1..].to_vec() } else { vec![] };
                if component.handle(param, &state, now) {
                    KwpResponse::IoControlByCommonId {
                        common_id,
                        status: vec![0x01],
                    }
                    .encode()
                } else {
                    KwpResponse::Negative {
                        sid: 0x2F,
                        code: 0x22,
                    }
                    .encode()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_protocol::uds::IoControlParameter;

    fn sensor(name: &str, min: f64, max: f64) -> Sensor {
        Sensor {
            quantity: Quantity::new(name, "u", min, max),
            generator: SignalGenerator::Ramp {
                from: min,
                to: max,
                period: Micros::from_secs(10),
            },
        }
    }

    fn uds_ecu() -> Ecu {
        let mut ecu = Ecu::new(
            "Engine",
            CanId::standard(0x7E0).unwrap(),
            CanId::standard(0x7E8).unwrap(),
            TransportKind::IsoTp,
            Protocol::Uds,
        );
        ecu.add_uds_point(
            Did(0xF40D),
            sensor("Vehicle Speed", 0.0, 255.0),
            EsvCodec::single(EsvFormula::IDENTITY),
        );
        ecu.add_component(
            ComponentKey::UdsDid(Did(0x0950)),
            Component::new("fog light"),
        );
        ecu
    }

    #[test]
    fn uds_read_round_trips_through_formula() {
        let mut ecu = uds_ecu();
        // Ramp at t=2s of a 10s 0..255 sweep → 51.
        let rsp = ecu
            .handle(&[0x22, 0xF4, 0x0D], Micros::from_secs(2))
            .unwrap();
        assert_eq!(rsp, vec![0x62, 0xF4, 0x0D, 51]);
    }

    #[test]
    fn unknown_did_rejected() {
        let mut ecu = uds_ecu();
        let rsp = ecu.handle(&[0x22, 0xAA, 0xBB], Micros::ZERO).unwrap();
        assert_eq!(rsp, vec![0x7F, 0x22, 0x31]);
    }

    #[test]
    fn io_control_procedure_drives_component() {
        let mut ecu = uds_ecu();
        for req in dpr_protocol::uds::io_control_procedure(Did(0x0950), vec![0x05, 0x01]) {
            let rsp = ecu.handle(&req.encode(), Micros::ZERO).unwrap();
            assert_eq!(rsp[0], 0x6F, "each step must be accepted: {rsp:02X?}");
        }
        let c = ecu.component(ComponentKey::UdsDid(Did(0x0950))).unwrap();
        assert!(c.was_adjusted());
        assert_eq!(c.actions().len(), 3);
        assert_eq!(c.actions()[1].param, IoControlParameter::ShortTermAdjustment);
    }

    #[test]
    fn kwp_block_returns_three_byte_esvs() {
        let mut ecu = Ecu::new(
            "Engine",
            CanId::standard(0x200).unwrap(),
            CanId::standard(0x300).unwrap(),
            TransportKind::VwTp,
            Protocol::Kwp2000,
        );
        let table = ecu.kwp_table().clone();
        let rpm_formula = *table.get(0x01).unwrap();
        ecu.add_kwp_slot(
            LocalId(0x07),
            0x01,
            sensor("Engine Speed", 0.0, 8000.0),
            EsvCodec {
                formula: rpm_formula,
                strategy: crate::codec::EncodeStrategy::FixedX1(160),
            },
        );
        let rsp = ecu.handle(&[0x21, 0x07], Micros::from_secs(5)).unwrap();
        assert_eq!(rsp[0], 0x61);
        assert_eq!(rsp[1], 0x07);
        assert_eq!(rsp.len(), 2 + 3);
        let esv = RawEsv {
            f_type: rsp[2],
            x0: rsp[3],
            x1: rsp[4],
        };
        assert_eq!(esv.f_type, 0x01);
        // Decoding with the table recovers the ramp value (~4000 at t=5s
        // of a 10s 0..8000 sweep) within quantization.
        let decoded = table.decode(esv).unwrap();
        assert!((decoded - 4000.0).abs() <= 160.0 * 0.2 + 1e-9, "{decoded}");
    }

    #[test]
    fn obd_handled_alongside_uds() {
        let mut ecu = uds_ecu();
        ecu.add_obd_pid(
            Pid(0x0D),
            SignalGenerator::Constant(88.0),
        );
        let rsp = ecu.handle(&[0x01, 0x0D], Micros::ZERO).unwrap();
        assert_eq!(rsp, vec![0x41, 0x0D, 88]);
        // Unsupported PID → OBD negative.
        let rsp = ecu.handle(&[0x01, 0x0C], Micros::ZERO).unwrap();
        assert_eq!(rsp, vec![0x7F, 0x01, 0x31]);
    }

    #[test]
    fn esv_points_expose_ground_truth() {
        let ecu = uds_ecu();
        let points = ecu.esv_points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].id, EsvId::Uds(Did(0xF40D)));
        assert_eq!(points[0].formula, EsvFormula::IDENTITY);
        assert_eq!(points[0].ecu, "Engine");
    }

    #[test]
    fn true_value_matches_sensor() {
        let ecu = uds_ecu();
        let v = ecu.true_value(EsvId::Uds(Did(0xF40D)), Micros::from_secs(2));
        assert!((v.unwrap() - 51.0).abs() < 0.5);
        assert_eq!(ecu.true_value(EsvId::Uds(Did(0x9999)), Micros::ZERO), None);
    }

    #[test]
    fn security_gated_component_requires_unlock() {
        let mut ecu = uds_ecu();
        ecu.security_secret = Some(0xBEEF);
        ecu.secure_component(ComponentKey::UdsDid(Did(0x0950)));

        // Direct control is rejected with NRC 0x33.
        let rsp = ecu
            .handle(&[0x2F, 0x09, 0x50, 0x03, 0x01], Micros::ZERO)
            .unwrap();
        assert_eq!(rsp, vec![0x7F, 0x2F, 0x33]);

        // Key before seed: conditions not correct.
        let rsp = ecu.handle(&[0x27, 0x02, 0x00, 0x00], Micros::ZERO).unwrap();
        assert_eq!(rsp, vec![0x7F, 0x27, 0x22]);

        // Seed request, then the correct key unlocks.
        let rsp = ecu.handle(&[0x27, 0x01], Micros::ZERO).unwrap();
        assert_eq!(rsp[0], 0x67);
        let seed = [rsp[2], rsp[3]];
        let key = Ecu::expected_key(seed, 0xBEEF);
        let rsp = ecu
            .handle(&[0x27, 0x02, key[0], key[1]], Micros::ZERO)
            .unwrap();
        assert_eq!(rsp, vec![0x67, 0x02]);
        assert!(ecu.is_unlocked());

        // Control now succeeds.
        let rsp = ecu
            .handle(&[0x2F, 0x09, 0x50, 0x03, 0x01], Micros::ZERO)
            .unwrap();
        assert_eq!(rsp[0], 0x6F);
    }

    #[test]
    fn wrong_key_rejected_and_stays_locked() {
        let mut ecu = uds_ecu();
        ecu.security_secret = Some(0x1234);
        ecu.secure_component(ComponentKey::UdsDid(Did(0x0950)));
        let rsp = ecu.handle(&[0x27, 0x01], Micros::ZERO).unwrap();
        assert_eq!(rsp[0], 0x67);
        let rsp = ecu.handle(&[0x27, 0x02, 0xDE, 0xAD], Micros::ZERO).unwrap();
        assert_eq!(rsp, vec![0x7F, 0x27, 0x35]);
        assert!(!ecu.is_unlocked());
    }

    #[test]
    fn security_service_absent_by_default() {
        let mut ecu = uds_ecu();
        let rsp = ecu.handle(&[0x27, 0x01], Micros::ZERO).unwrap();
        assert_eq!(rsp, vec![0x7F, 0x27, 0x11]);
    }

    #[test]
    fn malformed_payload_gets_negative_response() {
        let mut ecu = uds_ecu();
        let rsp = ecu.handle(&[0x22], Micros::ZERO).unwrap();
        assert_eq!(rsp[0], 0x7F);
    }
}
