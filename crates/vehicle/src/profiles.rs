//! The 18 evaluation vehicles of the paper's Tab. 3.
//!
//! Each profile reproduces the car's protocol and transport scheme
//! (Tab. 3), its per-car counts of formula and enumeration ESVs (Tab. 6),
//! and its controllable-component count and IO-control service (Tab. 11).
//! The proprietary content — which DID/local-id maps to which sensor and
//! formula — is generated deterministically from a seed, cycling through
//! archetype pools, so every experiment run sees the same "manufacturer
//! secrets" without us hard-coding 570 tables by hand.
//!
//! Cars F, K, L, and R additionally pin the exact dashboard-mirrored
//! formulas of Tab. 7 (`Y = X`, `Y = X0·X1/5`, `Y = 0.5·X`, and
//! `Y = 64·X0 + 0.25·X1`).

use dpr_can::{CanId, Micros};
use dpr_protocol::kwp::LocalId;
use dpr_protocol::obd::{self, Pid};
use dpr_protocol::uds::Did;
use dpr_protocol::{EsvFormula, Quantity};
use serde::{Deserialize, Serialize};

use crate::codec::{EncodeStrategy, EsvCodec};
use crate::component::Component;
use crate::ecu::{ComponentKey, Ecu, EsvId, Protocol, Sensor, TransportKind};
use crate::signal::SignalGenerator;
use crate::vehicle::Vehicle;

/// The cars of Tab. 3, identified the way the paper labels them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CarId {
    A, B, C, D, E, F, G, H, I, J, K, L, M, N, O, P, Q, R,
}

impl CarId {
    /// All eighteen cars in paper order.
    pub const ALL: [CarId; 18] = [
        CarId::A, CarId::B, CarId::C, CarId::D, CarId::E, CarId::F,
        CarId::G, CarId::H, CarId::I, CarId::J, CarId::K, CarId::L,
        CarId::M, CarId::N, CarId::O, CarId::P, CarId::Q, CarId::R,
    ];
}

impl std::fmt::Display for CarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Car {self:?}")
    }
}

/// Which IO-control service a car's active tests use (Tab. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EcrService {
    /// UDS IO control, service id 0x2F.
    Uds2F,
    /// Input output control by local identifier, service id 0x30.
    Local30,
}

/// The static facts of one evaluation car, straight from Tabs. 3, 6, 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarSpec {
    /// Paper label.
    pub id: CarId,
    /// Vehicle model (Tab. 3).
    pub model: &'static str,
    /// Application protocol (Tab. 3).
    pub protocol: Protocol,
    /// Transport scheme (derived: VW-group cars use VW TP 2.0, BMW/Mini
    /// use the raw scheme, everything else ISO-TP).
    pub transport: TransportKind,
    /// Diagnostic tool used in the paper (Tab. 3).
    pub tool: &'static str,
    /// ESVs decoded through a formula (Tab. 6, "#ESV (formula)").
    pub formula_esvs: usize,
    /// Enumeration ESVs without a formula (Tab. 6, "#ESV (Enum)").
    pub enum_esvs: usize,
    /// Controllable components (Tab. 11, "#ECR"); zero if the car was not
    /// part of the ECR experiment.
    pub ecrs: usize,
    /// IO-control service for those components (Tab. 11).
    pub ecr_service: Option<EcrService>,
}

/// The Tab. 3/6/11 facts for a car.
pub fn spec(id: CarId) -> CarSpec {
    use CarId::*;
    use Protocol::*;
    use TransportKind::*;
    let (model, protocol, transport, tool) = match id {
        A => ("Skoda Octavia", Uds, IsoTp, "LAUNCH X431"),
        B => ("Volkswagen Magotan", Kwp2000, VwTp, "VCDS"),
        C => ("Volkswagen Lavida", Kwp2000, VwTp, "LAUNCH X431"),
        D => ("Lexus NX300", Uds, IsoTp, "Techstream"),
        E => ("Mini Cooper R56", Uds, BmwRaw, "AUTEL 919"),
        F => ("Mini Cooper R59", Uds, BmwRaw, "AUTEL 919"),
        G => ("BMW i3", Uds, BmwRaw, "AUTEL 919"),
        H => ("RongWei MARVEL X", Uds, IsoTp, "AUTEL 919"),
        I => ("Changan Eado", Uds, IsoTp, "AUTEL 919"),
        J => ("BMW 532Li", Uds, BmwRaw, "AUTEL 919"),
        K => ("Volkswagen Passat", Kwp2000, VwTp, "AUTEL 919"),
        L => ("Toyota Corolla", Uds, IsoTp, "AUTEL 919"),
        M => ("Peugeot 308", Uds, IsoTp, "AUTEL 919"),
        N => ("Kia k2 (UC)", Uds, IsoTp, "AUTEL 919"),
        O => ("Ford Kuga", Uds, IsoTp, "AUTEL 919"),
        P => ("Honda Accord", Uds, IsoTp, "AUTEL 919"),
        Q => ("Nissan Teana", Uds, IsoTp, "AUTEL 919"),
        R => ("Audi A4L", Uds, IsoTp, "AUTEL 919"),
    };
    let (formula_esvs, enum_esvs) = match id {
        A => (28, 0), B => (8, 0), C => (5, 0), D => (12, 5), E => (5, 4),
        F => (8, 5), G => (5, 22), H => (5, 13), I => (11, 0), J => (20, 20),
        K => (41, 0), L => (29, 20), M => (4, 14), N => (26, 19), O => (18, 9),
        P => (7, 6), Q => (18, 17), R => (40, 2),
    };
    let (ecrs, ecr_service) = match id {
        A => (11, Some(EcrService::Uds2F)),
        D => (5, Some(EcrService::Local30)),
        E => (3, Some(EcrService::Local30)),
        F => (5, Some(EcrService::Local30)),
        H => (6, Some(EcrService::Uds2F)),
        I => (10, Some(EcrService::Uds2F)),
        J => (27, Some(EcrService::Local30)),
        N => (21, Some(EcrService::Uds2F)),
        O => (4, Some(EcrService::Uds2F)),
        Q => (32, Some(EcrService::Local30)),
        _ => (0, None),
    };
    CarSpec {
        id,
        model,
        protocol,
        transport,
        tool,
        formula_esvs,
        enum_esvs,
        ecrs,
        ecr_service,
    }
}

/// ECU names used round-robin when distributing data points.
const ECU_NAMES: [&str; 6] = [
    "Engine",
    "Body Control",
    "ABS",
    "Instrument Cluster",
    "Transmission",
    "Airbag",
];

/// Per-ECU DID bases, so identifiers never collide within a car.
const DID_BASES: [u16; 6] = [0xF400, 0x0900, 0xDB00, 0x2000, 0x3000, 0x1000];

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// A one-variable UDS formula archetype: quantity, generator, codec.
fn uds_archetype(index: usize, seed: u64) -> (Sensor, EsvCodec) {
    // Jitter multiplies linear/square scale factors so each car's table is
    // its own "proprietary" variant while staying byte-representable.
    let jitter = [1.0, 1.25, 1.5, 2.0][(seed % 4) as usize];
    let walk = |start: f64, step: f64, min: f64, max: f64| SignalGenerator::Walk {
        start,
        step,
        min,
        max,
        dwell: Micros::from_millis(400),
        seed: mix(seed, 11, index as u64),
    };
    let sine = |mean: f64, amp: f64, secs: u64| SignalGenerator::Sine {
        mean,
        amplitude: amp,
        period: Micros::from_secs(secs),
    };
    let ramp = |from: f64, to: f64, secs: u64| SignalGenerator::Ramp {
        from,
        to,
        period: Micros::from_secs(secs),
    };
    match index % 12 {
        0 => (
            Sensor {
                quantity: Quantity::new("Engine Speed", "rpm", 0.0, 16383.75).with_decimals(0),
                generator: sine(2500.0, 1800.0, 20 + seed % 13),
            },
            EsvCodec {
                formula: EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 },
                strategy: EncodeStrategy::Split,
            },
        ),
        1 => (
            Sensor {
                quantity: Quantity::new("Vehicle Speed", "km/h", 0.0, 255.0).with_decimals(0),
                generator: walk(60.0, 8.0, 0.0, 200.0),
            },
            EsvCodec::single(EsvFormula::IDENTITY),
        ),
        2 => (
            Sensor {
                quantity: Quantity::new("Coolant Temperature", "degC", -40.0, 215.0)
                    .with_decimals(0),
                generator: ramp(20.0, 110.0, 45 + seed % 31),
            },
            EsvCodec::single(EsvFormula::Linear { a: 1.0, b: -40.0 }),
        ),
        3 => (
            Sensor {
                quantity: Quantity::new("Throttle Position", "%", 0.0, 100.0),
                generator: walk(15.0, 6.0, 0.0, 100.0),
            },
            EsvCodec::single(EsvFormula::Linear { a: 100.0 / 255.0 / jitter, b: 0.0 }),
        ),
        4 => (
            Sensor {
                quantity: Quantity::new("Battery Voltage", "V", 0.0, 25.5).with_decimals(1),
                generator: sine(12.8, 1.5, 9 + seed % 7),
            },
            EsvCodec::single(EsvFormula::Linear { a: 0.1, b: 0.0 }),
        ),
        5 => (
            Sensor {
                quantity: Quantity::new("Injection Quantity", "mg/st", 0.0, 120.0)
                    .with_decimals(1),
                generator: sine(55.0, 40.0, 15 + seed % 9),
            },
            // A genuine two-variable product on the wire (mantissa ×
            // scale byte), like the KWP engine-speed family.
            EsvCodec {
                formula: EsvFormula::Product { a: 0.002 * jitter, b: 0.0 },
                strategy: EncodeStrategy::ProductSplit,
            },
        ),
        6 => (
            Sensor {
                quantity: Quantity::new("Fuel Rate", "l/h", 5.0, 100.0).with_decimals(1),
                generator: walk(20.0, 4.0, 5.0, 100.0),
            },
            EsvCodec::single(EsvFormula::Inverse { a: 1000.0, b: 0.0 }),
        ),
        7 => (
            Sensor {
                quantity: Quantity::new("Air Mass Flow", "kg/h", 1.0, 650.25).with_decimals(1),
                generator: sine(300.0, 200.0, 17 + seed % 11),
            },
            EsvCodec::single(EsvFormula::Square { a: 0.01 * jitter, b: 0.0 }),
        ),
        8 => (
            Sensor {
                quantity: Quantity::new("Fuel Trim", "%", -100.0, 99.2).with_decimals(1),
                generator: sine(0.0, 20.0, 13 + seed % 9),
            },
            EsvCodec::single(EsvFormula::Linear { a: 0.78125, b: -100.0 }),
        ),
        9 => (
            Sensor {
                quantity: Quantity::new("Oil Temperature", "degC", -40.0, 215.0).with_decimals(0),
                // Sine, not ramp: oil temperature must be distinguishable
                // from the coolant ramp within one observation window, or
                // label association between the two becomes ambiguous.
                generator: sine(70.0, 30.0, 13 + seed % 7),
            },
            EsvCodec::single(EsvFormula::Linear { a: 1.0, b: -40.0 }),
        ),
        10 => (
            Sensor {
                // Encoded as a period; displayed as a flow rate — the
                // inverse encoding family.
                quantity: Quantity::new("Fuel Flow", "ml/s", 2.0, 25.0).with_decimals(1),
                generator: walk(10.0, 2.0, 2.5, 24.0),
            },
            EsvCodec::single(EsvFormula::Inverse { a: 500.0, b: 0.0 }),
        ),
        _ => (
            Sensor {
                // Square-companded encoding: fine resolution at low
                // pressures, coarse at high.
                quantity: Quantity::new("Charge Pressure", "kPa", 0.0, 520.2).with_decimals(0),
                generator: walk(150.0, 30.0, 10.0, 480.0),
            },
            EsvCodec::single(EsvFormula::Square { a: 0.008 * jitter, b: 0.0 }),
        ),
    }
}

/// A KWP measuring-block archetype: `(f_type, sensor, strategy)`. The
/// formula always comes from the car's standard formula-type table.
fn kwp_archetype(index: usize, seed: u64) -> (u8, Sensor, EncodeStrategy) {
    let walk = |start: f64, step: f64, min: f64, max: f64| SignalGenerator::Walk {
        start,
        step,
        min,
        max,
        dwell: Micros::from_millis(400),
        seed: mix(seed, 23, index as u64),
    };
    let sine = |mean: f64, amp: f64, secs: u64| SignalGenerator::Sine {
        mean,
        amplitude: amp,
        period: Micros::from_secs(secs),
    };
    let ramp = |from: f64, to: f64, secs: u64| SignalGenerator::Ramp {
        from,
        to,
        period: Micros::from_secs(secs),
    };
    match index % 10 {
        0 => (
            0x01,
            Sensor {
                quantity: Quantity::new("Engine Speed", "rpm", 0.0, 8000.0).with_decimals(0),
                generator: sine(2500.0, 1800.0, 20 + seed % 13),
            },
            EncodeStrategy::ProductSplit,
        ),
        1 => (
            0x07,
            Sensor {
                quantity: Quantity::new("Vehicle Speed", "km/h", 0.0, 255.0).with_decimals(0),
                generator: walk(60.0, 8.0, 0.0, 200.0),
            },
            // The paper's observation: the scale byte X0 is pinned at 100,
            // collapsing 0.01·X0·X1 to Y = X1.
            EncodeStrategy::FixedX0(100),
        ),
        2 => (
            0x05,
            Sensor {
                quantity: Quantity::new("Coolant Temperature", "degC", -40.0, 120.0)
                    .with_decimals(1),
                generator: ramp(20.0, 105.0, 45 + seed % 31),
            },
            EncodeStrategy::FixedX0(10),
        ),
        3 => (
            0x02,
            Sensor {
                quantity: Quantity::new("Duty Cycle", "%", 0.0, 100.0),
                generator: walk(40.0, 7.0, 0.0, 100.0),
            },
            EncodeStrategy::FixedX0(200),
        ),
        4 => (
            0x06,
            Sensor {
                quantity: Quantity::new("Battery Voltage", "V", 0.0, 17.8).with_decimals(2),
                generator: sine(12.8, 1.5, 9 + seed % 7),
            },
            EncodeStrategy::FixedX0(7),
        ),
        5 => (
            0x09,
            Sensor {
                quantity: Quantity::new("Idle Speed", "x32 rpm", 0.0, 255.0).with_decimals(0),
                generator: walk(25.0, 3.0, 15.0, 40.0),
            },
            EncodeStrategy::X0Only,
        ),
        6 => (
            0x0B,
            Sensor {
                quantity: Quantity::new("Oil Temperature", "degC", -40.0, 215.0).with_decimals(0),
                // Sine, not ramp — see the UDS oil-temperature archetype.
                generator: sine(70.0, 30.0, 13 + seed % 7),
            },
            EncodeStrategy::X0Only,
        ),
        7 => (
            0x04,
            Sensor {
                quantity: Quantity::new("Torque Assistance", "Nm", -12.8, 12.7).with_decimals(2),
                generator: sine(0.0, 10.0, 11 + seed % 5),
            },
            EncodeStrategy::FixedX0(100),
        ),
        8 => (
            0x0D,
            Sensor {
                quantity: Quantity::new("Air Flow", "kg/h", 0.0, 650.25).with_decimals(1),
                generator: sine(300.0, 200.0, 17 + seed % 11),
            },
            EncodeStrategy::X0Only,
        ),
        _ => (
            0x0F,
            Sensor {
                quantity: Quantity::new("Fuel Trim", "%", -100.0, 99.2).with_decimals(1),
                generator: sine(0.0, 20.0, 13 + seed % 9),
            },
            EncodeStrategy::X0Only,
        ),
    }
}

/// An enumeration archetype (no formula): quantity plus a stepping signal.
fn enum_archetype(index: usize, seed: u64) -> Sensor {
    let specs: [(&str, f64); 8] = [
        ("Door Status", 1.0),
        ("Gear Position", 5.0),
        ("Light Switch", 2.0),
        ("Central Lock Status", 1.0),
        ("A/C Status", 1.0),
        ("Window Position", 4.0),
        ("Wiper Mode", 3.0),
        ("Seatbelt Status", 1.0),
    ];
    let (name, max) = specs[index % specs.len()];
    let values: Vec<f64> = (0..=(max as usize)).map(|v| v as f64).collect();
    Sensor {
        quantity: Quantity::new(name, "state", 0.0, max).with_decimals(0),
        generator: SignalGenerator::Steps {
            values,
            dwell: Micros::from_millis(1500 + (mix(seed, 31, index as u64) % 2000)),
        },
    }
}

/// Component name pool for the ECR experiment.
const COMPONENT_NAMES: [&str; 12] = [
    "Fog Light Left",
    "Fog Light Right",
    "Wiper Motor",
    "Door Lock",
    "Trunk Release",
    "Horn",
    "Turn Signal Left",
    "Turn Signal Right",
    "Fuel Pump",
    "Cooling Fan",
    "Window Lift",
    "High Beam",
];

/// Builds the simulated vehicle for a Tab. 3 car. `seed` controls every
/// "proprietary" choice (formula assignment, signal shapes); the per-car
/// counts always match Tabs. 6 and 11 exactly.
pub fn build(id: CarId, seed: u64) -> Vehicle {
    let spec = spec(id);
    let car_seed = mix(seed, id as u64 + 1, 0xCA7);
    let total_points = spec.formula_esvs + spec.enum_esvs;
    let ecu_count = (total_points / 9).clamp(2, 6);

    let mut vehicle = Vehicle::new(spec.model);
    let mut ecus: Vec<Ecu> = (0..ecu_count)
        .map(|i| {
            let (req, rsp, addr) = match spec.transport {
                TransportKind::IsoTp => {
                    if i == 0 {
                        (0x7E0, 0x7E8, 0x01)
                    } else {
                        (0x710 + i as u16, 0x718 + i as u16, i as u8 + 1)
                    }
                }
                TransportKind::VwTp => (0x740 + i as u16, 0x300 + i as u16, i as u8 + 1),
                // BMW raw: every ECU listens on the tester id 0x6F1 and is
                // selected by the address byte; responses leave on
                // 0x600 + address.
                TransportKind::BmwRaw => (0x6F1, 0x640 + i as u16, 0x40 + i as u8),
            };
            let mut ecu = Ecu::new(
                ECU_NAMES[i],
                CanId::standard(req).expect("profile ids are 11-bit"),
                CanId::standard(rsp).expect("profile ids are 11-bit"),
                spec.transport,
                spec.protocol,
            );
            ecu.address = addr;
            ecu
        })
        .collect();

    // ——— formula ESVs ———
    let mut formula_slots: Vec<(usize, Sensor, EsvCodec, Option<u8>)> = Vec::new();
    // Pinned Tab. 7 dashboard formulas come first on the engine ECU.
    match id {
        CarId::F => {
            formula_slots.push((
                0,
                Sensor {
                    quantity: Quantity::new("Engine Speed", "x32 rpm", 0.0, 255.0)
                        .with_decimals(0),
                    generator: SignalGenerator::Sine {
                        mean: 90.0,
                        amplitude: 60.0,
                        period: Micros::from_secs(20),
                    },
                },
                EsvCodec::single(EsvFormula::IDENTITY),
                None,
            ));
        }
        CarId::K => {
            let (f_type, sensor, strategy) = kwp_archetype(0, car_seed);
            let formula = *dpr_protocol::kwp::FormulaTypeTable::standard()
                .get(f_type)
                .expect("table has type 0x01");
            formula_slots.push((0, sensor, EsvCodec { formula, strategy }, Some(f_type)));
        }
        CarId::L => {
            formula_slots.push((
                0,
                Sensor {
                    quantity: Quantity::new("Coolant Temperature", "degC", 0.0, 127.5)
                        .with_decimals(1),
                    generator: SignalGenerator::Ramp {
                        from: 20.0,
                        to: 105.0,
                        period: Micros::from_secs(50),
                    },
                },
                EsvCodec::single(EsvFormula::Linear { a: 0.5, b: 0.0 }),
                None,
            ));
        }
        CarId::R => {
            let (sensor, codec) = uds_archetype(0, car_seed);
            formula_slots.push((0, sensor, codec, None));
        }
        _ => {}
    }
    while formula_slots.len() < spec.formula_esvs {
        let i = formula_slots.len();
        let point_seed = mix(car_seed, 101, i as u64);
        match spec.protocol {
            Protocol::Uds => {
                let (sensor, codec) = uds_archetype(i, point_seed);
                formula_slots.push((i % ecu_count, sensor, codec, None));
            }
            Protocol::Kwp2000 => {
                let (f_type, sensor, strategy) = kwp_archetype(i, point_seed);
                let formula = *dpr_protocol::kwp::FormulaTypeTable::standard()
                    .get(f_type)
                    .expect("archetype f_types exist in the standard table");
                formula_slots.push((i % ecu_count, sensor, EsvCodec { formula, strategy }, Some(f_type)));
            }
        }
    }

    // ——— enumeration ESVs ———
    let mut enum_slots: Vec<(usize, Sensor)> = Vec::new();
    for i in 0..spec.enum_esvs {
        let point_seed = mix(car_seed, 202, i as u64);
        // Enumerations live on body-domain ECUs where possible.
        let ecu_idx = if ecu_count > 1 { 1 + i % (ecu_count - 1) } else { 0 };
        enum_slots.push((ecu_idx, enum_archetype(i, point_seed)));
    }

    // Materialize points into ECU tables.
    let mut per_ecu_counter = vec![0usize; ecu_count];
    let mut dashboard: Vec<(EsvId, String)> = Vec::new();
    for (slot_idx, (ecu_idx, sensor, codec, f_type)) in formula_slots.into_iter().enumerate() {
        let n = per_ecu_counter[ecu_idx];
        per_ecu_counter[ecu_idx] += 1;
        let label = sensor.quantity.name().to_string();
        let esv_id = match spec.protocol {
            Protocol::Uds => {
                let did = Did(DID_BASES[ecu_idx] + n as u16);
                ecus[ecu_idx].add_uds_point(did, sensor, codec);
                EsvId::Uds(did)
            }
            Protocol::Kwp2000 => {
                // Up to three displayed ESVs per measuring block; blocks
                // are padded to full length with hidden filler slots below.
                let local_id = LocalId(0x01 + (n / 3) as u8 + (ecu_idx as u8) * 0x20);
                let slot = n % 3;
                ecus[ecu_idx].add_kwp_slot(
                    local_id,
                    f_type.expect("KWP slots always carry a formula type"),
                    sensor,
                    codec,
                );
                EsvId::Kwp { local_id, slot }
            }
        };
        // The pinned Tab. 7 signal is always slot 0 on the engine ECU.
        if slot_idx == 0 && matches!(id, CarId::F | CarId::K | CarId::L | CarId::R) {
            dashboard.push((esv_id, label));
        }
    }
    for (ecu_idx, sensor) in enum_slots {
        let n = per_ecu_counter[ecu_idx];
        per_ecu_counter[ecu_idx] += 1;
        match spec.protocol {
            Protocol::Uds => {
                let did = Did(DID_BASES[ecu_idx] + n as u16);
                ecus[ecu_idx].add_uds_point(
                    did,
                    sensor,
                    EsvCodec::single(EsvFormula::Enumeration),
                );
            }
            Protocol::Kwp2000 => {
                let local_id = LocalId(0x01 + (n / 3) as u8 + (ecu_idx as u8) * 0x20);
                ecus[ecu_idx].add_kwp_slot(
                    local_id,
                    dpr_protocol::kwp::ENUM_TYPE,
                    sensor,
                    EsvCodec::single(EsvFormula::Enumeration),
                );
            }
        }
    }

    // ——— pad KWP measuring blocks with hidden filler slots ———
    // Real VW measuring-block responses carry far more values than the
    // tool displays; the undisplayed remainder is what makes 75.2% of the
    // paper's Tab. 9 KWP frames multi-frame. Pad every block to 15 slots
    // (a 47-byte response spanning seven VW TP 2.0 frames).
    if spec.protocol == Protocol::Kwp2000 {
        for ecu in ecus.iter_mut() {
            let blocks: Vec<(LocalId, usize)> = ecu
                .kwp_block_lengths()
                .into_iter()
                .collect();
            for (local_id, len) in blocks {
                for k in len..15 {
                    let filler_seed = mix(car_seed, 505, (local_id.0 as u64) << 8 | k as u64);
                    // Fillers are near-constant status bytes, as the
                    // undisplayed remainder of real measuring blocks is —
                    // and constants cannot spuriously claim a displayed
                    // label during association.
                    let value = (filler_seed % 6) as f64;
                    ecu.add_kwp_filler_slot(
                        local_id,
                        dpr_protocol::kwp::ENUM_TYPE,
                        Sensor {
                            quantity: Quantity::new("Status", "state", 0.0, 255.0)
                                .with_decimals(0),
                            generator: SignalGenerator::Constant(value),
                        },
                        EsvCodec::single(EsvFormula::Enumeration),
                    );
                }
            }
        }
    }

    // ——— controllable components (Tab. 11) ———
    for i in 0..spec.ecrs {
        let ecu_idx = if ecu_count > 1 { 1 + i % (ecu_count - 1) } else { 0 };
        let name = COMPONENT_NAMES[i % COMPONENT_NAMES.len()];
        let component = if mix(car_seed, 303, i as u64).is_multiple_of(3) {
            Component::new(name).strict()
        } else {
            Component::new(name)
        };
        let key = match spec.ecr_service.expect("ecrs > 0 implies a service") {
            EcrService::Uds2F => ComponentKey::UdsDid(Did(0x0950 + i as u16)),
            EcrService::Local30 => ComponentKey::KwpLocal(LocalId(0x11 + i as u8)),
        };
        ecus[ecu_idx].add_component(key, component);
        // Every third UDS-controlled component sits behind SecurityAccess
        // (real body/chassis ECUs gate actuators this way); the hosting
        // ECU gets a per-car seed-key secret.
        if spec.ecr_service == Some(EcrService::Uds2F) && i % 3 == 2 {
            let secret = (mix(car_seed, 606, 0) & 0xFFFF) as u16;
            ecus[ecu_idx].security_secret.get_or_insert(secret);
            ecus[ecu_idx].secure_component(key);
        }
    }

    // ——— OBD-II on the engine controller (every car supports it) ———
    let obd_gens: Vec<(Pid, SignalGenerator)> = vec![
        (Pid(0x0C), SignalGenerator::Sine {
            mean: 2500.0,
            amplitude: 1800.0,
            period: Micros::from_secs(20),
        }),
        (Pid(0x0D), SignalGenerator::Walk {
            start: 60.0,
            step: 8.0,
            min: 0.0,
            max: 200.0,
            dwell: Micros::from_millis(400),
            seed: mix(car_seed, 404, 1),
        }),
        (Pid(0x05), SignalGenerator::Ramp {
            from: 20.0,
            to: 110.0,
            period: Micros::from_secs(50),
        }),
        (Pid(0x11), SignalGenerator::Walk {
            start: 15.0,
            step: 6.0,
            min: 0.0,
            max: 100.0,
            dwell: Micros::from_millis(400),
            seed: mix(car_seed, 404, 2),
        }),
        (Pid(0x04), SignalGenerator::Walk {
            start: 30.0,
            step: 9.0,
            min: 0.0,
            max: 100.0,
            dwell: Micros::from_millis(400),
            seed: mix(car_seed, 404, 3),
        }),
        (Pid(0x2F), SignalGenerator::Ramp {
            from: 80.0,
            to: 20.0,
            period: Micros::from_secs(300),
        }),
        (Pid(0x0B), SignalGenerator::Walk {
            start: 100.0,
            step: 15.0,
            min: 20.0,
            max: 250.0,
            dwell: Micros::from_millis(400),
            seed: mix(car_seed, 404, 4),
        }),
        (Pid(0x0F), SignalGenerator::Ramp {
            from: 15.0,
            to: 45.0,
            period: Micros::from_secs(120),
        }),
        (Pid(0x42), SignalGenerator::Sine {
            mean: 13.8,
            amplitude: 0.8,
            period: Micros::from_secs(9),
        }),
        (Pid(0x46), SignalGenerator::Constant(24.0)),
    ];
    // OBD-II is mandated over ISO 15765 regardless of the proprietary
    // transport: ISO-TP cars answer it on the engine controller; VW TP and
    // BMW-raw cars expose it through a dedicated gateway ECU on the
    // standard 0x7E0/0x7E8 pair.
    if spec.transport == TransportKind::IsoTp {
        for (pid, generator) in obd_gens {
            debug_assert!(obd::pid_spec(pid).is_some());
            ecus[0].add_obd_pid(pid, generator);
        }
    } else {
        let mut gateway = Ecu::new(
            "OBD Gateway",
            CanId::standard(0x7E0).expect("standard OBD request id"),
            CanId::standard(0x7E8).expect("standard OBD response id"),
            TransportKind::IsoTp,
            Protocol::Uds,
        );
        for (pid, generator) in obd_gens {
            debug_assert!(obd::pid_spec(pid).is_some());
            gateway.add_obd_pid(pid, generator);
        }
        ecus.push(gateway);
    }

    // A few stored trouble codes per car (UDS cars): realistic DTC-read
    // traffic for the tool and the app corpus, and a safety invariant for
    // the collector (it must never clear them — its UI blacklist).
    if spec.protocol == Protocol::Uds {
        let n_dtcs = (mix(car_seed, 707, 0) % 4) as usize + 1;
        for d in 0..n_dtcs {
            let h = mix(car_seed, 708, d as u64);
            let code = 0x0100 | (h % 0x0400) as u16;
            let status = 0x08 | ((h >> 16) as u8 & 0x27);
            let ecu_idx = d % ecus.len();
            ecus[ecu_idx].add_dtc(code, status);
        }
    }

    for ecu in ecus {
        vehicle.add_ecu(ecu);
    }
    for (esv_id, label) in dashboard {
        vehicle.add_dashboard_signal(esv_id, label);
    }
    vehicle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_tab6_for_every_car() {
        for id in CarId::ALL {
            let s = spec(id);
            let car = build(id, 42);
            let formula = car
                .esv_points()
                .filter(|p| p.formula.has_formula())
                .count();
            let enums = car
                .esv_points()
                .filter(|p| !p.formula.has_formula())
                .count();
            assert_eq!(formula, s.formula_esvs, "{id}: formula ESV count");
            assert_eq!(enums, s.enum_esvs, "{id}: enum ESV count");
        }
    }

    #[test]
    fn tab6_totals() {
        let total_formula: usize = CarId::ALL.iter().map(|&c| spec(c).formula_esvs).sum();
        let total_enum: usize = CarId::ALL.iter().map(|&c| spec(c).enum_esvs).sum();
        assert_eq!(total_formula, 290, "Tab. 6 total #ESV (formula)");
        assert_eq!(total_enum, 156, "Tab. 6 total #ESV (Enum)");
    }

    #[test]
    fn tab11_totals() {
        let total_ecrs: usize = CarId::ALL.iter().map(|&c| spec(c).ecrs).sum();
        assert_eq!(total_ecrs, 124, "Tab. 11 total #ECR");
        let cars_with_ecrs = CarId::ALL.iter().filter(|&&c| spec(c).ecrs > 0).count();
        assert_eq!(cars_with_ecrs, 10, "Tab. 11 covers ten vehicles");
    }

    #[test]
    fn component_counts_match_tab11() {
        for id in [CarId::A, CarId::J, CarId::Q] {
            let s = spec(id);
            let car = build(id, 7);
            let components: usize = car
                .ecus()
                .iter()
                .map(|e| e.component_keys().count())
                .sum();
            assert_eq!(components, s.ecrs, "{id}");
        }
    }

    #[test]
    fn transports_follow_manufacturer() {
        assert_eq!(spec(CarId::B).transport, TransportKind::VwTp);
        assert_eq!(spec(CarId::K).transport, TransportKind::VwTp);
        assert_eq!(spec(CarId::G).transport, TransportKind::BmwRaw);
        assert_eq!(spec(CarId::J).transport, TransportKind::BmwRaw);
        assert_eq!(spec(CarId::L).transport, TransportKind::IsoTp);
    }

    #[test]
    fn dashboard_cars_have_pinned_formulas() {
        // Tab. 7: F → Y = X, K → Y = X0·X1/5, L → Y = 0.5X, R → affine2.
        let f = build(CarId::F, 1);
        assert_eq!(f.dashboard().len(), 1);
        let fp = f
            .esv_points()
            .find(|p| p.id == f.dashboard()[0].id)
            .unwrap();
        assert_eq!(fp.formula, EsvFormula::IDENTITY);

        let k = build(CarId::K, 1);
        let kp = k
            .esv_points()
            .find(|p| p.id == k.dashboard()[0].id)
            .unwrap();
        assert_eq!(kp.formula, EsvFormula::Product { a: 0.2, b: 0.0 });

        let l = build(CarId::L, 1);
        let lp = l
            .esv_points()
            .find(|p| p.id == l.dashboard()[0].id)
            .unwrap();
        assert_eq!(lp.formula, EsvFormula::Linear { a: 0.5, b: 0.0 });

        let r = build(CarId::R, 1);
        let rp = r
            .esv_points()
            .find(|p| p.id == r.dashboard()[0].id)
            .unwrap();
        assert!(matches!(rp.formula, EsvFormula::Affine2 { .. }));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(CarId::N, 9);
        let b = build(CarId::N, 9);
        let pa: Vec<_> = a.esv_points().collect();
        let pb: Vec<_> = b.esv_points().collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_vary_proprietary_content() {
        let a = build(CarId::A, 1);
        let b = build(CarId::A, 2);
        let fa: Vec<_> = a.esv_points().map(|p| p.formula).collect();
        let fb: Vec<_> = b.esv_points().map(|p| p.formula).collect();
        // Counts equal, content (jittered coefficients) differs somewhere.
        assert_eq!(fa.len(), fb.len());
        assert_ne!(fa, fb);
    }

    #[test]
    fn engine_ecu_answers_obd() {
        let mut bus = dpr_can::CanBus::new();
        let car = build(CarId::L, 3).attach(&mut bus);
        let engine = car.ecu("Engine").unwrap();
        let mut engine = engine.clone();
        let rsp = engine.handle(&[0x01, 0x0D], Micros::from_secs(1)).unwrap();
        assert_eq!(rsp[0], 0x41);
        assert_eq!(rsp[1], 0x0D);
    }

    #[test]
    fn every_car_attaches_and_serves_reads() {
        use dpr_transport::isotp::IsoTpEndpoint;
        use dpr_transport::Endpoint;

        // Exercise an end-to-end read on every ISO-TP car.
        for id in CarId::ALL {
            let s = spec(id);
            if s.transport != TransportKind::IsoTp {
                continue;
            }
            let mut bus = dpr_can::CanBus::new();
            let tester_node = bus.attach("tester");
            let mut car = build(id, 5).attach(&mut bus);
            let points = car.esv_points();
            let Some(point) = points.iter().find(|p| matches!(p.id, EsvId::Uds(_))) else {
                continue;
            };
            let EsvId::Uds(did) = point.id else { unreachable!() };
            let ecu = car.ecus().find(|e| e.name() == point.ecu).unwrap();
            let mut tester = IsoTpEndpoint::new(ecu.request_id(), ecu.response_id());
            tester
                .send(&dpr_protocol::uds::UdsRequest::ReadDataById { dids: vec![did] }.encode(), Micros::ZERO)
                .unwrap();
            crate::vehicle::run_exchange(&mut bus, tester_node, &mut tester, &mut car).unwrap();
            let rsp = tester.receive().unwrap_or_else(|| panic!("{id}: no response"));
            assert_eq!(rsp[0], 0x62, "{id}: {rsp:02X?}");
        }
    }
}
