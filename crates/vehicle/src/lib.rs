//! Vehicle simulator: the "18 real vehicles" substrate of the evaluation.
//!
//! The paper's hardware — real cars with proprietary ECU tables — is
//! replaced by this simulator (see DESIGN.md for the substitution
//! argument). A [`Vehicle`] is a set of [`Ecu`]s behind an OBD port; each
//! ECU owns
//!
//! * **sensors** whose physical values evolve over logical time
//!   ([`signal`]),
//! * a proprietary **DID / local-id table** mapping identifiers to sensors
//!   and to the [`EsvFormula`](dpr_protocol::EsvFormula) used to encode raw
//!   response bytes ([`codec`]),
//! * **controllable components** implementing the UDS/KWP IO-control state
//!   machine (freeze → short-term adjustment → return control, the pattern
//!   the paper's Tab. 11 recovers) ([`component`]),
//! * and a transport endpoint (ISO-TP, VW TP 2.0, or BMW raw, per car).
//!
//! The [`profiles`] module instantiates the 18 cars of the paper's Tab. 3
//! with per-car ESV/ECR counts matching Tabs. 6 and 11, deterministically
//! from a seed.
//!
//! # Example
//!
//! ```
//! use dpr_vehicle::profiles::{self, CarId};
//!
//! let car = profiles::build(CarId::A, 7);
//! assert_eq!(car.name(), "Skoda Octavia");
//! assert!(car.ecus().len() >= 2);
//! // Car A (Tab. 6): 28 ESVs with formulas, 0 enum ESVs.
//! assert_eq!(car.esv_points().filter(|p| p.formula.has_formula()).count(), 28);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod component;
pub mod ecu;
pub mod profiles;
pub mod signal;
mod vehicle;

pub use codec::{EncodeStrategy, EsvCodec};
pub use component::{Component, ComponentAction, ControlState};
pub use ecu::{DashboardSignal, Ecu, EsvPoint, TransportKind};
pub use vehicle::{run_exchange, AttachedVehicle, SessionError, Vehicle};
