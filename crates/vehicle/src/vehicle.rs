//! The vehicle runtime: ECUs bound to a bus behind the OBD port.

use std::fmt;

use dpr_can::{CanBus, Micros, NodeHandle};
use dpr_transport::bmw::BmwRawEndpoint;
use dpr_transport::isotp::IsoTpEndpoint;
use dpr_transport::vwtp::VwTpEndpoint;
use dpr_transport::{Endpoint, TransportError};

use crate::ecu::{DashboardSignal, Ecu, EsvId, EsvPoint, TransportKind};

/// The tester's address byte in the BMW raw scheme.
pub const TESTER_ADDRESS: u8 = 0xF1;

/// A vehicle: a named set of ECUs plus dashboard metadata. Build one from
/// a Tab. 3 profile ([`crate::profiles::build`]) or assemble it manually,
/// then [`attach`](Vehicle::attach) it to a bus.
#[derive(Debug, Clone)]
pub struct Vehicle {
    name: String,
    ecus: Vec<Ecu>,
    dashboard: Vec<DashboardSignal>,
}

impl Vehicle {
    /// Creates an empty vehicle.
    pub fn new(name: impl Into<String>) -> Self {
        Vehicle {
            name: name.into(),
            ecus: Vec::new(),
            dashboard: Vec::new(),
        }
    }

    /// The vehicle model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an ECU.
    pub fn add_ecu(&mut self, ecu: Ecu) -> &mut Self {
        self.ecus.push(ecu);
        self
    }

    /// Marks an ESV as mirrored on the dashboard (Tab. 7 ground truth).
    pub fn add_dashboard_signal(&mut self, id: EsvId, label: impl Into<String>) -> &mut Self {
        self.dashboard.push(DashboardSignal {
            id,
            label: label.into(),
        });
        self
    }

    /// The ECUs.
    pub fn ecus(&self) -> &[Ecu] {
        &self.ecus
    }

    /// Dashboard-mirrored signals.
    pub fn dashboard(&self) -> &[DashboardSignal] {
        &self.dashboard
    }

    /// Ground truth for every readable ESV across all ECUs.
    pub fn esv_points(&self) -> impl Iterator<Item = EsvPoint> + '_ {
        self.ecus.iter().flat_map(|e| e.esv_points())
    }

    /// The true sensor value behind an ESV at time `t`, scanning all ECUs.
    pub fn true_value(&self, id: EsvId, t: Micros) -> Option<f64> {
        self.ecus.iter().find_map(|e| e.true_value(id, t))
    }

    /// The `(request id, response id)` of the ECU answering OBD-II, if
    /// the vehicle has one (all profile-built vehicles do: OBD-II runs
    /// over ISO-TP even on VW TP / BMW-raw cars, via a gateway ECU).
    pub fn obd_ids(&self) -> Option<(dpr_can::CanId, dpr_can::CanId)> {
        self.ecus
            .iter()
            .find(|e| e.supports_obd())
            .map(|e| (e.request_id(), e.response_id()))
    }

    /// Binds every ECU to the bus, creating one node and one transport
    /// endpoint per ECU.
    pub fn attach(self, bus: &mut CanBus) -> AttachedVehicle {
        let runtimes = self
            .ecus
            .into_iter()
            .map(|ecu| {
                let node = bus.attach(format!("{}/{}", self.name, ecu.name()));
                let endpoint: Box<dyn Endpoint> = match ecu.transport() {
                    TransportKind::IsoTp => {
                        Box::new(IsoTpEndpoint::new(ecu.response_id(), ecu.request_id()))
                    }
                    TransportKind::VwTp => Box::new(VwTpEndpoint::responder(
                        ecu.response_id(),
                        ecu.request_id(),
                        ecu.address,
                    )),
                    TransportKind::BmwRaw => Box::new(BmwRawEndpoint::new(
                        ecu.response_id(),
                        ecu.request_id(),
                        TESTER_ADDRESS,
                        ecu.address,
                    )),
                };
                EcuRuntime {
                    ecu,
                    endpoint,
                    node,
                }
            })
            .collect();
        AttachedVehicle {
            name: self.name,
            dashboard: self.dashboard,
            runtimes,
        }
    }
}

struct EcuRuntime {
    ecu: Ecu,
    endpoint: Box<dyn Endpoint>,
    node: NodeHandle,
}

/// A vehicle bound to a bus: ECUs with live transport endpoints.
pub struct AttachedVehicle {
    name: String,
    dashboard: Vec<DashboardSignal>,
    runtimes: Vec<EcuRuntime>,
}

impl fmt::Debug for AttachedVehicle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttachedVehicle")
            .field("name", &self.name)
            .field("ecus", &self.runtimes.len())
            .finish()
    }
}

impl AttachedVehicle {
    /// The vehicle model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dashboard-mirrored signals.
    pub fn dashboard(&self) -> &[DashboardSignal] {
        &self.dashboard
    }

    /// Immutable access to the ECUs (for ground truth and assertions).
    pub fn ecus(&self) -> impl Iterator<Item = &Ecu> {
        self.runtimes.iter().map(|r| &r.ecu)
    }

    /// Looks up an ECU by name.
    pub fn ecu(&self, name: &str) -> Option<&Ecu> {
        self.runtimes
            .iter()
            .map(|r| &r.ecu)
            .find(|e| e.name() == name)
    }

    /// Ground truth for every readable ESV.
    pub fn esv_points(&self) -> Vec<EsvPoint> {
        self.runtimes
            .iter()
            .flat_map(|r| r.ecu.esv_points())
            .collect()
    }

    /// The true sensor value behind an ESV at time `t`.
    pub fn true_value(&self, id: EsvId, t: Micros) -> Option<f64> {
        self.runtimes.iter().find_map(|r| r.ecu.true_value(id, t))
    }

    /// The `(request id, response id)` of the OBD-capable ECU, if any.
    pub fn obd_ids(&self) -> Option<(dpr_can::CanId, dpr_can::CanId)> {
        self.runtimes
            .iter()
            .map(|r| &r.ecu)
            .find(|e| e.supports_obd())
            .map(|e| (e.request_id(), e.response_id()))
    }

    /// The dashboard reading at time `t`: label and true value per signal.
    pub fn dashboard_read(&self, t: Micros) -> Vec<(String, f64)> {
        self.dashboard
            .iter()
            .filter_map(|d| {
                self.true_value(d.id, t)
                    .map(|v| (d.label.clone(), v))
            })
            .collect()
    }
}

/// Error while running a diagnostic exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A transport state machine raised an error.
    Transport(TransportError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Transport(e) => write!(f, "transport error during session: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Transport(e) => Some(e),
        }
    }
}

impl From<TransportError> for SessionError {
    fn from(e: TransportError) -> Self {
        SessionError::Transport(e)
    }
}

/// Drives a full request/response exchange between a tester endpoint and
/// the vehicle until the bus is quiescent: transport frames flow, ECUs
/// execute application logic, and responses travel back. Returns the time
/// at which the system went quiescent.
///
/// # Errors
///
/// Propagates transport errors from either side.
pub fn run_exchange(
    bus: &mut CanBus,
    tester_node: NodeHandle,
    tester: &mut dyn Endpoint,
    vehicle: &mut AttachedVehicle,
) -> Result<Micros, SessionError> {
    loop {
        let mut moved = false;
        let now = bus.now();

        for out in tester.outgoing(now) {
            bus.transmit(tester_node, out.frame, out.ready_at);
            moved = true;
        }
        for rt in &mut vehicle.runtimes {
            for out in rt.endpoint.outgoing(now) {
                bus.transmit(rt.node, out.frame, out.ready_at);
                moved = true;
            }
        }

        if let Some(entry) = bus.step() {
            moved = true;
            tester.handle_frame(&entry.frame, entry.at)?;
            for rt in &mut vehicle.runtimes {
                rt.endpoint.handle_frame(&entry.frame, entry.at)?;
            }
        }

        // Application layer: ECUs answer completed requests.
        let now = bus.now();
        for rt in &mut vehicle.runtimes {
            while let Some(request) = rt.endpoint.receive() {
                if let Some(response) = rt.ecu.handle(&request, now) {
                    rt.endpoint
                        .send(&response, now + rt.ecu.response_delay)?;
                    moved = true;
                }
            }
        }

        if !moved && bus.pending_len() == 0 {
            return Ok(bus.now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::EsvCodec;
    use crate::ecu::{ComponentKey, Protocol, Sensor};
    use crate::signal::SignalGenerator;
    use crate::Component;
    use dpr_can::CanId;
    use dpr_protocol::uds::Did;
    use dpr_protocol::{EsvFormula, Quantity};

    fn test_vehicle() -> Vehicle {
        let mut ecu = Ecu::new(
            "Engine",
            CanId::standard(0x7E0).unwrap(),
            CanId::standard(0x7E8).unwrap(),
            TransportKind::IsoTp,
            Protocol::Uds,
        );
        ecu.add_uds_point(
            Did(0xF40D),
            Sensor {
                quantity: Quantity::new("Vehicle Speed", "km/h", 0.0, 255.0),
                generator: SignalGenerator::Constant(88.0),
            },
            EsvCodec::single(EsvFormula::IDENTITY),
        );
        ecu.add_component(
            ComponentKey::UdsDid(Did(0x0950)),
            Component::new("fog light"),
        );
        let mut v = Vehicle::new("Test Car");
        v.add_ecu(ecu);
        v.add_dashboard_signal(EsvId::Uds(Did(0xF40D)), "Speed");
        v
    }

    #[test]
    fn full_uds_read_over_the_bus() {
        let mut bus = CanBus::new();
        let tester_node = bus.attach("tester");
        let mut vehicle = test_vehicle().attach(&mut bus);
        let mut tester = IsoTpEndpoint::new(
            CanId::standard(0x7E0).unwrap(),
            CanId::standard(0x7E8).unwrap(),
        );

        tester.send(&[0x22, 0xF4, 0x0D], Micros::ZERO).unwrap();
        run_exchange(&mut bus, tester_node, &mut tester, &mut vehicle).unwrap();

        let response = tester.receive().expect("ECU should answer");
        assert_eq!(response, vec![0x62, 0xF4, 0x0D, 88]);
    }

    #[test]
    fn io_control_over_the_bus_drives_component() {
        let mut bus = CanBus::new();
        let tester_node = bus.attach("tester");
        let mut vehicle = test_vehicle().attach(&mut bus);
        let mut tester = IsoTpEndpoint::new(
            CanId::standard(0x7E0).unwrap(),
            CanId::standard(0x7E8).unwrap(),
        );

        for req in dpr_protocol::uds::io_control_procedure(Did(0x0950), vec![0x05, 0x01]) {
            tester.send(&req.encode(), bus.now()).unwrap();
            run_exchange(&mut bus, tester_node, &mut tester, &mut vehicle).unwrap();
            let rsp = tester.receive().expect("response expected");
            assert_eq!(rsp[0], 0x6F);
        }
        let ecu = vehicle.ecu("Engine").unwrap();
        assert!(ecu
            .component(ComponentKey::UdsDid(Did(0x0950)))
            .unwrap()
            .was_adjusted());
    }

    #[test]
    fn dashboard_reads_true_values() {
        let mut bus = CanBus::new();
        let vehicle = test_vehicle().attach(&mut bus);
        let read = vehicle.dashboard_read(Micros::from_secs(1));
        assert_eq!(read, vec![("Speed".to_string(), 88.0)]);
    }

    #[test]
    fn unknown_esv_yields_none() {
        let mut bus = CanBus::new();
        let vehicle = test_vehicle().attach(&mut bus);
        assert_eq!(vehicle.true_value(EsvId::Uds(Did(0x1234)), Micros::ZERO), None);
    }
}
