//! Controllable components and the IO-control state machine.
//!
//! The paper's §4.5 finds that every recovered control procedure follows
//! the same three-message pattern: **freeze current state** (0x02), then
//! **short-term adjustment** with the control state (0x03), then **return
//! control to the ECU** (0x00). [`Component`] implements exactly that
//! state machine and records every accepted action so experiments (and the
//! Tab. 13 replay attack demo) can verify that injected messages actually
//! trigger behaviour.

use dpr_can::Micros;
use dpr_protocol::uds::IoControlParameter;
use serde::{Deserialize, Serialize};

/// The control state of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ControlState {
    /// The ECU controls the component normally.
    #[default]
    EcuControlled,
    /// State frozen, awaiting an adjustment.
    Frozen,
    /// The tester is actively driving the component.
    Adjusted,
}

/// A record of one accepted control action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentAction {
    /// When the action was accepted.
    pub at: Micros,
    /// The IO-control parameter that triggered it.
    pub param: IoControlParameter,
    /// The control-state bytes that accompanied it (empty for freeze /
    /// return).
    pub state: Vec<u8>,
}

/// A controllable vehicle component (fog light, wiper, door lock, window…).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    name: String,
    state: ControlState,
    actions: Vec<ComponentAction>,
    /// Whether the component rejects adjustment without a prior freeze —
    /// most real ECUs accept either; some insist on the full procedure.
    strict_procedure: bool,
}

impl Component {
    /// Creates a component that accepts adjustments with or without a
    /// prior freeze (the common, lenient behaviour).
    pub fn new(name: impl Into<String>) -> Self {
        Component {
            name: name.into(),
            state: ControlState::EcuControlled,
            actions: Vec::new(),
            strict_procedure: false,
        }
    }

    /// Makes the component insist on freeze-before-adjust.
    pub fn strict(mut self) -> Self {
        self.strict_procedure = true;
        self
    }

    /// The component's display name (what the tool UI shows).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current control state.
    pub fn state(&self) -> ControlState {
        self.state
    }

    /// Every accepted action, oldest first.
    pub fn actions(&self) -> &[ComponentAction] {
        &self.actions
    }

    /// Handles one IO-control request. Returns `true` (and records the
    /// action) if the request is accepted in the current state.
    pub fn handle(&mut self, param: IoControlParameter, state: &[u8], at: Micros) -> bool {
        let accepted = match param {
            IoControlParameter::FreezeCurrentState => {
                self.state = ControlState::Frozen;
                true
            }
            IoControlParameter::ShortTermAdjustment => {
                if self.strict_procedure && self.state == ControlState::EcuControlled {
                    false
                } else {
                    self.state = ControlState::Adjusted;
                    true
                }
            }
            IoControlParameter::ReturnControlToEcu | IoControlParameter::ResetToDefault => {
                self.state = ControlState::EcuControlled;
                true
            }
        };
        if accepted {
            self.actions.push(ComponentAction {
                at,
                param,
                state: state.to_vec(),
            });
        }
        accepted
    }

    /// Whether the component was actually driven (an adjustment was
    /// accepted) — the success criterion for the replay experiment.
    pub fn was_adjusted(&self) -> bool {
        self.actions
            .iter()
            .any(|a| a.param == IoControlParameter::ShortTermAdjustment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Micros {
        Micros::from_millis(ms)
    }

    #[test]
    fn full_procedure_walks_the_state_machine() {
        let mut c = Component::new("fog light");
        assert_eq!(c.state(), ControlState::EcuControlled);

        assert!(c.handle(IoControlParameter::FreezeCurrentState, &[], t(0)));
        assert_eq!(c.state(), ControlState::Frozen);

        assert!(c.handle(
            IoControlParameter::ShortTermAdjustment,
            &[0x05, 0x01, 0x00, 0x00],
            t(10)
        ));
        assert_eq!(c.state(), ControlState::Adjusted);
        assert!(c.was_adjusted());

        assert!(c.handle(IoControlParameter::ReturnControlToEcu, &[], t(20)));
        assert_eq!(c.state(), ControlState::EcuControlled);
        assert_eq!(c.actions().len(), 3);
    }

    #[test]
    fn lenient_component_accepts_direct_adjustment() {
        let mut c = Component::new("wiper");
        assert!(c.handle(IoControlParameter::ShortTermAdjustment, &[0x1C], t(0)));
        assert!(c.was_adjusted());
    }

    #[test]
    fn strict_component_requires_freeze_first() {
        let mut c = Component::new("window").strict();
        assert!(!c.handle(IoControlParameter::ShortTermAdjustment, &[0x01], t(0)));
        assert!(!c.was_adjusted());
        assert!(c.handle(IoControlParameter::FreezeCurrentState, &[], t(1)));
        assert!(c.handle(IoControlParameter::ShortTermAdjustment, &[0x01], t(2)));
        assert!(c.was_adjusted());
    }

    #[test]
    fn actions_record_state_bytes_and_times() {
        let mut c = Component::new("lock");
        c.handle(IoControlParameter::ShortTermAdjustment, &[0xB0, 0x03], t(5));
        let a = &c.actions()[0];
        assert_eq!(a.state, vec![0xB0, 0x03]);
        assert_eq!(a.at, t(5));
        assert_eq!(a.param, IoControlParameter::ShortTermAdjustment);
    }

    #[test]
    fn reset_to_default_returns_control() {
        let mut c = Component::new("light");
        c.handle(IoControlParameter::ShortTermAdjustment, &[], t(0));
        assert!(c.handle(IoControlParameter::ResetToDefault, &[], t(1)));
        assert_eq!(c.state(), ControlState::EcuControlled);
    }
}
