//! Deterministic sensor signal generators.
//!
//! Every generator is a *pure function of logical time*: the same `Micros`
//! always yields the same value, so captures are reproducible and the
//! alignment machinery can be tested exactly. "Random" walks derive their
//! randomness from a seed hashed with the step index.

use dpr_can::Micros;
use serde::{Deserialize, Serialize};

/// A deterministic signal shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SignalGenerator {
    /// A constant value.
    Constant(f64),
    /// Linear sweep from `from` to `to` over `period`, then repeat.
    Ramp {
        /// Start value of each sweep.
        from: f64,
        /// End value of each sweep.
        to: f64,
        /// Sweep duration.
        period: Micros,
    },
    /// `mean + amplitude·sin(2πt/period)`.
    Sine {
        /// Center of the oscillation.
        mean: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Oscillation period.
        period: Micros,
    },
    /// A bounded pseudo-random walk: steps every `dwell`, each step drawn
    /// deterministically from `seed` and the step index.
    Walk {
        /// Start (and center) value.
        start: f64,
        /// Maximum per-step change.
        step: f64,
        /// Lower clamp.
        min: f64,
        /// Upper clamp.
        max: f64,
        /// Time between steps.
        dwell: Micros,
        /// Seed for the deterministic noise.
        seed: u64,
    },
    /// Cycles through a fixed list of values, holding each for `dwell` —
    /// models enumeration signals (door open/closed, gear position).
    Steps {
        /// The values to cycle through.
        values: Vec<f64>,
        /// Hold time per value.
        dwell: Micros,
    },
}

/// SplitMix64: a tiny, high-quality deterministic hash for the walk noise.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in [-1, 1] from a seed and index.
fn noise(seed: u64, index: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(index));
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

impl SignalGenerator {
    /// The signal value at logical time `t`.
    pub fn value_at(&self, t: Micros) -> f64 {
        match self {
            SignalGenerator::Constant(v) => *v,
            SignalGenerator::Ramp { from, to, period } => {
                let p = period.as_micros().max(1);
                let phase = (t.as_micros() % p) as f64 / p as f64;
                from + (to - from) * phase
            }
            SignalGenerator::Sine {
                mean,
                amplitude,
                period,
            } => {
                let p = period.as_micros().max(1);
                let phase = (t.as_micros() % p) as f64 / p as f64;
                mean + amplitude * (2.0 * std::f64::consts::PI * phase).sin()
            }
            SignalGenerator::Walk {
                start,
                step,
                min,
                max,
                dwell,
                seed,
            } => {
                let d = dwell.as_micros().max(1);
                let n = t.as_micros() / d;
                // Sum of the first n steps, computed incrementally but
                // bounded: clamp as we go so the walk stays in range.
                let mut v = *start;
                // Cap the walk length to keep value_at O(1)-ish for the
                // simulation horizons we use (minutes of logical time).
                let steps = n.min(100_000);
                // Mild mean reversion toward the range centre keeps the
                // walk lively instead of sticking at a clamp boundary —
                // matching how real sensor values behave around an
                // operating point.
                let center = (*min + *max) / 2.0;
                for i in 0..steps {
                    v = (v + step * noise(*seed, i) + 0.08 * (center - v)).clamp(*min, *max);
                }
                v
            }
            SignalGenerator::Steps { values, dwell } => {
                if values.is_empty() {
                    return 0.0;
                }
                let d = dwell.as_micros().max(1);
                let idx = (t.as_micros() / d) as usize % values.len();
                values[idx]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let g = SignalGenerator::Constant(42.0);
        assert_eq!(g.value_at(Micros::ZERO), 42.0);
        assert_eq!(g.value_at(Micros::from_secs(100)), 42.0);
    }

    #[test]
    fn ramp_sweeps_and_wraps() {
        let g = SignalGenerator::Ramp {
            from: 0.0,
            to: 100.0,
            period: Micros::from_secs(10),
        };
        assert_eq!(g.value_at(Micros::ZERO), 0.0);
        assert!((g.value_at(Micros::from_secs(5)) - 50.0).abs() < 1e-9);
        // Wraps after the period.
        assert!((g.value_at(Micros::from_secs(15)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sine_oscillates_around_mean() {
        let g = SignalGenerator::Sine {
            mean: 2000.0,
            amplitude: 500.0,
            period: Micros::from_secs(8),
        };
        assert!((g.value_at(Micros::ZERO) - 2000.0).abs() < 1e-6);
        assert!((g.value_at(Micros::from_secs(2)) - 2500.0).abs() < 1e-6);
        assert!((g.value_at(Micros::from_secs(6)) - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn walk_is_deterministic_and_bounded() {
        let g = SignalGenerator::Walk {
            start: 50.0,
            step: 5.0,
            min: 0.0,
            max: 100.0,
            dwell: Micros::from_millis(100),
            seed: 7,
        };
        let a = g.value_at(Micros::from_secs(3));
        let b = g.value_at(Micros::from_secs(3));
        assert_eq!(a, b, "walk must be a pure function of time");
        for s in 0..50 {
            let v = g.value_at(Micros::from_millis(s * 250));
            assert!((0.0..=100.0).contains(&v));
        }
        // And it actually moves.
        assert_ne!(g.value_at(Micros::ZERO), g.value_at(Micros::from_secs(10)));
    }

    #[test]
    fn steps_cycle_through_values() {
        let g = SignalGenerator::Steps {
            values: vec![0.0, 1.0],
            dwell: Micros::from_secs(1),
        };
        assert_eq!(g.value_at(Micros::from_millis(500)), 0.0);
        assert_eq!(g.value_at(Micros::from_millis(1500)), 1.0);
        assert_eq!(g.value_at(Micros::from_millis(2500)), 0.0);
    }

    #[test]
    fn empty_steps_yield_zero() {
        let g = SignalGenerator::Steps {
            values: vec![],
            dwell: Micros::from_secs(1),
        };
        assert_eq!(g.value_at(Micros::from_secs(5)), 0.0);
    }

    #[test]
    fn different_seeds_give_different_walks() {
        let make = |seed| SignalGenerator::Walk {
            start: 50.0,
            step: 5.0,
            min: 0.0,
            max: 100.0,
            dwell: Micros::from_millis(100),
            seed,
        };
        let t = Micros::from_secs(5);
        assert_ne!(make(1).value_at(t), make(2).value_at(t));
    }
}
