//! Encoding physical sensor values into raw response bytes.
//!
//! The ECU holds a physical value (say 771.2 rpm) and must store raw bytes
//! in the response such that the tool's proprietary formula recovers the
//! value. [`EsvCodec`] pairs a formula with an [`EncodeStrategy`] deciding
//! how the one or two raw bytes are derived — including the quirks the
//! paper observed in real traffic (constant scale bytes like the vehicle
//! speed `X0 ≡ 100`, or the engine speed low byte `X1 ≡ 128`).

use dpr_protocol::EsvFormula;
use serde::{Deserialize, Serialize};

/// How raw bytes are derived from a physical value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EncodeStrategy {
    /// One raw byte: `x0 = f⁻¹(y)`. For single-variable formulas.
    X0Only,
    /// Two raw bytes: `x0` is the quotient and `x1` the residual of an
    /// [`EsvFormula::Affine2`] — the natural big/little byte split.
    Split,
    /// `x1` is pinned to a constant; `x0 = f⁻¹(y | x1)`. Reproduces the
    /// paper's Engine Speed capture where `X1 ≡ 128`.
    FixedX1(u8),
    /// `x0` is pinned to a constant (a scale byte); `x1 = f⁻¹(y | x0)`.
    /// Reproduces the paper's Vehicle Speed capture where `X0 ≡ 100`.
    FixedX0(u8),
    /// Both bytes vary: the raw product `(y-b)/a` of an
    /// [`EsvFormula::Product`] is factored as `x0·x1` with `x1` the
    /// smallest scale that fits `x0` into a byte. This is how the paper's
    /// Car K engine speed (`Y = X0·X1/5`, Tab. 7) presents on the wire —
    /// GP must recover the genuine two-variable product.
    ProductSplit,
}

/// A formula plus the strategy for inverting it — the ECU-side codec for
/// one ESV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EsvCodec {
    /// The proprietary decoding formula (what the tool applies).
    pub formula: EsvFormula,
    /// How the ECU derives raw bytes from the physical value.
    pub strategy: EncodeStrategy,
}

impl EsvCodec {
    /// A codec for a single-variable formula.
    pub fn single(formula: EsvFormula) -> Self {
        EsvCodec {
            formula,
            strategy: EncodeStrategy::X0Only,
        }
    }

    /// Number of raw bytes this codec produces (1 or 2).
    pub fn width(&self) -> usize {
        match self.strategy {
            EncodeStrategy::X0Only => 1,
            _ => 2,
        }
    }

    /// Whether both raw bytes genuinely vary with the value (relevant to
    /// what GP can recover: pinned bytes collapse two-variable formulas).
    pub fn both_vary(&self) -> bool {
        matches!(
            self.strategy,
            EncodeStrategy::Split | EncodeStrategy::ProductSplit
        )
    }

    /// Encodes a physical value into raw bytes. Values are clamped into
    /// the representable byte range, mirroring ECU saturation.
    pub fn encode(&self, y: f64) -> (u8, Option<u8>) {
        fn byte(v: f64) -> u8 {
            v.round().clamp(0.0, 255.0) as u8
        }
        match self.strategy {
            EncodeStrategy::X0Only => {
                let x0 = self.formula.encode_x0(y, 0.0).unwrap_or(0.0);
                (byte(x0), None)
            }
            EncodeStrategy::Split => {
                if let EsvFormula::Affine2 { a, b, c } = self.formula {
                    if a != 0.0 && b != 0.0 {
                        let x0 = ((y - c) / a).floor().clamp(0.0, 255.0);
                        let x1 = ((y - c - a * x0) / b).round().clamp(0.0, 255.0);
                        return (x0 as u8, Some(x1 as u8));
                    }
                }
                // Degenerate affine: fall back to x0 inversion.
                let x0 = self.formula.encode_x0(y, 0.0).unwrap_or(0.0);
                (byte(x0), Some(0))
            }
            EncodeStrategy::FixedX1(x1) => {
                let x0 = self.formula.encode_x0(y, f64::from(x1)).unwrap_or(0.0);
                (byte(x0), Some(x1))
            }
            EncodeStrategy::FixedX0(x0) => {
                let x1 = self.encode_x1(y, f64::from(x0)).unwrap_or(0.0);
                (x0, Some(byte(x1)))
            }
            EncodeStrategy::ProductSplit => {
                if let EsvFormula::Product { a, b } = self.formula {
                    if a != 0.0 {
                        let raw = ((y - b) / a).max(0.0);
                        // Scale byte: the next power of two that brings x0
                        // into a byte. Powers of two keep x0 well spread
                        // (128..255 within a band) instead of pinning it
                        // at 255, so both bytes genuinely vary.
                        let mut x1 = 1.0f64;
                        while raw / x1 > 255.0 && x1 < 255.0 {
                            x1 = (x1 * 2.0).min(255.0);
                        }
                        let x0 = (raw / x1).round().clamp(0.0, 255.0);
                        return (x0 as u8, Some(x1 as u8));
                    }
                }
                let x0 = self.formula.encode_x0(y, 1.0).unwrap_or(0.0);
                (byte(x0), Some(1))
            }
        }
    }

    /// Decodes raw bytes back to the physical value (the tool's direction).
    pub fn decode(&self, x0: u8, x1: Option<u8>) -> f64 {
        self.formula
            .eval(f64::from(x0), x1.map_or(0.0, f64::from))
    }

    /// Solves the formula for `x1` given `y` and a fixed `x0`.
    fn encode_x1(&self, y: f64, x0: f64) -> Option<f64> {
        match self.formula {
            EsvFormula::Affine2 { a, b, c } => (b != 0.0).then(|| (y - a * x0 - c) / b),
            EsvFormula::Product { a, b } => {
                (a != 0.0 && x0 != 0.0).then(|| (y - b) / (a * x0))
            }
            EsvFormula::OffsetProduct { a, k } => {
                (a != 0.0 && x0 != 0.0).then(|| y / (a * x0) + k)
            }
            _ => None,
        }
    }

    /// The quantization step of the codec: the change in decoded value per
    /// unit change of the driven raw byte. Used by tests and by the
    /// equivalence checker to pick tolerances.
    pub fn quantization(&self) -> f64 {
        match (self.formula, self.strategy) {
            (EsvFormula::Linear { a, .. }, _) => a.abs(),
            (EsvFormula::Affine2 { b, .. }, EncodeStrategy::Split) => b.abs(),
            (EsvFormula::Affine2 { a, .. }, EncodeStrategy::FixedX1(_)) => a.abs(),
            (EsvFormula::Product { a, .. }, EncodeStrategy::FixedX1(x1)) => {
                (a * f64::from(x1)).abs()
            }
            (EsvFormula::Product { a, .. }, EncodeStrategy::FixedX0(x0)) => {
                (a * f64::from(x0)).abs()
            }
            (EsvFormula::OffsetProduct { a, .. }, EncodeStrategy::FixedX0(x0)) => {
                (a * f64::from(x0)).abs()
            }
            (EsvFormula::OffsetProduct { a, k }, EncodeStrategy::FixedX1(x1)) => {
                (a * (f64::from(x1) - k)).abs()
            }
            // ProductSplit rounds x0 after choosing the scale x1; the step
            // is a times the largest scale in use (~ raw/255 + 1).
            (EsvFormula::Product { a, .. }, EncodeStrategy::ProductSplit) => a.abs() * 256.0,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_round_trip() {
        let codec = EsvCodec::single(EsvFormula::Linear { a: 0.5, b: 0.0 });
        let (x0, x1) = codec.encode(60.0);
        assert_eq!(x1, None);
        assert_eq!(codec.decode(x0, None), 60.0);
    }

    #[test]
    fn split_affine_round_trip() {
        // OBD-style RPM: 64·X0 + 0.25·X1.
        let codec = EsvCodec {
            formula: EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 },
            strategy: EncodeStrategy::Split,
        };
        for rpm in [0.0, 812.25, 3000.0, 6500.5] {
            let (x0, x1) = codec.encode(rpm);
            let back = codec.decode(x0, x1);
            assert!((back - rpm).abs() <= 0.25 + 1e-9, "{rpm} -> {back}");
        }
    }

    #[test]
    fn fixed_x1_reproduces_paper_rpm_quirk() {
        let codec = EsvCodec {
            formula: EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 },
            strategy: EncodeStrategy::FixedX1(128),
        };
        let (x0, x1) = codec.encode(2000.0);
        assert_eq!(x1, Some(128));
        let back = codec.decode(x0, x1);
        assert!((back - 2000.0).abs() <= 64.0);
    }

    #[test]
    fn fixed_x0_reproduces_paper_speed_quirk() {
        // Vehicle speed: Y = 0.01·X0·X1 with the scale byte X0 = 100, so
        // effectively Y = X1.
        let codec = EsvCodec {
            formula: EsvFormula::Product { a: 0.01, b: 0.0 },
            strategy: EncodeStrategy::FixedX0(100),
        };
        let (x0, x1) = codec.encode(88.0);
        assert_eq!(x0, 100);
        assert_eq!(x1, Some(88));
        assert_eq!(codec.decode(x0, x1), 88.0);
    }

    #[test]
    fn offset_product_with_fixed_scale() {
        // Temperature: Y = 0.1·X0·(X1 − 100) with X0 = 10 → Y = X1 − 100.
        let codec = EsvCodec {
            formula: EsvFormula::OffsetProduct { a: 0.1, k: 100.0 },
            strategy: EncodeStrategy::FixedX0(10),
        };
        let (x0, x1) = codec.encode(55.0);
        assert_eq!(x0, 10);
        assert_eq!(x1, Some(155));
        assert_eq!(codec.decode(x0, x1), 55.0);
    }

    #[test]
    fn product_split_varies_both_bytes() {
        // Car K engine speed: Y = X0*X1/5.
        let codec = EsvCodec {
            formula: EsvFormula::Product { a: 0.2, b: 0.0 },
            strategy: EncodeStrategy::ProductSplit,
        };
        let mut seen_x0 = std::collections::BTreeSet::new();
        let mut seen_x1 = std::collections::BTreeSet::new();
        for rpm in (500..8000).step_by(250) {
            let y = f64::from(rpm);
            let (x0, x1) = codec.encode(y);
            seen_x0.insert(x0);
            seen_x1.insert(x1.unwrap());
            let back = codec.decode(x0, x1);
            assert!(
                (back - y).abs() <= codec.quantization(),
                "{y} -> ({x0},{x1:?}) -> {back}"
            );
        }
        assert!(seen_x0.len() > 5, "x0 must vary");
        assert!(seen_x1.len() > 3, "x1 must vary");
    }

    #[test]
    fn clamping_saturates_not_panics() {
        let codec = EsvCodec::single(EsvFormula::IDENTITY);
        assert_eq!(codec.encode(1000.0).0, 255);
        assert_eq!(codec.encode(-5.0).0, 0);
    }

    #[test]
    fn widths() {
        assert_eq!(EsvCodec::single(EsvFormula::IDENTITY).width(), 1);
        let two = EsvCodec {
            formula: EsvFormula::Product { a: 0.2, b: 0.0 },
            strategy: EncodeStrategy::FixedX0(100),
        };
        assert_eq!(two.width(), 2);
    }

    #[test]
    fn quantization_reflects_strategy() {
        let codec = EsvCodec {
            formula: EsvFormula::Product { a: 0.01, b: 0.0 },
            strategy: EncodeStrategy::FixedX0(100),
        };
        assert!((codec.quantization() - 1.0).abs() < 1e-12);
        let linear = EsvCodec::single(EsvFormula::Linear { a: 0.5, b: 3.0 });
        assert_eq!(linear.quantization(), 0.5);
    }

    #[test]
    fn round_trip_error_bounded_by_quantization() {
        let codecs = [
            EsvCodec::single(EsvFormula::Linear { a: 0.392, b: 0.0 }),
            EsvCodec::single(EsvFormula::Linear { a: 1.0, b: -40.0 }),
            EsvCodec {
                formula: EsvFormula::Product { a: 0.2, b: 0.0 },
                strategy: EncodeStrategy::FixedX0(50),
            },
            EsvCodec {
                formula: EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 },
                strategy: EncodeStrategy::Split,
            },
        ];
        for codec in codecs {
            for i in 0..40 {
                // Probe mid-range values safely representable by the codec.
                let y_mid = codec.decode(100, Some(100));
                let y = y_mid * (0.5 + f64::from(i) / 80.0);
                let (x0, x1) = codec.encode(y);
                let back = codec.decode(x0, x1);
                assert!(
                    (back - y).abs() <= codec.quantization() + 1e-9,
                    "{codec:?}: {y} -> {back}"
                );
            }
        }
    }
}
