//! Property-based tests for the vehicle substrate: codec round trips,
//! ECU handler totality, and profile invariants.

use dpr_can::Micros;
use dpr_protocol::EsvFormula;
use dpr_vehicle::codec::{EncodeStrategy, EsvCodec};
use dpr_vehicle::profiles::{self, CarId};
use proptest::prelude::*;

fn arb_linear() -> impl Strategy<Value = EsvCodec> {
    (0.05f64..4.0, -100.0f64..100.0)
        .prop_map(|(a, b)| EsvCodec::single(EsvFormula::Linear { a, b }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Linear codecs: encode → decode lands within one quantization step
    /// for any representable value.
    #[test]
    fn linear_codec_round_trip(codec in arb_linear(), t in 0.0f64..1.0) {
        // A value representable by the byte range of this codec.
        let lo = codec.decode(0, None);
        let hi = codec.decode(255, None);
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let y = lo + (hi - lo) * t;
        let (x0, x1) = codec.encode(y);
        let back = codec.decode(x0, x1);
        prop_assert!(
            (back - y).abs() <= codec.quantization() / 2.0 + 1e-9,
            "{codec:?}: {y} -> {back}"
        );
    }

    /// ProductSplit: both bytes decode back within quantization across the
    /// representable range, and the encoding never panics.
    #[test]
    fn product_split_round_trip(a in 0.001f64..0.5, t in 0.0f64..1.0) {
        let codec = EsvCodec {
            formula: EsvFormula::Product { a, b: 0.0 },
            strategy: EncodeStrategy::ProductSplit,
        };
        let max = a * 255.0 * 255.0;
        let y = max * t;
        let (x0, x1) = codec.encode(y);
        let back = codec.decode(x0, x1);
        prop_assert!(
            (back - y).abs() <= codec.quantization() + 1e-9,
            "y={y} -> ({x0},{x1:?}) -> {back} (step {})",
            codec.quantization()
        );
    }

    /// Every ECU handler is total: arbitrary payloads never panic and
    /// always produce some response for its protocol.
    #[test]
    fn ecu_handler_is_total(payload in proptest::collection::vec(any::<u8>(), 1..24)) {
        let car = profiles::build(CarId::A, 1);
        let mut ecu = car.ecus()[0].clone();
        let _ = ecu.handle(&payload, Micros::from_secs(1));
    }

    /// Profile determinism across arbitrary seeds: same seed, same tables.
    #[test]
    fn profiles_deterministic(seed in any::<u64>()) {
        let a = profiles::build(CarId::E, seed);
        let b = profiles::build(CarId::E, seed);
        let pa: Vec<_> = a.esv_points().collect();
        let pb: Vec<_> = b.esv_points().collect();
        prop_assert_eq!(pa, pb);
    }
}

/// Tab. 6 / Tab. 11 invariants hold for every car under many seeds.
#[test]
fn per_car_counts_invariant_across_seeds() {
    for seed in [1u64, 99, 12345] {
        for id in CarId::ALL {
            let spec = profiles::spec(id);
            let car = profiles::build(id, seed);
            let formula = car.esv_points().filter(|p| p.formula.has_formula()).count();
            let enums = car.esv_points().filter(|p| !p.formula.has_formula()).count();
            assert_eq!(formula, spec.formula_esvs, "{id} seed {seed}");
            assert_eq!(enums, spec.enum_esvs, "{id} seed {seed}");
            let components: usize = car
                .ecus()
                .iter()
                .map(|e| e.component_keys().count())
                .sum();
            assert_eq!(components, spec.ecrs, "{id} seed {seed}");
        }
    }
}

/// Sensor values always respect their quantity's plausible range.
#[test]
fn sensors_stay_in_range_over_time() {
    let car = profiles::build(CarId::R, 7);
    for point in car.esv_points() {
        for secs in [0u64, 3, 17, 61, 300] {
            let v = car
                .true_value(point.id, Micros::from_secs(secs))
                .expect("point exists");
            assert!(
                point.quantity.contains(v),
                "{}: {v} outside [{}, {}] at t={secs}s",
                point.quantity.name(),
                point.quantity.min(),
                point.quantity.max()
            );
        }
    }
}
