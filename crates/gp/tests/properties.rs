//! Property-based tests for the GP engine's invariants.

use dpr_gp::compile::{BatchScratch, Columns, CompiledExpr};
use dpr_gp::expr::{BinaryOp, Expr, UnaryOp};
use dpr_gp::scaling::{table2_factor, ScalePlan};
use dpr_gp::{Dataset, GpConfig, Metric, SymbolicRegressor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_expr(seed: u64, depth: usize) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    Expr::random_grow(
        &mut rng,
        depth,
        2,
        &UnaryOp::ALL,
        &BinaryOp::ALL,
        (-10.0, 10.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Protected operators keep evaluation total: any tree on any finite
    /// input yields a non-NaN-propagating result or a finite number.
    #[test]
    fn eval_is_total(seed in any::<u64>(), x0 in -1e4f64..1e4, x1 in -1e4f64..1e4) {
        let e = arb_expr(seed, 5);
        let v = e.eval(&[x0, x1]);
        // Protected operators keep the result finite (tan is clamped and
        // division/log/inv are protected), so no NaN/∞ can propagate out.
        prop_assert!(v.is_finite(), "{e} evaluated to {v}");
        // Size/depth bookkeeping stays consistent.
        prop_assert!(e.depth() <= 5);
        prop_assert!(e.size() >= 1);
    }

    /// Simplification never changes semantics on sampled inputs.
    #[test]
    fn simplify_preserves_semantics(seed in any::<u64>(), x0 in -100.0f64..100.0, x1 in -100.0f64..100.0) {
        let e = arb_expr(seed, 5);
        let s = e.simplify();
        let a = e.eval(&[x0, x1]);
        let b = s.eval(&[x0, x1]);
        prop_assert!(
            (a - b).abs() < 1e-6 * a.abs().max(1.0) || (a.is_nan() && b.is_nan()),
            "{e} vs {s}: {a} vs {b}"
        );
        prop_assert!(s.size() <= e.size(), "simplify must not grow the tree");
    }

    /// The Tab. 2 factor is always a power of ten and, within the table's
    /// covered magnitude range (it caps correction at 10^4 on both ends,
    /// exactly as the paper's table does), lands the scaled median in a
    /// sane band.
    #[test]
    fn table2_factor_normalizes(median in 1e-6f64..1e6) {
        let f = table2_factor(median, true);
        let log = f.log10();
        prop_assert!((log - log.round()).abs() < 1e-9, "{f} is not a power of ten");
        prop_assert!((1e-4..=1e4).contains(&f), "correction capped at four decades");
        let scaled = median * f;
        if (1e-4..=1e5).contains(&median) {
            prop_assert!(
                (0.09..=10.0 + 1e-9).contains(&scaled),
                "median {median} -> {scaled}"
            );
        } else {
            // Outside the table's range the factor saturates; it must at
            // least move the value toward the band, never away.
            prop_assert!((scaled.log10().abs()) <= (median.log10().abs()) + 1e-9);
        }
    }

    /// Scale plans round trip: eval_raw of a fitted expression equals the
    /// scaled evaluation undone by hand.
    #[test]
    fn scale_plan_round_trip(x in 1.0f64..1e4, a in 0.01f64..100.0) {
        let data = Dataset::from_pairs((1..20).map(|i| {
            let xv = x * f64::from(i) / 10.0;
            (xv, a * xv)
        })).unwrap();
        let plan = ScalePlan::for_dataset(&data);
        let expr = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Const(2.0)),
            Box::new(Expr::Var(0)),
        );
        let raw = plan.eval_raw(&expr, &[x]);
        let manual = 2.0 * (x * plan.x_factors[0]) / plan.y_factor;
        prop_assert!((raw - manual).abs() < 1e-9 * manual.abs().max(1.0));
    }

    /// Compiled (postfix-bytecode) evaluation is bit-identical to the
    /// recursive tree walker on random trees over random inputs —
    /// including NaN/∞ inputs, so the protected division/log/inverse
    /// special cases and non-finite propagation agree exactly.
    #[test]
    fn compiled_eval_matches_recursive(
        seed in any::<u64>(),
        depth in 1usize..=7,
        x0 in -1e6f64..1e6,
        x1 in -1e6f64..1e6,
        special in 0u8..6,
    ) {
        let e = arb_expr(seed, depth);
        let c = CompiledExpr::compile(&e);
        // Mix plain finite rows with rows exercising NaN/∞ propagation and
        // the protected div-by-zero / log(0) / inv(0) branches.
        let row: [f64; 2] = match special {
            0 => [f64::NAN, x1],
            1 => [f64::INFINITY, x1],
            2 => [x0, f64::NEG_INFINITY],
            3 => [0.0, 0.0],
            4 => [x0, 1e-12],
            _ => [x0, x1],
        };
        let a = e.eval(&row);
        let b = c.eval(&row);
        prop_assert!(
            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
            "{e} on {row:?}: {a:?} ({:#x}) vs {b:?} ({:#x})", a.to_bits(), b.to_bits()
        );
        // Unfused bytecode is one op per tree node; fusion only shrinks.
        prop_assert_eq!(CompiledExpr::compile_unfused(&e).len(), e.size());
        prop_assert!(c.len() <= e.size());
    }

    /// The batch (column-wise) error path returns exactly what
    /// `Metric::error` computes with the recursive evaluator.
    #[test]
    fn compiled_batch_error_matches_metric(
        seed in any::<u64>(),
        rows in proptest::collection::vec((-1e4f64..1e4, -1e4f64..1e4, -1e4f64..1e4), 1..40),
    ) {
        let e = arb_expr(seed, 6);
        let data = Dataset::new(
            rows.iter().map(|(x0, x1, _)| vec![*x0, *x1]).collect(),
            rows.iter().map(|(_, _, y)| *y).collect(),
        ).unwrap();
        let cols = Columns::from_dataset(&data);
        let compiled = CompiledExpr::compile(&e);
        let mut scratch = BatchScratch::new();
        for metric in [Metric::MeanAbsoluteError, Metric::MeanSquaredError, Metric::Rmse] {
            let want = metric.error(&e, &data);
            let got = compiled.error_on(&cols, metric, &mut scratch);
            prop_assert!(
                want.to_bits() == got.to_bits(),
                "{e} with {metric:?}: {want} vs {got}"
            );
        }
    }

    /// Superinstruction fusion is bit-identical to the unfused bytecode
    /// on the batch path. The value range reaches ±1e300 so chained
    /// products overflow to ∞ and subtractions of overflows produce NaN
    /// mid-program — the fused arms must propagate those exactly like
    /// the plain push/pop interpreter (they call the same protected
    /// `apply` in the same order).
    #[test]
    fn fused_batch_scoring_matches_unfused(
        seed in any::<u64>(),
        depth in 1usize..=7,
        rows in proptest::collection::vec((-1e300f64..1e300, -1e300f64..1e300, -1e4f64..1e4), 1..24),
    ) {
        let e = arb_expr(seed, depth);
        let data = Dataset::new(
            rows.iter().map(|(x0, x1, _)| vec![*x0, *x1]).collect(),
            rows.iter().map(|(_, _, y)| *y).collect(),
        ).unwrap();
        let cols = Columns::from_dataset(&data);
        let fused = CompiledExpr::compile(&e);
        let unfused = CompiledExpr::compile_unfused(&e);
        prop_assert!(fused.ops().len() <= unfused.ops().len(), "fusion must not grow programs");
        let mut scratch = BatchScratch::new();
        for metric in [Metric::MeanAbsoluteError, Metric::MeanSquaredError, Metric::Rmse] {
            let a = unfused.error_on(&cols, metric, &mut scratch);
            let b = fused.error_on(&cols, metric, &mut scratch);
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "{e} with {metric:?}: unfused {a:?} ({:#x}) vs fused {b:?} ({:#x})",
                a.to_bits(), b.to_bits()
            );
        }
    }

    /// Structural dedup never changes scores: every program's error is
    /// bit-for-bit the error of the representative its class elected, and
    /// duplicating a population doubles hits without adding classes.
    #[test]
    fn dedup_representatives_score_bit_identically(
        seed in any::<u64>(),
        n in 1usize..24,
        rows in proptest::collection::vec((-1e4f64..1e4, -1e4f64..1e4, -1e4f64..1e4), 1..16),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let exprs: Vec<Expr> = (0..n)
            .map(|_| Expr::random_grow(&mut rng, 4, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-10.0, 10.0)))
            .collect();
        // Population with duplicates: every program appears twice.
        let programs: Vec<CompiledExpr> = exprs
            .iter()
            .chain(exprs.iter())
            .map(CompiledExpr::compile)
            .collect();
        let groups = dpr_gp::dedup::group(&programs);
        prop_assert!(groups.reps.len() <= exprs.len());
        prop_assert_eq!(groups.hits(), (programs.len() - groups.reps.len()) as u64);
        prop_assert!(groups.hits() >= exprs.len() as u64, "each clone must hit its twin's class");

        let data = Dataset::new(
            rows.iter().map(|(x0, x1, _)| vec![*x0, *x1]).collect(),
            rows.iter().map(|(_, _, y)| *y).collect(),
        ).unwrap();
        let cols = Columns::from_dataset(&data);
        let mut scratch = BatchScratch::new();
        let metric = Metric::MeanAbsoluteError;
        for (i, program) in programs.iter().enumerate() {
            let rep = &programs[groups.reps[groups.assign[i] as usize]];
            let own = program.error_on(&cols, metric, &mut scratch);
            let reused = rep.error_on(&cols, metric, &mut scratch);
            prop_assert!(
                own.to_bits() == reused.to_bits(),
                "program {i}: own score {own:?} vs representative's {reused:?}"
            );
        }
    }

    /// Fitness metrics are non-negative and zero exactly on perfect fits.
    #[test]
    fn metric_nonnegative(values in proptest::collection::vec((0.0f64..100.0, -50.0f64..50.0), 3..30)) {
        let data = Dataset::from_pairs(values.clone()).unwrap();
        let expr = Expr::Var(0);
        for metric in [Metric::MeanAbsoluteError, Metric::MeanSquaredError, Metric::Rmse] {
            let e = metric.error(&expr, &data);
            prop_assert!(e >= 0.0);
        }
        // Fitting y = x exactly.
        let exact = Dataset::from_pairs(values.iter().map(|(x, _)| (*x, *x))).unwrap();
        prop_assert_eq!(Metric::MeanAbsoluteError.error(&expr, &exact), 0.0);
    }
}

/// Non-proptest sanity: the engine recovers a sampled family of linear
/// relations across seeds (a smoke test of end-to-end robustness).
#[test]
fn engine_recovers_linear_family_across_seeds() {
    let mut recovered = 0;
    let total = 8;
    for seed in 0..total {
        let a = 0.25 + f64::from(seed) * 0.4;
        let b = f64::from(seed * 3) - 10.0;
        let data = Dataset::from_pairs((0..40).map(|i| {
            let x = f64::from((i * 13) % 250);
            (x, a * x + b)
        }))
        .unwrap();
        let model = SymbolicRegressor::new(GpConfig::fast(seed as u64)).fit(&data);
        if model.agrees_with(|x| a * x[0] + b, &[(0.0, 250.0)], 0.02) {
            recovered += 1;
        }
    }
    assert!(
        recovered >= total - 1,
        "only {recovered}/{total} linear relations recovered"
    );
}
