//! Regression test: parallel fitness scoring is **bit-identical** to
//! sequential scoring — and so are population-wide dedup and batched
//! dispatch, the two scoring-path optimizations layered on top. All
//! randomness lives in the sequential breeding phase and evaluation is a
//! pure, index-order-preserving map, so the same seed must yield the
//! same model and the same per-generation error trajectory at any
//! `DPR_THREADS` setting, with `DPR_GP_DEDUP` on or off, and for any
//! `DPR_GP_BATCH` policy (adaptive, always-pool, or a fixed threshold).
//!
//! Everything runs inside ONE `#[test]` function: the test mutates the
//! `DPR_THREADS` / `DPR_GP_DEDUP` / `DPR_GP_BATCH` process environment,
//! and sibling tests in this binary would otherwise race on it.

use dpr_gp::dedup::DEDUP_ENV;
use dpr_gp::{Dataset, FittedModel, GpConfig, GpReport, SymbolicRegressor, BATCH_ENV};

fn fit_dataset(seed: u64, data: &Dataset) -> (FittedModel, GpReport) {
    let mut gp = SymbolicRegressor::new(GpConfig::fast(seed));
    let model = gp.fit(data);
    let report = gp.last_report().expect("fit records a report").clone();
    (model, report)
}

fn sample_datasets() -> Vec<Dataset> {
    vec![
        // Linear with offset (the classic coolant-temperature shape).
        Dataset::from_pairs((0..48).map(|i| {
            let x = f64::from((i * 11) % 256);
            (x, 1.8 * x - 40.0)
        }))
        .unwrap(),
        // Two-variable OBD-II engine-speed formula.
        Dataset::new(
            (0..48)
                .map(|i| vec![f64::from(i * 5 % 200), f64::from((i * 37) % 256)])
                .collect(),
            (0..48)
                .map(|i| 64.0 * f64::from(i * 5 % 200) + 0.25 * f64::from((i * 37) % 256))
                .collect(),
        )
        .unwrap(),
    ]
}

fn set_config(threads: &str, dedup: &str, batch: &str) {
    std::env::set_var("DPR_THREADS", threads);
    std::env::set_var(DEDUP_ENV, dedup);
    std::env::set_var(BATCH_ENV, batch);
}

/// One test fn on purpose — see module docs.
#[test]
fn parallel_fit_is_bit_identical_to_sequential() {
    let restore: Vec<(&str, Option<String>)> = ["DPR_THREADS", DEDUP_ENV, BATCH_ENV]
        .iter()
        .map(|k| (*k, std::env::var(k).ok()))
        .collect();

    // The full scoring-path matrix: every thread count × dedup on/off ×
    // batch policy (adaptive, always-pool, fixed threshold) must produce
    // the same bits as the sequential default-config fit.
    let threads = ["1", "2", "4"];
    let dedups = ["1", "0"];
    let batches = ["auto", "0", "6"];

    for (k, data) in sample_datasets().iter().enumerate() {
        for seed in [2023u64, 7] {
            set_config("1", "1", "auto");
            let (seq_model, seq_report) = fit_dataset(seed, data);

            for t in threads {
                for dedup in dedups {
                    for batch in batches {
                        if (t, dedup, batch) == ("1", "1", "auto") {
                            continue;
                        }
                        set_config(t, dedup, batch);
                        let (model, report) = fit_dataset(seed, data);
                        let config = format!(
                            "dataset {k} seed {seed}: threads {t}, dedup {dedup}, batch {batch}"
                        );
                        assert_eq!(seq_model, model, "{config}: model differs");
                        // Trajectories bit-for-bit, not just approximately.
                        let seq_bits: Vec<u64> = seq_report
                            .best_error_history
                            .iter()
                            .map(|e| e.to_bits())
                            .collect();
                        let bits: Vec<u64> = report
                            .best_error_history
                            .iter()
                            .map(|e| e.to_bits())
                            .collect();
                        assert_eq!(seq_bits, bits, "{config}: error trajectory differs");
                        assert_eq!(
                            seq_report.stopped_by_threshold, report.stopped_by_threshold,
                            "{config}: stop reason differs"
                        );
                        // `evaluations` counts logical evaluations, so it
                        // is invariant under dedup as well as threads.
                        assert_eq!(
                            seq_model.evaluations, model.evaluations,
                            "{config}: evaluation counts differ"
                        );
                    }
                }
            }
        }
    }

    for (key, value) in restore {
        match value {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }
}
