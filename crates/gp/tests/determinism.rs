//! Regression test: parallel fitness scoring is **bit-identical** to
//! sequential scoring. All randomness lives in the sequential breeding
//! phase and evaluation is a pure, index-order-preserving map, so the
//! same seed must yield the same model and the same per-generation error
//! trajectory at any `DPR_THREADS` setting.
//!
//! Everything runs inside ONE `#[test]` function: the test mutates the
//! `DPR_THREADS` process environment, and sibling tests in this binary
//! would otherwise race on it.

use dpr_gp::{Dataset, FittedModel, GpConfig, GpReport, SymbolicRegressor};

fn fit_dataset(seed: u64, data: &Dataset) -> (FittedModel, GpReport) {
    let mut gp = SymbolicRegressor::new(GpConfig::fast(seed));
    let model = gp.fit(data);
    let report = gp.last_report().expect("fit records a report").clone();
    (model, report)
}

fn sample_datasets() -> Vec<Dataset> {
    vec![
        // Linear with offset (the classic coolant-temperature shape).
        Dataset::from_pairs((0..48).map(|i| {
            let x = f64::from((i * 11) % 256);
            (x, 1.8 * x - 40.0)
        }))
        .unwrap(),
        // Two-variable OBD-II engine-speed formula.
        Dataset::new(
            (0..48)
                .map(|i| vec![f64::from(i * 5 % 200), f64::from((i * 37) % 256)])
                .collect(),
            (0..48)
                .map(|i| 64.0 * f64::from(i * 5 % 200) + 0.25 * f64::from((i * 37) % 256))
                .collect(),
        )
        .unwrap(),
    ]
}

/// One test fn on purpose — see module docs.
#[test]
fn parallel_fit_is_bit_identical_to_sequential() {
    // CI runs this test under an explicit DPR_THREADS (2, then 4); when
    // unset, compare against 4 workers.
    let parallel = std::env::var("DPR_THREADS")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| "4".to_string());
    let restore = std::env::var("DPR_THREADS").ok();

    for (k, data) in sample_datasets().iter().enumerate() {
        for seed in [2023u64, 7] {
            std::env::set_var("DPR_THREADS", "1");
            let (seq_model, seq_report) = fit_dataset(seed, data);
            std::env::set_var("DPR_THREADS", &parallel);
            let (par_model, par_report) = fit_dataset(seed, data);

            assert_eq!(
                seq_model, par_model,
                "dataset {k} seed {seed}: model differs between 1 and {parallel} threads"
            );
            // Trajectories bit-for-bit, not just approximately.
            let seq_bits: Vec<u64> = seq_report
                .best_error_history
                .iter()
                .map(|e| e.to_bits())
                .collect();
            let par_bits: Vec<u64> = par_report
                .best_error_history
                .iter()
                .map(|e| e.to_bits())
                .collect();
            assert_eq!(
                seq_bits, par_bits,
                "dataset {k} seed {seed}: error trajectory differs"
            );
            assert_eq!(seq_report.stopped_by_threshold, par_report.stopped_by_threshold);
            assert_eq!(
                seq_model.evaluations, par_model.evaluations,
                "dataset {k} seed {seed}: evaluation counts differ"
            );
        }
    }

    match restore {
        Some(v) => std::env::set_var("DPR_THREADS", v),
        None => std::env::remove_var("DPR_THREADS"),
    }
}
