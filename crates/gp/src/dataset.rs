//! The `(X, Y)` data sets built from aligned traffic and UI values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A regression data set: rows of input variables and one target per row.
///
/// In DP-Reverser, `x` rows are raw values extracted from response messages
/// (one column for UDS, two — `X0`, `X1` — for KWP 2000) and `y` is the ESV
/// the diagnostic tool displayed at the matching timestamp (paper §3.5,
/// Step 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    n_vars: usize,
}

impl Dataset {
    /// Creates a data set from input rows and targets.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] if the set is empty, row lengths are
    /// inconsistent, or any value is not finite.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, DatasetError> {
        if x.is_empty() || y.is_empty() {
            return Err(DatasetError::Empty);
        }
        if x.len() != y.len() {
            return Err(DatasetError::LengthMismatch {
                rows: x.len(),
                targets: y.len(),
            });
        }
        let n_vars = x[0].len();
        if n_vars == 0 {
            return Err(DatasetError::NoVariables);
        }
        for (i, row) in x.iter().enumerate() {
            if row.len() != n_vars {
                return Err(DatasetError::RaggedRow { row: i });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(DatasetError::NonFinite { row: i });
            }
        }
        if let Some(i) = y.iter().position(|v| !v.is_finite()) {
            return Err(DatasetError::NonFinite { row: i });
        }
        Ok(Dataset { x, y, n_vars })
    }

    /// Builds a single-variable data set from `(x, y)` pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::new`].
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<Self, DatasetError> {
        let (x, y): (Vec<_>, Vec<_>) = pairs.into_iter().map(|(a, b)| (vec![a], b)).unzip();
        Dataset::new(x, y)
    }

    /// Builds a two-variable data set from `((x0, x1), y)` triples — the
    /// KWP 2000 shape.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::new`].
    pub fn from_triples(
        triples: impl IntoIterator<Item = ((f64, f64), f64)>,
    ) -> Result<Self, DatasetError> {
        let (x, y): (Vec<_>, Vec<_>) = triples
            .into_iter()
            .map(|((a, b), t)| (vec![a, b], t))
            .unzip();
        Dataset::new(x, y)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the set has no rows (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of input variables per row.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The input rows.
    pub fn x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The targets.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Iterates over `(row, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> {
        self.x.iter().map(|r| r.as_slice()).zip(self.y.iter().copied())
    }

    /// The median of `|y|` — the statistic the Tab. 2 scaling rules use.
    pub fn median_abs_y(&self) -> f64 {
        median_abs(&self.y)
    }

    /// The median of `|x|` for column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= n_vars`.
    pub fn median_abs_x(&self, col: usize) -> f64 {
        assert!(col < self.n_vars, "column out of range");
        let col_vals: Vec<f64> = self.x.iter().map(|r| r[col]).collect();
        median_abs(&col_vals)
    }

    /// Returns a copy with each `x` column and the `y` column multiplied by
    /// the given factors (used by the Tab. 2 pre-processing).
    ///
    /// # Panics
    ///
    /// Panics if `x_factors.len() != n_vars`.
    pub fn scaled(&self, x_factors: &[f64], y_factor: f64) -> Dataset {
        assert_eq!(x_factors.len(), self.n_vars, "one factor per column");
        let x = self
            .x
            .iter()
            .map(|row| row.iter().zip(x_factors).map(|(v, f)| v * f).collect())
            .collect();
        let y = self.y.iter().map(|v| v * y_factor).collect();
        Dataset {
            x,
            y,
            n_vars: self.n_vars,
        }
    }

    /// The observed (min, max) of column `col` — used when checking whether
    /// two formulas agree on the observed input range.
    ///
    /// # Panics
    ///
    /// Panics if `col >= n_vars`.
    pub fn x_range(&self, col: usize) -> (f64, f64) {
        assert!(col < self.n_vars, "column out of range");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &self.x {
            lo = lo.min(row[col]);
            hi = hi.max(row[col]);
        }
        (lo, hi)
    }
}

fn median_abs(values: &[f64]) -> f64 {
    let mut abs: Vec<f64> = values.iter().map(|v| v.abs()).collect();
    abs.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    abs[abs.len() / 2]
}

/// Errors constructing a [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetError {
    /// No rows were provided.
    Empty,
    /// Row and target counts differ.
    LengthMismatch {
        /// Number of input rows.
        rows: usize,
        /// Number of targets.
        targets: usize,
    },
    /// Rows have zero columns.
    NoVariables,
    /// A row has a different number of columns than the first row.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
    },
    /// A value is NaN or infinite.
    NonFinite {
        /// Index of the offending row.
        row: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "data set has no rows"),
            DatasetError::LengthMismatch { rows, targets } => {
                write!(f, "{rows} input rows but {targets} targets")
            }
            DatasetError::NoVariables => write!(f, "rows have zero columns"),
            DatasetError::RaggedRow { row } => write!(f, "row {row} has inconsistent width"),
            DatasetError::NonFinite { row } => write!(f, "row {row} contains a non-finite value"),
        }
    }
}

impl std::error::Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(DatasetError::Empty));
        assert_eq!(
            Dataset::new(vec![vec![1.0]], vec![1.0, 2.0]),
            Err(DatasetError::LengthMismatch { rows: 1, targets: 2 })
        );
        assert_eq!(
            Dataset::new(vec![vec![]], vec![1.0]),
            Err(DatasetError::NoVariables)
        );
        assert_eq!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 2.0]),
            Err(DatasetError::RaggedRow { row: 1 })
        );
        assert_eq!(
            Dataset::new(vec![vec![f64::NAN]], vec![1.0]),
            Err(DatasetError::NonFinite { row: 0 })
        );
        assert_eq!(
            Dataset::new(vec![vec![1.0]], vec![f64::INFINITY]),
            Err(DatasetError::NonFinite { row: 0 })
        );
    }

    #[test]
    fn from_pairs_and_triples() {
        let d = Dataset::from_pairs([(1.0, 2.0), (3.0, 6.0)]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_vars(), 1);

        let t = Dataset::from_triples([((1.0, 2.0), 3.0)]).unwrap();
        assert_eq!(t.n_vars(), 2);
        assert_eq!(t.x()[0], vec![1.0, 2.0]);
    }

    #[test]
    fn medians_and_ranges() {
        let d = Dataset::from_pairs([(1.0, -10.0), (2.0, 20.0), (300.0, 30.0)]).unwrap();
        assert_eq!(d.median_abs_y(), 20.0);
        assert_eq!(d.median_abs_x(0), 2.0);
        assert_eq!(d.x_range(0), (1.0, 300.0));
    }

    #[test]
    fn scaling_multiplies_columns() {
        let d = Dataset::from_triples([((10.0, 100.0), 1000.0)]).unwrap();
        let s = d.scaled(&[0.1, 0.01], 0.001);
        assert_eq!(s.x()[0], vec![1.0, 1.0]);
        assert_eq!(s.y()[0], 1.0);
    }
}
