//! Population-wide structural deduplication of compiled programs.
//!
//! Breeding produces byte-identical siblings constantly: reproduction
//! children whose parents were themselves duplicates, crossovers that
//! transplant a subtree onto an identical recipient, point mutations
//! whose per-node coin flips all came up tails (probability `0.85^size`,
//! substantial for small trees), and concentrated elites late in a run.
//! The engine's fitness cache only catches children it *knows* were
//! copied verbatim; this module catches the rest by hashing each
//! pending child's compiled postfix program and scoring one
//! representative per structural equivalence class.
//!
//! Determinism: grouping is pure bookkeeping. Representatives are
//! chosen in input order, results are scattered back by index, and a
//! duplicate's error is the *same `f64`* its representative's scoring
//! produced — which is bit-for-bit what scoring the duplicate itself
//! would have returned, since equal programs run the exact same
//! instruction sequence. `gp.dedup_hits` / `gp.dedup_distinct` counters
//! depend only on population contents, so they are identical across
//! thread counts and with batching on or off.
//!
//! Constants are compared by [`f64::to_bits`], not `==`: `-0.0` and
//! `0.0` evaluate differently under some protected ops, and a NaN
//! constant must still equal itself for grouping to be stable.

use std::collections::HashMap;

use crate::compile::{CompiledExpr, Op};
use crate::expr::{BinaryOp, UnaryOp};

/// The environment variable gating dedup (`0`/`false`/`off`/`no`
/// disables; anything else, including unset, enables).
pub const DEDUP_ENV: &str = "DPR_GP_DEDUP";

/// Whether dedup is enabled. Read per scoring call, like `DPR_THREADS`,
/// so tests and long-lived processes can toggle it between fits.
pub fn enabled() -> bool {
    match std::env::var(DEDUP_ENV) {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// The outcome of grouping a batch of programs by structural equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupGroups {
    /// Indices (into the grouped slice) of the representative — first —
    /// program of each equivalence class, in first-seen order.
    pub reps: Vec<usize>,
    /// For each input program, the index into [`reps`](Self::reps) of
    /// its class.
    pub assign: Vec<u32>,
}

impl DedupGroups {
    /// Programs whose score is reused from an earlier structural twin.
    pub fn hits(&self) -> u64 {
        (self.assign.len() - self.reps.len()) as u64
    }

    /// The trivial grouping: every program is its own class. Used when
    /// dedup is disabled so scoring takes one code path.
    pub fn identity(n: usize) -> DedupGroups {
        DedupGroups {
            reps: (0..n).collect(),
            assign: (0..n as u32).collect(),
        }
    }
}

/// Groups `programs` into structural equivalence classes.
///
/// Hash-bucketed (FNV-1a over the encoded ops) with a full
/// [`structural_eq`] check inside each bucket, so hash collisions can
/// never merge distinct programs. Runs on the breeding thread; cost is
/// linear in total program length and amounts to ~1% of one
/// generation's scoring work.
pub fn group(programs: &[CompiledExpr]) -> DedupGroups {
    let mut reps: Vec<usize> = Vec::new();
    let mut assign: Vec<u32> = Vec::with_capacity(programs.len());
    // hash → indices into `reps` whose programs share it.
    let mut buckets: HashMap<u64, Vec<u32>> = HashMap::with_capacity(programs.len());
    for (i, program) in programs.iter().enumerate() {
        let hash = structural_hash(program.ops());
        let bucket = buckets.entry(hash).or_default();
        let found = bucket
            .iter()
            .copied()
            .find(|&g| structural_eq(programs[reps[g as usize]].ops(), program.ops()));
        let class = found.unwrap_or_else(|| {
            let g = reps.len() as u32;
            reps.push(i);
            bucket.push(g);
            g
        });
        assign.push(class);
    }
    DedupGroups { reps, assign }
}

/// FNV-1a over a canonical byte encoding of each op.
pub fn structural_hash(ops: &[Op]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h = OFFSET;
    for op in ops {
        match *op {
            Op::Const(c) => {
                eat(&mut h, 0);
                eat_f64(&mut h, c);
            }
            Op::Var(i) => {
                eat(&mut h, 1);
                eat_u32(&mut h, i);
            }
            Op::Unary(u) => {
                eat(&mut h, 2);
                eat(&mut h, unary_code(u));
            }
            Op::Binary(b) => {
                eat(&mut h, 3);
                eat(&mut h, binary_code(b));
            }
            Op::VarVar(b, x, y) => {
                eat(&mut h, 4);
                eat(&mut h, binary_code(b));
                eat_u32(&mut h, x);
                eat_u32(&mut h, y);
            }
            Op::VarConst(b, x, c) => {
                eat(&mut h, 5);
                eat(&mut h, binary_code(b));
                eat_u32(&mut h, x);
                eat_f64(&mut h, c);
            }
            Op::ConstVar(b, c, x) => {
                eat(&mut h, 6);
                eat(&mut h, binary_code(b));
                eat_f64(&mut h, c);
                eat_u32(&mut h, x);
            }
            Op::TopVar(b, x) => {
                eat(&mut h, 7);
                eat(&mut h, binary_code(b));
                eat_u32(&mut h, x);
            }
            Op::TopConst(b, c) => {
                eat(&mut h, 8);
                eat(&mut h, binary_code(b));
                eat_f64(&mut h, c);
            }
            Op::VarUnary(u, x) => {
                eat(&mut h, 9);
                eat(&mut h, unary_code(u));
                eat_u32(&mut h, x);
            }
        }
    }
    h
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn eat(h: &mut u64, byte: u8) {
    *h ^= u64::from(byte);
    *h = h.wrapping_mul(FNV_PRIME);
}

fn eat_u32(h: &mut u64, v: u32) {
    for byte in v.to_le_bytes() {
        eat(h, byte);
    }
}

fn eat_f64(h: &mut u64, v: f64) {
    for byte in v.to_bits().to_le_bytes() {
        eat(h, byte);
    }
}

/// Structural equality: same ops in the same order, with constants
/// compared by bit pattern (so NaN == NaN and -0.0 != 0.0).
pub fn structural_eq(a: &[Op], b: &[Op]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| op_eq(*x, *y))
}

fn op_eq(a: Op, b: Op) -> bool {
    match (a, b) {
        (Op::Const(x), Op::Const(y)) => x.to_bits() == y.to_bits(),
        (Op::Var(x), Op::Var(y)) => x == y,
        (Op::Unary(x), Op::Unary(y)) => x == y,
        (Op::Binary(x), Op::Binary(y)) => x == y,
        (Op::VarVar(ba, xa, ya), Op::VarVar(bb, xb, yb)) => ba == bb && xa == xb && ya == yb,
        (Op::VarConst(ba, xa, ca), Op::VarConst(bb, xb, cb)) => {
            ba == bb && xa == xb && ca.to_bits() == cb.to_bits()
        }
        (Op::ConstVar(ba, ca, xa), Op::ConstVar(bb, cb, xb)) => {
            ba == bb && ca.to_bits() == cb.to_bits() && xa == xb
        }
        (Op::TopVar(ba, xa), Op::TopVar(bb, xb)) => ba == bb && xa == xb,
        (Op::TopConst(ba, ca), Op::TopConst(bb, cb)) => ba == bb && ca.to_bits() == cb.to_bits(),
        (Op::VarUnary(ua, xa), Op::VarUnary(ub, xb)) => ua == ub && xa == xb,
        _ => false,
    }
}

fn unary_code(u: UnaryOp) -> u8 {
    match u {
        UnaryOp::Sqrt => 0,
        UnaryOp::Log => 1,
        UnaryOp::Abs => 2,
        UnaryOp::Neg => 3,
        UnaryOp::Sin => 4,
        UnaryOp::Cos => 5,
        UnaryOp::Tan => 6,
        UnaryOp::Inv => 7,
    }
}

fn binary_code(b: BinaryOp) -> u8 {
    match b {
        BinaryOp::Add => 0,
        BinaryOp::Sub => 1,
        BinaryOp::Mul => 2,
        BinaryOp::Div => 3,
        BinaryOp::Max => 4,
        BinaryOp::Min => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_programs(seed: u64, n: usize) -> Vec<CompiledExpr> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let e = Expr::random_grow(
                    &mut rng,
                    4,
                    2,
                    &UnaryOp::ALL,
                    &BinaryOp::ALL,
                    (-10.0, 10.0),
                );
                CompiledExpr::compile(&e)
            })
            .collect()
    }

    #[test]
    fn duplicates_collapse_to_one_representative() {
        let base = random_programs(1, 8);
        // Interleave two copies of each program.
        let mut programs = Vec::new();
        for p in &base {
            programs.push(p.clone());
        }
        for p in &base {
            programs.push(p.clone());
        }
        let groups = group(&programs);
        // The random base set may itself contain structural twins, so the
        // expected class count comes from grouping it alone.
        let distinct = group(&base).reps.len();
        assert_eq!(groups.reps.len(), distinct);
        assert_eq!(groups.hits(), (programs.len() - distinct) as u64);
        for (i, &class) in groups.assign.iter().enumerate() {
            let rep = groups.reps[class as usize];
            assert!(structural_eq(programs[rep].ops(), programs[i].ops()));
        }
    }

    #[test]
    fn distinct_programs_stay_distinct() {
        let programs = random_programs(2, 64);
        let groups = group(&programs);
        // Representatives must be pairwise structurally distinct.
        for (a, &ra) in groups.reps.iter().enumerate() {
            for &rb in &groups.reps[a + 1..] {
                assert!(!structural_eq(programs[ra].ops(), programs[rb].ops()));
            }
        }
        assert_eq!(groups.assign.len(), programs.len());
    }

    #[test]
    fn identity_grouping_is_one_class_per_program() {
        let g = DedupGroups::identity(5);
        assert_eq!(g.reps, vec![0, 1, 2, 3, 4]);
        assert_eq!(g.hits(), 0);
    }

    #[test]
    fn nan_constants_group_with_themselves() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Const(f64::NAN)),
            Box::new(Expr::Var(0)),
        );
        let p = CompiledExpr::compile(&e);
        let groups = group(&[p.clone(), p]);
        assert_eq!(groups.reps.len(), 1);
        assert_eq!(groups.hits(), 1);
    }

    #[test]
    fn enabled_honors_env_values() {
        // Read-only check against the default (unset in the test env).
        assert!(enabled());
    }
}
