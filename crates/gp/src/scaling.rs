//! The paper's Tab. 2 pre-scaling and formula post-processing.
//!
//! GP is most accurate when "most absolute values of X and Y are in the
//! range 1.0 to 10.0" (paper §3.5, Step 3): targets far below 1 tempt GP to
//! return a constant, targets far above 1000 breed needlessly complex
//! trees. The rules here reduce or enlarge each column by a power of ten
//! before fitting, and the [`ScalePlan`] records the factors so the fitted
//! expression can be interpreted on the raw data afterwards ("replace Y'
//! with Y·a").

use serde::{Deserialize, Serialize};

use crate::Dataset;

/// Returns the Tab. 2 multiplier for a column whose typical magnitude
/// (median of absolute values) is `median_abs`.
///
/// `allow_enlarge` distinguishes the `Y` rules (both reduce and enlarge)
/// from the `X` rules (reduce only — raw message values are integers, so
/// they are never below 1).
pub fn table2_factor(median_abs: f64, allow_enlarge: bool) -> f64 {
    if median_abs > 1e4 {
        1e-4
    } else if median_abs > 1e3 {
        1e-3
    } else if median_abs > 1e2 {
        1e-2
    } else if median_abs > 10.0 {
        1e-1
    } else if !allow_enlarge || median_abs >= 1.0 {
        1.0
    } else if median_abs >= 0.1 {
        10.0
    } else if median_abs >= 1e-2 {
        1e2
    } else if median_abs >= 1e-3 {
        1e3
    } else {
        1e4
    }
}

/// The scaling factors chosen for one data set: one per input column plus
/// one for the target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePlan {
    /// Multiplier applied to each `X` column before fitting.
    pub x_factors: Vec<f64>,
    /// Multiplier applied to `Y` before fitting.
    pub y_factor: f64,
}

impl ScalePlan {
    /// The identity plan (no scaling) for `n_vars` input columns.
    pub fn identity(n_vars: usize) -> Self {
        ScalePlan {
            x_factors: vec![1.0; n_vars],
            y_factor: 1.0,
        }
    }

    /// Chooses factors for a data set per Tab. 2: `X` columns may only be
    /// reduced, `Y` may be reduced or enlarged.
    pub fn for_dataset(data: &Dataset) -> Self {
        let x_factors = (0..data.n_vars())
            .map(|c| table2_factor(data.median_abs_x(c), false))
            .collect();
        let y_factor = table2_factor(data.median_abs_y(), true);
        ScalePlan { x_factors, y_factor }
    }

    /// Applies the plan, producing the scaled data set GP fits on.
    pub fn apply(&self, data: &Dataset) -> Dataset {
        data.scaled(&self.x_factors, self.y_factor)
    }

    /// Whether the plan is the identity (nothing to undo).
    pub fn is_identity(&self) -> bool {
        self.y_factor == 1.0 && self.x_factors.iter().all(|&f| f == 1.0)
    }

    /// Evaluates a formula fitted on *scaled* data against a *raw* input
    /// row, undoing the plan: `Y = f(X·x_factors) / y_factor`.
    pub fn eval_raw(&self, fitted: &crate::Expr, raw_row: &[f64]) -> f64 {
        let scaled: Vec<f64> = raw_row
            .iter()
            .zip(&self.x_factors)
            .map(|(v, f)| v * f)
            .collect();
        fitted.eval(&scaled) / self.y_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    #[test]
    fn table2_reduction_rules() {
        assert_eq!(table2_factor(50_000.0, true), 1e-4);
        assert_eq!(table2_factor(5_000.0, true), 1e-3);
        assert_eq!(table2_factor(500.0, true), 1e-2);
        assert_eq!(table2_factor(50.0, true), 1e-1);
        assert_eq!(table2_factor(5.0, true), 1.0);
    }

    #[test]
    fn table2_enlargement_rules_only_for_y() {
        assert_eq!(table2_factor(0.5, true), 10.0);
        assert_eq!(table2_factor(0.05, true), 1e2);
        assert_eq!(table2_factor(0.005, true), 1e3);
        assert_eq!(table2_factor(0.0005, true), 1e4);
        // X columns are never enlarged.
        assert_eq!(table2_factor(0.5, false), 1.0);
        assert_eq!(table2_factor(0.0005, false), 1.0);
    }

    #[test]
    fn plan_brings_values_into_band() {
        // X around 200, Y around 4000.
        let data = Dataset::from_pairs((1..=20).map(|i| {
            let x = 190.0 + f64::from(i);
            (x, x * 20.0)
        }))
        .unwrap();
        let plan = ScalePlan::for_dataset(&data);
        assert_eq!(plan.x_factors, vec![1e-2]);
        assert_eq!(plan.y_factor, 1e-3);
        let scaled = plan.apply(&data);
        assert!(scaled.median_abs_x(0) >= 1.0 && scaled.median_abs_x(0) < 10.0);
        assert!(scaled.median_abs_y() >= 1.0 && scaled.median_abs_y() < 10.0);
    }

    #[test]
    fn eval_raw_undoes_scaling() {
        // Raw relation: Y = 20·X. With X·1e-2 and Y·1e-3 the scaled
        // relation is Y' = 2·X'.
        let plan = ScalePlan {
            x_factors: vec![1e-2],
            y_factor: 1e-3,
        };
        let scaled_formula = Expr::Binary(
            crate::BinaryOp::Mul,
            Box::new(Expr::Const(2.0)),
            Box::new(Expr::Var(0)),
        );
        let y = plan.eval_raw(&scaled_formula, &[200.0]);
        assert!((y - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn identity_plan_is_identity() {
        let plan = ScalePlan::identity(2);
        assert!(plan.is_identity());
        let data = Dataset::from_triples([((1.0, 2.0), 3.0)]).unwrap();
        assert_eq!(plan.apply(&data), data);
    }
}
