//! Expression trees over the paper's 14-function set.

use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Binary functions of the function set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Protected division: `x/y`, but 1.0 when `|y|` is tiny.
    Div,
    /// Maximum of the operands.
    Max,
    /// Minimum of the operands.
    Min,
}

impl BinaryOp {
    /// All binary operators.
    pub const ALL: [BinaryOp; 6] = [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Max,
        BinaryOp::Min,
    ];

    /// Applies the (protected) operator.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b.abs() < 1e-9 {
                    1.0
                } else {
                    a / b
                }
            }
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }

    /// The infix symbol or function name.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Max => "max",
            BinaryOp::Min => "min",
        }
    }
}

/// Unary functions of the function set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Protected square root: `sqrt(|x|)`.
    Sqrt,
    /// Protected natural log: `ln(|x|)`, 0.0 when `|x|` is tiny.
    Log,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent, clamped to ±1e6 to keep fitness finite near poles.
    Tan,
    /// Protected inverse: `1/x`, 0.0 when `|x|` is tiny.
    Inv,
}

impl UnaryOp {
    /// All unary operators. Together with [`BinaryOp::ALL`] this is the
    /// paper's 14-function set.
    pub const ALL: [UnaryOp; 8] = [
        UnaryOp::Sqrt,
        UnaryOp::Log,
        UnaryOp::Abs,
        UnaryOp::Neg,
        UnaryOp::Sin,
        UnaryOp::Cos,
        UnaryOp::Tan,
        UnaryOp::Inv,
    ];

    /// Applies the (protected) operator.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryOp::Sqrt => x.abs().sqrt(),
            UnaryOp::Log => {
                if x.abs() < 1e-9 {
                    0.0
                } else {
                    x.abs().ln()
                }
            }
            UnaryOp::Abs => x.abs(),
            UnaryOp::Neg => -x,
            UnaryOp::Sin => x.sin(),
            UnaryOp::Cos => x.cos(),
            UnaryOp::Tan => x.tan().clamp(-1e6, 1e6),
            UnaryOp::Inv => {
                if x.abs() < 1e-9 {
                    0.0
                } else {
                    1.0 / x
                }
            }
        }
    }

    /// The function name.
    pub fn symbol(self) -> &'static str {
        match self {
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Log => "log",
            UnaryOp::Abs => "abs",
            UnaryOp::Neg => "neg",
            UnaryOp::Sin => "sin",
            UnaryOp::Cos => "cos",
            UnaryOp::Tan => "tan",
            UnaryOp::Inv => "inv",
        }
    }
}

/// A symbolic expression over variables `X0..Xn` and numeric constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric constant (gplearn's "ephemeral random constant").
    Const(f64),
    /// The `i`-th input variable.
    Var(usize),
    /// A unary function application.
    Unary(UnaryOp, Box<Expr>),
    /// A binary function application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluates the expression on an input row. Out-of-range variable
    /// indices evaluate to 0.0 (the engine never produces them, but the
    /// evaluator is total).
    pub fn eval(&self, vars: &[f64]) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(i) => vars.get(*i).copied().unwrap_or(0.0),
            Expr::Unary(op, a) => op.apply(a.eval(vars)),
            Expr::Binary(op, a, b) => op.apply(a.eval(vars), b.eval(vars)),
        }
    }

    /// Number of nodes in the tree (gplearn's "length").
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, a) => 1 + a.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Tree depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, a) => 1 + a.depth(),
            Expr::Binary(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// The set of variable indices the expression reads.
    pub fn variables(&self) -> Vec<usize> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(i) => out.push(*i),
            Expr::Unary(_, a) => a.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Returns a mutable reference to the `idx`-th node in pre-order.
    pub(crate) fn node_mut(&mut self, idx: usize) -> &mut Expr {
        fn walk<'a>(e: &'a mut Expr, idx: &mut usize) -> Option<&'a mut Expr> {
            if *idx == 0 {
                return Some(e);
            }
            *idx -= 1;
            match e {
                Expr::Const(_) | Expr::Var(_) => None,
                Expr::Unary(_, a) => walk(a, idx),
                Expr::Binary(_, a, b) => walk(a, idx).or_else(|| walk(b, idx)),
            }
        }
        let mut i = idx;
        walk(self, &mut i).expect("node index within tree size")
    }

    /// Returns a clone of the `idx`-th node in pre-order.
    pub(crate) fn node(&self, idx: usize) -> &Expr {
        fn walk<'a>(e: &'a Expr, idx: &mut usize) -> Option<&'a Expr> {
            if *idx == 0 {
                return Some(e);
            }
            *idx -= 1;
            match e {
                Expr::Const(_) | Expr::Var(_) => None,
                Expr::Unary(_, a) => walk(a, idx),
                Expr::Binary(_, a, b) => walk(a, idx).or_else(|| walk(b, idx)),
            }
        }
        let mut i = idx;
        walk(self, &mut i).expect("node index within tree size")
    }

    /// Collects mutable references to every constant leaf.
    pub(crate) fn constants_mut(&mut self) -> Vec<&mut f64> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a mut Expr, out: &mut Vec<&'a mut f64>) {
            match e {
                Expr::Const(c) => out.push(c),
                Expr::Var(_) => {}
                Expr::Unary(_, a) => walk(a, out),
                Expr::Binary(_, a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Algebraic simplification: constant folding plus the standard
    /// identities (`x+0`, `x*1`, `x*0`, `x-x`, `neg(neg(x))`, `x/1`).
    /// Simplification is purely cosmetic — the engine applies it only to
    /// reported winners, never inside the population.
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Unary(op, a) => {
                let a = a.simplify();
                if let Expr::Const(c) = a {
                    return Expr::Const(op.apply(c));
                }
                if *op == UnaryOp::Neg {
                    if let Expr::Unary(UnaryOp::Neg, inner) = &a {
                        return (**inner).clone();
                    }
                }
                Expr::Unary(*op, Box::new(a))
            }
            Expr::Binary(op, a, b) => {
                let a = a.simplify();
                let b = b.simplify();
                if let (Expr::Const(ca), Expr::Const(cb)) = (&a, &b) {
                    return Expr::Const(op.apply(*ca, *cb));
                }
                match (op, &a, &b) {
                    (BinaryOp::Add, Expr::Const(c), other) if *c == 0.0 => other.clone(),
                    (BinaryOp::Add, other, Expr::Const(c)) if *c == 0.0 => other.clone(),
                    (BinaryOp::Sub, other, Expr::Const(c)) if *c == 0.0 => other.clone(),
                    (BinaryOp::Mul, Expr::Const(c), other) if *c == 1.0 => other.clone(),
                    (BinaryOp::Mul, other, Expr::Const(c)) if *c == 1.0 => other.clone(),
                    (BinaryOp::Mul, Expr::Const(c), _) if *c == 0.0 => Expr::Const(0.0),
                    (BinaryOp::Mul, _, Expr::Const(c)) if *c == 0.0 => Expr::Const(0.0),
                    (BinaryOp::Div, other, Expr::Const(c)) if *c == 1.0 => other.clone(),
                    (BinaryOp::Sub, x, y) if x == y => Expr::Const(0.0),
                    _ => Expr::Binary(*op, Box::new(a), Box::new(b)),
                }
            }
        }
    }

    /// Generates a random tree with the *full* method: every branch reaches
    /// exactly `depth`.
    pub fn random_full(
        rng: &mut StdRng,
        depth: usize,
        n_vars: usize,
        unary: &[UnaryOp],
        binary: &[BinaryOp],
        const_range: (f64, f64),
    ) -> Expr {
        if depth <= 1 {
            return Expr::random_leaf(rng, n_vars, const_range);
        }
        // Prefer binary nodes: they grow expressive power fastest.
        if !binary.is_empty() && (unary.is_empty() || rng.gen_bool(0.75)) {
            let op = *binary.choose(rng).expect("non-empty binary set");
            Expr::Binary(
                op,
                Box::new(Expr::random_full(rng, depth - 1, n_vars, unary, binary, const_range)),
                Box::new(Expr::random_full(rng, depth - 1, n_vars, unary, binary, const_range)),
            )
        } else if !unary.is_empty() {
            let op = *unary.choose(rng).expect("non-empty unary set");
            Expr::Unary(
                op,
                Box::new(Expr::random_full(rng, depth - 1, n_vars, unary, binary, const_range)),
            )
        } else {
            Expr::random_leaf(rng, n_vars, const_range)
        }
    }

    /// Generates a random tree with the *grow* method: branches may stop
    /// early at leaves.
    pub fn random_grow(
        rng: &mut StdRng,
        depth: usize,
        n_vars: usize,
        unary: &[UnaryOp],
        binary: &[BinaryOp],
        const_range: (f64, f64),
    ) -> Expr {
        if depth <= 1 || rng.gen_bool(0.3) {
            return Expr::random_leaf(rng, n_vars, const_range);
        }
        if !binary.is_empty() && (unary.is_empty() || rng.gen_bool(0.75)) {
            let op = *binary.choose(rng).expect("non-empty binary set");
            Expr::Binary(
                op,
                Box::new(Expr::random_grow(rng, depth - 1, n_vars, unary, binary, const_range)),
                Box::new(Expr::random_grow(rng, depth - 1, n_vars, unary, binary, const_range)),
            )
        } else if !unary.is_empty() {
            let op = *unary.choose(rng).expect("non-empty unary set");
            Expr::Unary(
                op,
                Box::new(Expr::random_grow(rng, depth - 1, n_vars, unary, binary, const_range)),
            )
        } else {
            Expr::random_leaf(rng, n_vars, const_range)
        }
    }

    /// Generates a random terminal: a variable (preferred) or a constant.
    pub fn random_leaf(rng: &mut StdRng, n_vars: usize, const_range: (f64, f64)) -> Expr {
        if n_vars > 0 && rng.gen_bool(0.6) {
            Expr::Var(rng.gen_range(0..n_vars))
        } else {
            Expr::Const(round3(rng.gen_range(const_range.0..=const_range.1)))
        }
    }
}

/// Rounds to three decimals — keeps printed formulas readable without
/// meaningfully constraining the search.
fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(i) => write!(f, "X{i}"),
            Expr::Unary(op, a) => write!(f, "{}({a})", op.symbol()),
            Expr::Binary(op @ (BinaryOp::Max | BinaryOp::Min), a, b) => {
                write!(f, "{}({a}, {b})", op.symbol())
            }
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn x0() -> Expr {
        Expr::Var(0)
    }

    #[test]
    fn protected_operators_are_total() {
        assert_eq!(BinaryOp::Div.apply(5.0, 0.0), 1.0);
        assert_eq!(UnaryOp::Inv.apply(0.0), 0.0);
        assert_eq!(UnaryOp::Log.apply(0.0), 0.0);
        assert_eq!(UnaryOp::Sqrt.apply(-4.0), 2.0);
        assert!(UnaryOp::Tan.apply(std::f64::consts::FRAC_PI_2).is_finite());
    }

    #[test]
    fn fourteen_functions() {
        assert_eq!(BinaryOp::ALL.len() + UnaryOp::ALL.len(), 14);
    }

    #[test]
    fn eval_composes() {
        // 64*X0 + 0.25*X1
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(64.0)),
                Box::new(Expr::Var(0)),
            )),
            Box::new(Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(0.25)),
                Box::new(Expr::Var(1)),
            )),
        );
        assert_eq!(e.eval(&[26.0, 240.0]), 64.0 * 26.0 + 0.25 * 240.0);
        assert_eq!(e.size(), 7);
        assert_eq!(e.depth(), 3);
        assert_eq!(e.variables(), vec![0, 1]);
    }

    #[test]
    fn missing_variable_evaluates_to_zero() {
        assert_eq!(Expr::Var(5).eval(&[1.0]), 0.0);
    }

    #[test]
    fn simplify_folds_constants_and_identities() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(1.0)),
                Box::new(x0()),
            )),
            Box::new(Expr::Const(0.0)),
        );
        assert_eq!(e.simplify(), x0());

        let folded = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Const(3.0)),
            Box::new(Expr::Const(4.0)),
        );
        assert_eq!(folded.simplify(), Expr::Const(12.0));

        let neg_neg = Expr::Unary(UnaryOp::Neg, Box::new(Expr::Unary(UnaryOp::Neg, Box::new(x0()))));
        assert_eq!(neg_neg.simplify(), x0());

        let self_sub = Expr::Binary(BinaryOp::Sub, Box::new(x0()), Box::new(x0()));
        assert_eq!(self_sub.simplify(), Expr::Const(0.0));

        let times_zero = Expr::Binary(BinaryOp::Mul, Box::new(x0()), Box::new(Expr::Const(0.0)));
        assert_eq!(times_zero.simplify(), Expr::Const(0.0));
    }

    #[test]
    fn simplify_preserves_semantics() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let e = Expr::random_grow(&mut rng, 5, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-10.0, 10.0));
            let s = e.simplify();
            for sample in [[0.5, 2.0], [3.0, -1.0], [10.0, 7.5]] {
                let a = e.eval(&sample);
                let b = s.eval(&sample);
                assert!(
                    (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan()),
                    "{e} vs {s} on {sample:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn full_trees_reach_requested_depth() {
        let mut rng = StdRng::seed_from_u64(1);
        for depth in 2..6 {
            let e =
                Expr::random_full(&mut rng, depth, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-1.0, 1.0));
            assert_eq!(e.depth(), depth);
        }
    }

    #[test]
    fn grow_trees_respect_depth_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let e = Expr::random_grow(&mut rng, 4, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-1.0, 1.0));
            assert!(e.depth() <= 4);
        }
    }

    #[test]
    fn node_indexing_covers_every_node() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Unary(UnaryOp::Sqrt, Box::new(x0()))),
            Box::new(Expr::Const(2.0)),
        );
        assert_eq!(e.size(), 4);
        let mut seen = Vec::new();
        for i in 0..e.size() {
            seen.push(format!("{}", e.node(i)));
        }
        assert_eq!(seen, vec!["(sqrt(X0) + 2)", "sqrt(X0)", "X0", "2"]);
    }

    #[test]
    fn display_formats() {
        let e = Expr::Binary(
            BinaryOp::Max,
            Box::new(x0()),
            Box::new(Expr::Unary(UnaryOp::Neg, Box::new(Expr::Var(1)))),
        );
        assert_eq!(e.to_string(), "max(X0, neg(X1))");
    }
}
