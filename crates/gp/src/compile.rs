//! Compiled expression evaluation: postfix bytecode over a value stack.
//!
//! [`Expr::eval`](crate::Expr::eval) walks a pointer tree — every node is a
//! separate heap allocation, so a population-scale fitness pass spends most
//! of its time in call overhead and cache misses. [`CompiledExpr`] flattens
//! the tree once into a postfix [`Op`] program stored in one contiguous
//! `Vec`, then evaluates it with a tight interpreter loop.
//!
//! Two evaluation modes are provided:
//!
//! * **scalar** ([`CompiledExpr::eval`] / [`CompiledExpr::eval_with`]) —
//!   one input row, one `f64` out, a reusable `Vec<f64>` stack;
//! * **batch** ([`CompiledExpr::error_on`]) — the whole [`Dataset`] at
//!   once over a column-major [`Columns`] view: each op processes every
//!   row before the next op runs, so the per-op dispatch cost is paid once
//!   per *program step* instead of once per *row × step*, and the inner
//!   loops are plain slice arithmetic the compiler can vectorize.
//!
//! Both modes apply exactly the same protected operators in exactly the
//! same order as the recursive walker, so results are **bit-identical** to
//! `Expr::eval` — including NaN/∞ propagation and the protected
//! division/log/inverse special cases. The GP engine relies on this: the
//! compiled fast path must not perturb a single fitness comparison.
//!
//! # Superinstructions
//!
//! [`CompiledExpr::compile`] additionally runs a peephole pass that fuses
//! the most common postfix adjacencies into single *superinstructions*:
//! `Var Var Bin`, `Var Const Bin`, `Const Var Bin`, `… Var Bin`,
//! `… Const Bin`, and `Var Unary` each become one [`Op`]. GP trees are
//! leaf-heavy (every interior node has at least one leaf operand half the
//! time), so fusion typically removes 40–60% of the dispatched ops, and —
//! more importantly for batch mode — a fused op reads its leaf operands
//! *directly from the dataset column or an immediate* instead of first
//! memcpying a whole column onto the value stack. Fused evaluation calls
//! the exact same protected [`BinaryOp::apply`]/[`UnaryOp::apply`] in the
//! exact same order as the unfused program, so it stays bit-identical;
//! `crates/gp/tests/properties.rs` property-tests this against the
//! recursive walker, and [`CompiledExpr::compile_unfused`] keeps the
//! plain program around for those tests and the
//! `superinstruction_speedup` microbenchmark.

use serde::{Deserialize, Serialize};

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::{Dataset, Metric};

/// One postfix instruction.
///
/// The first four variants are the plain stack machine an [`Expr`]
/// flattens to; the rest are fused superinstructions the peephole pass
/// in [`CompiledExpr::compile`] substitutes for common adjacencies. In
/// the comments below, `v(i)` is input variable `i` (0.0 when out of
/// range, matching [`Expr::eval`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Push a constant.
    Const(f64),
    /// Push input variable `i` (out-of-range pushes 0.0, matching
    /// [`Expr::eval`]).
    Var(u32),
    /// Pop one value, push `op(value)`.
    Unary(UnaryOp),
    /// Pop `b` then `a`, push `op(a, b)`.
    Binary(BinaryOp),
    /// Fused `Var Var Binary`: push `op(v(a), v(b))`.
    VarVar(BinaryOp, u32, u32),
    /// Fused `Var Const Binary`: push `op(v(a), c)`.
    VarConst(BinaryOp, u32, f64),
    /// Fused `Const Var Binary`: push `op(c, v(a))`.
    ConstVar(BinaryOp, f64, u32),
    /// Fused `… Var Binary`: replace the top of stack `t` with `op(t, v(a))`.
    TopVar(BinaryOp, u32),
    /// Fused `… Const Binary`: replace the top of stack `t` with `op(t, c)`.
    TopConst(BinaryOp, f64),
    /// Fused `Var Unary`: push `op(v(a))`.
    VarUnary(UnaryOp, u32),
}

/// An [`Expr`] flattened to postfix bytecode.
///
/// Compile once with [`CompiledExpr::compile`], evaluate many times; the
/// program is immutable and `Sync`, so one compiled individual can be
/// scored from several threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledExpr {
    ops: Vec<Op>,
    max_stack: usize,
}

impl CompiledExpr {
    /// Flattens `expr` into a postfix program and fuses superinstructions.
    pub fn compile(expr: &Expr) -> CompiledExpr {
        let mut ops = Vec::with_capacity(expr.size());
        flatten(expr, &mut ops);
        fuse(&mut ops);
        CompiledExpr::finish(ops)
    }

    /// Flattens `expr` without the superinstruction pass — the plain
    /// one-op-per-tree-node program. Exists for the bit-identity property
    /// tests and the `superinstruction_speedup` microbenchmark; the
    /// engine always uses [`compile`](Self::compile).
    pub fn compile_unfused(expr: &Expr) -> CompiledExpr {
        let mut ops = Vec::with_capacity(expr.size());
        flatten(expr, &mut ops);
        CompiledExpr::finish(ops)
    }

    /// Computes the exact peak stack depth by simulating pushes/pops.
    fn finish(ops: Vec<Op>) -> CompiledExpr {
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                Op::Const(_)
                | Op::Var(_)
                | Op::VarVar(..)
                | Op::VarConst(..)
                | Op::ConstVar(..)
                | Op::VarUnary(..) => depth += 1,
                Op::Unary(_) | Op::TopVar(..) | Op::TopConst(..) => {}
                Op::Binary(_) => depth -= 1,
            }
            max_stack = max_stack.max(depth);
        }
        CompiledExpr { ops, max_stack }
    }

    /// The program's instructions, in evaluation order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of instructions. Equals the source tree's node count for an
    /// unfused program; fusion shrinks it (each superinstruction covers
    /// two or three nodes).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty (never true for a compiled tree).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peak value-stack depth the program needs.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Evaluates on one input row. Bit-identical to
    /// [`Expr::eval`](crate::Expr::eval) on the source tree.
    pub fn eval(&self, vars: &[f64]) -> f64 {
        let mut stack = Vec::with_capacity(self.max_stack);
        self.eval_with(vars, &mut stack)
    }

    /// Evaluates on one input row with a caller-provided stack, so repeated
    /// evaluations reuse one allocation. The stack is cleared on entry.
    pub fn eval_with(&self, vars: &[f64], stack: &mut Vec<f64>) -> f64 {
        stack.clear();
        stack.reserve(self.max_stack);
        let var = |i: u32| vars.get(i as usize).copied().unwrap_or(0.0);
        for op in &self.ops {
            match *op {
                Op::Const(c) => stack.push(c),
                Op::Var(i) => stack.push(var(i)),
                Op::Unary(u) => {
                    let a = stack.pop().expect("unary operand");
                    stack.push(u.apply(a));
                }
                Op::Binary(b) => {
                    let rhs = stack.pop().expect("binary rhs");
                    let lhs = stack.pop().expect("binary lhs");
                    stack.push(b.apply(lhs, rhs));
                }
                Op::VarVar(b, x, y) => stack.push(b.apply(var(x), var(y))),
                Op::VarConst(b, x, c) => stack.push(b.apply(var(x), c)),
                Op::ConstVar(b, c, x) => stack.push(b.apply(c, var(x))),
                Op::TopVar(b, x) => {
                    let t = stack.last_mut().expect("fused binary lhs");
                    *t = b.apply(*t, var(x));
                }
                Op::TopConst(b, c) => {
                    let t = stack.last_mut().expect("fused binary lhs");
                    *t = b.apply(*t, c);
                }
                Op::VarUnary(u, x) => stack.push(u.apply(var(x))),
            }
        }
        stack.pop().expect("program leaves one value")
    }

    /// Computes `metric` over the whole data set in batch mode.
    ///
    /// Returns exactly what `metric.error(expr, data)` returns on the
    /// source tree: per-row predictions are bit-identical, the residual
    /// accumulation runs in the same row order, and any non-finite
    /// prediction yields `f64::INFINITY`.
    pub fn error_on(&self, cols: &Columns, metric: Metric, scratch: &mut BatchScratch) -> f64 {
        let n = cols.n_rows();
        scratch.ensure(self.max_stack, n);
        let mut sp = 0usize;
        for op in &self.ops {
            match *op {
                Op::Const(c) => {
                    scratch.bufs[sp].iter_mut().for_each(|v| *v = c);
                    sp += 1;
                }
                Op::Var(i) => {
                    match cols.col(i as usize) {
                        Some(col) => scratch.bufs[sp].copy_from_slice(col),
                        None => scratch.bufs[sp].iter_mut().for_each(|v| *v = 0.0),
                    }
                    sp += 1;
                }
                Op::Unary(u) => {
                    scratch.bufs[sp - 1].iter_mut().for_each(|v| *v = u.apply(*v));
                }
                Op::Binary(b) => {
                    let (lo, hi) = scratch.bufs.split_at_mut(sp - 1);
                    let lhs = lo.last_mut().expect("binary lhs buffer");
                    let rhs = &hi[0];
                    for (a, &r) in lhs.iter_mut().zip(rhs.iter()) {
                        *a = b.apply(*a, r);
                    }
                    sp -= 1;
                }
                // Fused ops read leaf operands straight from the dataset
                // columns (or an immediate) — no stack-slab memcpy. The
                // out-of-range-variable fallbacks reproduce the 0.0 a
                // plain `Op::Var` would have pushed.
                Op::VarVar(b, x, y) => {
                    let dst = &mut scratch.bufs[sp];
                    match (cols.col(x as usize), cols.col(y as usize)) {
                        (Some(cx), Some(cy)) => {
                            for ((d, &a), &r) in dst.iter_mut().zip(cx).zip(cy) {
                                *d = b.apply(a, r);
                            }
                        }
                        (cx, cy) => {
                            for (r, d) in dst.iter_mut().enumerate() {
                                let a = cx.map_or(0.0, |c| c[r]);
                                let rhs = cy.map_or(0.0, |c| c[r]);
                                *d = b.apply(a, rhs);
                            }
                        }
                    }
                    sp += 1;
                }
                Op::VarConst(b, x, c) => {
                    let dst = &mut scratch.bufs[sp];
                    match cols.col(x as usize) {
                        Some(cx) => {
                            for (d, &a) in dst.iter_mut().zip(cx) {
                                *d = b.apply(a, c);
                            }
                        }
                        None => {
                            let v = b.apply(0.0, c);
                            dst.iter_mut().for_each(|d| *d = v);
                        }
                    }
                    sp += 1;
                }
                Op::ConstVar(b, c, x) => {
                    let dst = &mut scratch.bufs[sp];
                    match cols.col(x as usize) {
                        Some(cx) => {
                            for (d, &r) in dst.iter_mut().zip(cx) {
                                *d = b.apply(c, r);
                            }
                        }
                        None => {
                            let v = b.apply(c, 0.0);
                            dst.iter_mut().for_each(|d| *d = v);
                        }
                    }
                    sp += 1;
                }
                Op::TopVar(b, x) => {
                    let dst = &mut scratch.bufs[sp - 1];
                    match cols.col(x as usize) {
                        Some(cx) => {
                            for (d, &r) in dst.iter_mut().zip(cx) {
                                *d = b.apply(*d, r);
                            }
                        }
                        None => dst.iter_mut().for_each(|d| *d = b.apply(*d, 0.0)),
                    }
                }
                Op::TopConst(b, c) => {
                    scratch.bufs[sp - 1].iter_mut().for_each(|d| *d = b.apply(*d, c));
                }
                Op::VarUnary(u, x) => {
                    let dst = &mut scratch.bufs[sp];
                    match cols.col(x as usize) {
                        Some(cx) => {
                            for (d, &a) in dst.iter_mut().zip(cx) {
                                *d = u.apply(a);
                            }
                        }
                        None => {
                            let v = u.apply(0.0);
                            dst.iter_mut().for_each(|d| *d = v);
                        }
                    }
                    sp += 1;
                }
            }
        }
        debug_assert_eq!(sp, 1, "program leaves one value");
        metric_over_rows(metric, &scratch.bufs[0], cols.y())
    }
}

/// Accumulates `metric` over prediction/target rows exactly the way
/// [`Metric::error`] does on the recursive evaluator.
fn metric_over_rows(metric: Metric, preds: &[f64], targets: &[f64]) -> f64 {
    let mut acc = 0.0;
    let n = targets.len() as f64;
    for (&pred, &target) in preds.iter().zip(targets) {
        if !pred.is_finite() {
            return f64::INFINITY;
        }
        let residual = pred - target;
        acc += match metric {
            Metric::MeanAbsoluteError => residual.abs(),
            Metric::MeanSquaredError | Metric::Rmse => residual * residual,
        };
    }
    match metric {
        Metric::MeanAbsoluteError | Metric::MeanSquaredError => acc / n,
        Metric::Rmse => (acc / n).sqrt(),
    }
}

fn flatten(expr: &Expr, out: &mut Vec<Op>) {
    match expr {
        Expr::Const(c) => out.push(Op::Const(*c)),
        Expr::Var(i) => out.push(Op::Var(*i as u32)),
        Expr::Unary(op, a) => {
            flatten(a, out);
            out.push(Op::Unary(*op));
        }
        Expr::Binary(op, a, b) => {
            flatten(a, out);
            flatten(b, out);
            out.push(Op::Binary(*op));
        }
    }
}

/// The in-place peephole pass: rewrites leaf-adjacent `Binary`/`Unary`
/// ops into fused superinstructions by inspecting the already-emitted
/// tail of the output program.
///
/// Soundness leans on a postfix invariant: the final op of any complete
/// subexpression is its root, so if the last emitted op is a plain
/// `Var`/`Const` *push*, that push is the entirety of the operand
/// subexpression and can be folded into the consuming operator. The
/// rewrite only reorders nothing — operand evaluation order and every
/// `apply` call are preserved exactly, which is what keeps fused
/// programs bit-identical to unfused ones.
fn fuse(ops: &mut Vec<Op>) {
    let mut w = 0usize;
    for r in 0..ops.len() {
        let op = ops[r];
        let fused = match op {
            Op::Binary(b) => {
                let pair = if w >= 2 { Some((ops[w - 2], ops[w - 1])) } else { None };
                match pair {
                    Some((Op::Var(x), Op::Var(y))) => {
                        w -= 2;
                        Op::VarVar(b, x, y)
                    }
                    Some((Op::Var(x), Op::Const(c))) => {
                        w -= 2;
                        Op::VarConst(b, x, c)
                    }
                    Some((Op::Const(c), Op::Var(x))) => {
                        w -= 2;
                        Op::ConstVar(b, c, x)
                    }
                    // Only the rhs is a leaf: fold it into the operator,
                    // leaving the lhs value on the stack.
                    _ => match (w >= 1).then(|| ops[w - 1]) {
                        Some(Op::Var(x)) => {
                            w -= 1;
                            Op::TopVar(b, x)
                        }
                        Some(Op::Const(c)) => {
                            w -= 1;
                            Op::TopConst(b, c)
                        }
                        _ => op,
                    },
                }
            }
            Op::Unary(u) => match (w >= 1).then(|| ops[w - 1]) {
                Some(Op::Var(x)) => {
                    w -= 1;
                    Op::VarUnary(u, x)
                }
                _ => op,
            },
            other => other,
        };
        ops[w] = fused;
        w += 1;
    }
    ops.truncate(w);
}

/// A column-major view of a [`Dataset`], built once per fit so batch
/// evaluation can memcpy whole variable columns instead of gathering a
/// value per row.
///
/// Storage is one contiguous `Vec<f64>` with columns laid back-to-back
/// (structure of arrays): column `i` is `data[i*rows .. (i+1)*rows]`.
/// One allocation regardless of variable count, and successive column
/// reads in the fused interpreter stay within one slab.
#[derive(Debug, Clone, PartialEq)]
pub struct Columns {
    data: Vec<f64>,
    rows: usize,
    n_vars: usize,
    y: Vec<f64>,
}

impl Columns {
    /// Transposes a data set into columns.
    pub fn from_dataset(data: &Dataset) -> Columns {
        let n_vars = data.n_vars();
        let rows = data.len();
        let mut flat = Vec::with_capacity(n_vars * rows);
        for c in 0..n_vars {
            for (row, _) in data.iter() {
                flat.push(row[c]);
            }
        }
        Columns {
            data: flat,
            rows,
            n_vars,
            y: data.y().to_vec(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Variable column `i`, if in range.
    pub fn col(&self, i: usize) -> Option<&[f64]> {
        if i < self.n_vars {
            Some(&self.data[i * self.rows..(i + 1) * self.rows])
        } else {
            None
        }
    }

    /// The target column.
    pub fn y(&self) -> &[f64] {
        &self.y
    }
}

/// Reusable batch-evaluation buffers: a stack of row-length `f64` slabs.
///
/// One scratch per thread; [`BatchScratch::ensure`] grows it to the
/// demanded (stack depth × row count) shape and is a no-op once warm, so a
/// generation's scoring pays allocation only on its first individual.
#[derive(Debug, Default)]
pub struct BatchScratch {
    bufs: Vec<Vec<f64>>,
    rows: usize,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    fn ensure(&mut self, depth: usize, rows: usize) {
        if rows != self.rows {
            for buf in &mut self.bufs {
                buf.resize(rows, 0.0);
            }
            self.rows = rows;
        }
        while self.bufs.len() < depth {
            self.bufs.push(vec![0.0; rows]);
        }
    }
}

thread_local! {
    static THREAD_SCRATCH: std::cell::RefCell<BatchScratch> =
        std::cell::RefCell::new(BatchScratch::new());
}

/// Runs `f` with this thread's persistent [`BatchScratch`].
///
/// The pool's worker threads live for the whole process, so routing
/// scoring through here amortizes the scratch slabs across *every* pool
/// call a worker ever serves — not just across one call's chunks the way
/// a `par_map_init`-built scratch would. This is what keeps the scale
/// bench's `allocs_per_pass` flat as threads are added.
///
/// Must not be re-entered from inside `f` (the scratch is mutably
/// borrowed for the duration); evaluation code has no reason to.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut BatchScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_speed() -> Expr {
        // 64*X0 + 0.25*X1
        Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(64.0)),
                Box::new(Expr::Var(0)),
            )),
            Box::new(Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(0.25)),
                Box::new(Expr::Var(1)),
            )),
        )
    }

    #[test]
    fn compiles_to_postfix() {
        let c = CompiledExpr::compile_unfused(&engine_speed());
        assert_eq!(c.len(), 7);
        assert_eq!(c.max_stack(), 3);
        assert_eq!(
            c.ops()[0..3],
            [Op::Const(64.0), Op::Var(0), Op::Binary(BinaryOp::Mul)]
        );
    }

    #[test]
    fn fuses_leaf_adjacent_superinstructions() {
        // (64*X0) + (0.25*X1): both products fuse to ConstVar; the Add's
        // operands are fused pushes, so it stays a plain Binary.
        let c = CompiledExpr::compile(&engine_speed());
        assert_eq!(
            c.ops(),
            [
                Op::ConstVar(BinaryOp::Mul, 64.0, 0),
                Op::ConstVar(BinaryOp::Mul, 0.25, 1),
                Op::Binary(BinaryOp::Add),
            ]
        );
        assert_eq!(c.max_stack(), 2);

        // (X0 - X1) * X2: VarVar then a TopVar folding the leaf rhs.
        let e = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Binary(
                BinaryOp::Sub,
                Box::new(Expr::Var(0)),
                Box::new(Expr::Var(1)),
            )),
            Box::new(Expr::Var(2)),
        );
        let c = CompiledExpr::compile(&e);
        assert_eq!(
            c.ops(),
            [Op::VarVar(BinaryOp::Sub, 0, 1), Op::TopVar(BinaryOp::Mul, 2)]
        );
        assert_eq!(c.max_stack(), 1);

        // sqrt(X0) + 3: VarUnary then TopConst.
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Unary(UnaryOp::Sqrt, Box::new(Expr::Var(0)))),
            Box::new(Expr::Const(3.0)),
        );
        let c = CompiledExpr::compile(&e);
        assert_eq!(
            c.ops(),
            [Op::VarUnary(UnaryOp::Sqrt, 0), Op::TopConst(BinaryOp::Add, 3.0)]
        );
    }

    #[test]
    fn fused_and_unfused_programs_agree_bit_for_bit() {
        let data = Dataset::from_triples((0..40).map(|i| {
            let x0 = f64::from(i * 13 % 251);
            let x1 = f64::from(i % 17) - 8.0;
            ((x0, x1), x0 * 0.3 - x1)
        }))
        .unwrap();
        let cols = Columns::from_dataset(&data);
        let mut scratch_a = BatchScratch::new();
        let mut scratch_b = BatchScratch::new();
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..300 {
            let e = Expr::random_grow(&mut rng, 6, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-10.0, 10.0));
            let fused = CompiledExpr::compile(&e);
            let plain = CompiledExpr::compile_unfused(&e);
            assert!(fused.len() <= plain.len());
            assert!(fused.max_stack() <= plain.max_stack());
            for metric in [Metric::MeanAbsoluteError, Metric::MeanSquaredError, Metric::Rmse] {
                let a = fused.error_on(&cols, metric, &mut scratch_a);
                let b = plain.error_on(&cols, metric, &mut scratch_b);
                assert!(a.to_bits() == b.to_bits(), "{e} with {metric:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn thread_scratch_is_reused() {
        let data = Dataset::from_pairs((0..10).map(|i| (f64::from(i), f64::from(i)))).unwrap();
        let cols = Columns::from_dataset(&data);
        let c = CompiledExpr::compile(&Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Var(0)),
            Box::new(Expr::Var(0)),
        ));
        let a = with_thread_scratch(|s| c.error_on(&cols, Metric::MeanAbsoluteError, s));
        let b = with_thread_scratch(|s| c.error_on(&cols, Metric::MeanAbsoluteError, s));
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn scalar_eval_matches_tree() {
        let e = engine_speed();
        let c = CompiledExpr::compile(&e);
        let row = [26.0, 240.0];
        assert_eq!(c.eval(&row).to_bits(), e.eval(&row).to_bits());
    }

    #[test]
    fn out_of_range_variable_is_zero() {
        let c = CompiledExpr::compile(&Expr::Var(5));
        assert_eq!(c.eval(&[1.0]), 0.0);
    }

    #[test]
    fn random_trees_match_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut stack = Vec::new();
        for _ in 0..300 {
            let e = Expr::random_grow(&mut rng, 6, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-10.0, 10.0));
            let c = CompiledExpr::compile(&e);
            for row in [[0.0, 0.0], [1.5, -3.0], [1e6, -1e6], [0.3, 255.0]] {
                let a = e.eval(&row);
                let b = c.eval_with(&row, &mut stack);
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "{e} on {row:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn batch_error_matches_metric() {
        let data = Dataset::from_triples((0..50).map(|i| {
            let x0 = f64::from(100 + i * 3);
            let x1 = f64::from(5 + i % 9);
            ((x0, x1), x0 * x1 / 5.0)
        }))
        .unwrap();
        let cols = Columns::from_dataset(&data);
        let mut scratch = BatchScratch::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let e = Expr::random_grow(&mut rng, 5, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-10.0, 10.0));
            let c = CompiledExpr::compile(&e);
            for metric in [Metric::MeanAbsoluteError, Metric::MeanSquaredError, Metric::Rmse] {
                let want = metric.error(&e, &data);
                let got = c.error_on(&cols, metric, &mut scratch);
                assert!(
                    want.to_bits() == got.to_bits(),
                    "{e} with {metric:?}: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn batch_error_non_finite_is_infinity() {
        // X0*X0 overflows to infinity on a huge input.
        let e = Expr::Binary(BinaryOp::Mul, Box::new(Expr::Var(0)), Box::new(Expr::Var(0)));
        let data = Dataset::from_pairs([(1e300, 1.0), (2.0, 2.0)]).unwrap();
        let cols = Columns::from_dataset(&data);
        let c = CompiledExpr::compile(&e);
        assert_eq!(
            c.error_on(&cols, Metric::MeanAbsoluteError, &mut BatchScratch::new()),
            f64::INFINITY
        );
    }

    #[test]
    fn columns_transpose() {
        let data = Dataset::from_triples([((1.0, 2.0), 3.0), ((4.0, 5.0), 6.0)]).unwrap();
        let cols = Columns::from_dataset(&data);
        assert_eq!(cols.n_rows(), 2);
        assert_eq!(cols.n_vars(), 2);
        assert_eq!(cols.col(0).unwrap(), &[1.0, 4.0]);
        assert_eq!(cols.col(1).unwrap(), &[2.0, 5.0]);
        assert_eq!(cols.y(), &[3.0, 6.0]);
        assert!(cols.col(2).is_none());
    }
}
