//! Compiled expression evaluation: postfix bytecode over a value stack.
//!
//! [`Expr::eval`](crate::Expr::eval) walks a pointer tree — every node is a
//! separate heap allocation, so a population-scale fitness pass spends most
//! of its time in call overhead and cache misses. [`CompiledExpr`] flattens
//! the tree once into a postfix [`Op`] program stored in one contiguous
//! `Vec`, then evaluates it with a tight interpreter loop.
//!
//! Two evaluation modes are provided:
//!
//! * **scalar** ([`CompiledExpr::eval`] / [`CompiledExpr::eval_with`]) —
//!   one input row, one `f64` out, a reusable `Vec<f64>` stack;
//! * **batch** ([`CompiledExpr::error_on`]) — the whole [`Dataset`] at
//!   once over a column-major [`Columns`] view: each op processes every
//!   row before the next op runs, so the per-op dispatch cost is paid once
//!   per *program step* instead of once per *row × step*, and the inner
//!   loops are plain slice arithmetic the compiler can vectorize.
//!
//! Both modes apply exactly the same protected operators in exactly the
//! same order as the recursive walker, so results are **bit-identical** to
//! `Expr::eval` — including NaN/∞ propagation and the protected
//! division/log/inverse special cases. The GP engine relies on this: the
//! compiled fast path must not perturb a single fitness comparison.

use serde::{Deserialize, Serialize};

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::{Dataset, Metric};

/// One postfix instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Push a constant.
    Const(f64),
    /// Push input variable `i` (out-of-range pushes 0.0, matching
    /// [`Expr::eval`]).
    Var(u32),
    /// Pop one value, push `op(value)`.
    Unary(UnaryOp),
    /// Pop `b` then `a`, push `op(a, b)`.
    Binary(BinaryOp),
}

/// An [`Expr`] flattened to postfix bytecode.
///
/// Compile once with [`CompiledExpr::compile`], evaluate many times; the
/// program is immutable and `Sync`, so one compiled individual can be
/// scored from several threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledExpr {
    ops: Vec<Op>,
    max_stack: usize,
}

impl CompiledExpr {
    /// Flattens `expr` into a postfix program.
    pub fn compile(expr: &Expr) -> CompiledExpr {
        let mut ops = Vec::with_capacity(expr.size());
        flatten(expr, &mut ops);
        // The exact peak stack depth: simulate pushes/pops over the program.
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                Op::Const(_) | Op::Var(_) => depth += 1,
                Op::Unary(_) => {}
                Op::Binary(_) => depth -= 1,
            }
            max_stack = max_stack.max(depth);
        }
        CompiledExpr { ops, max_stack }
    }

    /// The program's instructions, in evaluation order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of instructions (equals the source tree's node count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty (never true for a compiled tree).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Peak value-stack depth the program needs.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Evaluates on one input row. Bit-identical to
    /// [`Expr::eval`](crate::Expr::eval) on the source tree.
    pub fn eval(&self, vars: &[f64]) -> f64 {
        let mut stack = Vec::with_capacity(self.max_stack);
        self.eval_with(vars, &mut stack)
    }

    /// Evaluates on one input row with a caller-provided stack, so repeated
    /// evaluations reuse one allocation. The stack is cleared on entry.
    pub fn eval_with(&self, vars: &[f64], stack: &mut Vec<f64>) -> f64 {
        stack.clear();
        stack.reserve(self.max_stack);
        for op in &self.ops {
            match *op {
                Op::Const(c) => stack.push(c),
                Op::Var(i) => stack.push(vars.get(i as usize).copied().unwrap_or(0.0)),
                Op::Unary(u) => {
                    let a = stack.pop().expect("unary operand");
                    stack.push(u.apply(a));
                }
                Op::Binary(b) => {
                    let rhs = stack.pop().expect("binary rhs");
                    let lhs = stack.pop().expect("binary lhs");
                    stack.push(b.apply(lhs, rhs));
                }
            }
        }
        stack.pop().expect("program leaves one value")
    }

    /// Computes `metric` over the whole data set in batch mode.
    ///
    /// Returns exactly what `metric.error(expr, data)` returns on the
    /// source tree: per-row predictions are bit-identical, the residual
    /// accumulation runs in the same row order, and any non-finite
    /// prediction yields `f64::INFINITY`.
    pub fn error_on(&self, cols: &Columns, metric: Metric, scratch: &mut BatchScratch) -> f64 {
        let n = cols.n_rows();
        scratch.ensure(self.max_stack, n);
        let mut sp = 0usize;
        for op in &self.ops {
            match *op {
                Op::Const(c) => {
                    scratch.bufs[sp].iter_mut().for_each(|v| *v = c);
                    sp += 1;
                }
                Op::Var(i) => {
                    match cols.col(i as usize) {
                        Some(col) => scratch.bufs[sp].copy_from_slice(col),
                        None => scratch.bufs[sp].iter_mut().for_each(|v| *v = 0.0),
                    }
                    sp += 1;
                }
                Op::Unary(u) => {
                    scratch.bufs[sp - 1].iter_mut().for_each(|v| *v = u.apply(*v));
                }
                Op::Binary(b) => {
                    let (lo, hi) = scratch.bufs.split_at_mut(sp - 1);
                    let lhs = lo.last_mut().expect("binary lhs buffer");
                    let rhs = &hi[0];
                    for (a, &r) in lhs.iter_mut().zip(rhs.iter()) {
                        *a = b.apply(*a, r);
                    }
                    sp -= 1;
                }
            }
        }
        debug_assert_eq!(sp, 1, "program leaves one value");
        metric_over_rows(metric, &scratch.bufs[0], cols.y())
    }
}

/// Accumulates `metric` over prediction/target rows exactly the way
/// [`Metric::error`] does on the recursive evaluator.
fn metric_over_rows(metric: Metric, preds: &[f64], targets: &[f64]) -> f64 {
    let mut acc = 0.0;
    let n = targets.len() as f64;
    for (&pred, &target) in preds.iter().zip(targets) {
        if !pred.is_finite() {
            return f64::INFINITY;
        }
        let residual = pred - target;
        acc += match metric {
            Metric::MeanAbsoluteError => residual.abs(),
            Metric::MeanSquaredError | Metric::Rmse => residual * residual,
        };
    }
    match metric {
        Metric::MeanAbsoluteError | Metric::MeanSquaredError => acc / n,
        Metric::Rmse => (acc / n).sqrt(),
    }
}

fn flatten(expr: &Expr, out: &mut Vec<Op>) {
    match expr {
        Expr::Const(c) => out.push(Op::Const(*c)),
        Expr::Var(i) => out.push(Op::Var(*i as u32)),
        Expr::Unary(op, a) => {
            flatten(a, out);
            out.push(Op::Unary(*op));
        }
        Expr::Binary(op, a, b) => {
            flatten(a, out);
            flatten(b, out);
            out.push(Op::Binary(*op));
        }
    }
}

/// A column-major view of a [`Dataset`], built once per fit so batch
/// evaluation can memcpy whole variable columns instead of gathering a
/// value per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Columns {
    cols: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Columns {
    /// Transposes a data set into columns.
    pub fn from_dataset(data: &Dataset) -> Columns {
        let n_vars = data.n_vars();
        let mut cols: Vec<Vec<f64>> = (0..n_vars)
            .map(|_| Vec::with_capacity(data.len()))
            .collect();
        for (row, _) in data.iter() {
            for (c, &v) in row.iter().enumerate() {
                cols[c].push(v);
            }
        }
        Columns {
            cols,
            y: data.y().to_vec(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.y.len()
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.cols.len()
    }

    /// Variable column `i`, if in range.
    pub fn col(&self, i: usize) -> Option<&[f64]> {
        self.cols.get(i).map(Vec::as_slice)
    }

    /// The target column.
    pub fn y(&self) -> &[f64] {
        &self.y
    }
}

/// Reusable batch-evaluation buffers: a stack of row-length `f64` slabs.
///
/// One scratch per thread; [`BatchScratch::ensure`] grows it to the
/// demanded (stack depth × row count) shape and is a no-op once warm, so a
/// generation's scoring pays allocation only on its first individual.
#[derive(Debug, Default)]
pub struct BatchScratch {
    bufs: Vec<Vec<f64>>,
    rows: usize,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    fn ensure(&mut self, depth: usize, rows: usize) {
        if rows != self.rows {
            for buf in &mut self.bufs {
                buf.resize(rows, 0.0);
            }
            self.rows = rows;
        }
        while self.bufs.len() < depth {
            self.bufs.push(vec![0.0; rows]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_speed() -> Expr {
        // 64*X0 + 0.25*X1
        Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(64.0)),
                Box::new(Expr::Var(0)),
            )),
            Box::new(Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(0.25)),
                Box::new(Expr::Var(1)),
            )),
        )
    }

    #[test]
    fn compiles_to_postfix() {
        let c = CompiledExpr::compile(&engine_speed());
        assert_eq!(c.len(), 7);
        assert_eq!(c.max_stack(), 3);
        assert_eq!(
            c.ops()[0..3],
            [Op::Const(64.0), Op::Var(0), Op::Binary(BinaryOp::Mul)]
        );
    }

    #[test]
    fn scalar_eval_matches_tree() {
        let e = engine_speed();
        let c = CompiledExpr::compile(&e);
        let row = [26.0, 240.0];
        assert_eq!(c.eval(&row).to_bits(), e.eval(&row).to_bits());
    }

    #[test]
    fn out_of_range_variable_is_zero() {
        let c = CompiledExpr::compile(&Expr::Var(5));
        assert_eq!(c.eval(&[1.0]), 0.0);
    }

    #[test]
    fn random_trees_match_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut stack = Vec::new();
        for _ in 0..300 {
            let e = Expr::random_grow(&mut rng, 6, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-10.0, 10.0));
            let c = CompiledExpr::compile(&e);
            for row in [[0.0, 0.0], [1.5, -3.0], [1e6, -1e6], [0.3, 255.0]] {
                let a = e.eval(&row);
                let b = c.eval_with(&row, &mut stack);
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "{e} on {row:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn batch_error_matches_metric() {
        let data = Dataset::from_triples((0..50).map(|i| {
            let x0 = f64::from(100 + i * 3);
            let x1 = f64::from(5 + i % 9);
            ((x0, x1), x0 * x1 / 5.0)
        }))
        .unwrap();
        let cols = Columns::from_dataset(&data);
        let mut scratch = BatchScratch::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let e = Expr::random_grow(&mut rng, 5, 2, &UnaryOp::ALL, &BinaryOp::ALL, (-10.0, 10.0));
            let c = CompiledExpr::compile(&e);
            for metric in [Metric::MeanAbsoluteError, Metric::MeanSquaredError, Metric::Rmse] {
                let want = metric.error(&e, &data);
                let got = c.error_on(&cols, metric, &mut scratch);
                assert!(
                    want.to_bits() == got.to_bits(),
                    "{e} with {metric:?}: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn batch_error_non_finite_is_infinity() {
        // X0*X0 overflows to infinity on a huge input.
        let e = Expr::Binary(BinaryOp::Mul, Box::new(Expr::Var(0)), Box::new(Expr::Var(0)));
        let data = Dataset::from_pairs([(1e300, 1.0), (2.0, 2.0)]).unwrap();
        let cols = Columns::from_dataset(&data);
        let c = CompiledExpr::compile(&e);
        assert_eq!(
            c.error_on(&cols, Metric::MeanAbsoluteError, &mut BatchScratch::new()),
            f64::INFINITY
        );
    }

    #[test]
    fn columns_transpose() {
        let data = Dataset::from_triples([((1.0, 2.0), 3.0), ((4.0, 5.0), 6.0)]).unwrap();
        let cols = Columns::from_dataset(&data);
        assert_eq!(cols.n_rows(), 2);
        assert_eq!(cols.n_vars(), 2);
        assert_eq!(cols.col(0).unwrap(), &[1.0, 4.0]);
        assert_eq!(cols.col(1).unwrap(), &[2.0, 5.0]);
        assert_eq!(cols.y(), &[3.0, 6.0]);
        assert!(cols.col(2).is_none());
    }
}
