//! The fitted model returned by the engine.

use serde::{Deserialize, Serialize};

use crate::scaling::ScalePlan;
use crate::{Expr, Metric};

/// A formula fitted by [`SymbolicRegressor`](crate::SymbolicRegressor),
/// together with the Tab. 2 scale plan needed to interpret it on raw data.
///
/// `expr` lives in the *scaled* space; [`predict`](FittedModel::predict)
/// undoes the scaling, so callers always work with raw message values and
/// raw display values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    /// The winning expression, simplified, in scaled space.
    pub expr: Expr,
    /// The scaling applied before fitting.
    pub plan: ScalePlan,
    /// Training error in *raw* units (mean absolute error).
    pub train_error: f64,
    /// The metric the engine optimized (in scaled space).
    pub metric: Metric,
    /// Generations the engine actually ran before stopping.
    pub generations: usize,
    /// Total number of expression evaluations performed.
    pub evaluations: u64,
}

impl FittedModel {
    /// Predicts the display value for a raw input row.
    pub fn predict(&self, raw_row: &[f64]) -> f64 {
        self.plan.eval_raw(&self.expr, raw_row)
    }

    /// Mean absolute error against a raw data set.
    pub fn error_on(&self, data: &crate::Dataset) -> f64 {
        let mut acc = 0.0;
        for (row, target) in data.iter() {
            acc += (self.predict(row) - target).abs();
        }
        acc / data.len() as f64
    }

    /// Checks numeric agreement with a reference function over a grid of
    /// the given per-variable ranges: the maximum relative error must stay
    /// below `tolerance` (with an absolute floor of `tolerance` for values
    /// near zero). This is how the evaluation decides an inferred formula
    /// is "correct" — the paper likewise accepts coefficient-close
    /// formulas (Tab. 5's `Y = 1.7X - 22` vs. `Y = 1.8X - 40` agree on the
    /// observed range).
    ///
    /// Grid points are snapped to integers: the inputs these formulas ever
    /// receive are raw message bytes, so equivalence is only meaningful on
    /// integer coordinates (a vestigial `tan` between two integers is not
    /// a defect the deployment can observe).
    pub fn agrees_with<F>(&self, reference: F, ranges: &[(f64, f64)], tolerance: f64) -> bool
    where
        F: Fn(&[f64]) -> f64,
    {
        const STEPS: usize = 12;
        let mut row = vec![0.0; ranges.len()];
        let mut indices = vec![0usize; ranges.len()];
        loop {
            for (k, &(lo, hi)) in ranges.iter().enumerate() {
                let t = indices[k] as f64 / (STEPS - 1) as f64;
                row[k] = (lo + (hi - lo) * t).round();
            }
            let want = reference(&row);
            let got = self.predict(&row);
            let scale = want.abs().max(1.0);
            if (got - want).abs() > tolerance * scale {
                return false;
            }
            // Advance the grid odometer.
            let mut k = 0;
            loop {
                if k == ranges.len() {
                    return true;
                }
                indices[k] += 1;
                if indices[k] < STEPS {
                    break;
                }
                indices[k] = 0;
                k += 1;
            }
        }
    }

    /// Renders the formula in raw-data terms, spelling out the scale
    /// factors the way the paper's Tab. 5 does (e.g. `Y/10 = f(X/100)`).
    pub fn describe(&self) -> String {
        if self.plan.is_identity() {
            format!("Y = {}", self.expr)
        } else {
            let mut expr_str = self.expr.to_string();
            for (i, f) in self.plan.x_factors.iter().enumerate() {
                let var = format!("X{i}");
                let replacement = if *f == 1.0 {
                    var.clone()
                } else {
                    format!("(X{i}*{f})")
                };
                expr_str = expr_str.replace(&var, &replacement);
            }
            if self.plan.y_factor == 1.0 {
                format!("Y = {expr_str}")
            } else {
                format!("Y*{} = {expr_str}", self.plan.y_factor)
            }
        }
    }
}

impl std::fmt::Display for FittedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryOp, Dataset};

    fn model_2x() -> FittedModel {
        FittedModel {
            expr: Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(2.0)),
                Box::new(Expr::Var(0)),
            ),
            plan: ScalePlan::identity(1),
            train_error: 0.0,
            metric: Metric::MeanAbsoluteError,
            generations: 0,
            evaluations: 0,
        }
    }

    #[test]
    fn predict_and_error() {
        let m = model_2x();
        assert_eq!(m.predict(&[21.0]), 42.0);
        let d = Dataset::from_pairs([(1.0, 2.0), (2.0, 5.0)]).unwrap();
        assert!((m.error_on(&d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn agreement_accepts_close_and_rejects_far() {
        let m = model_2x();
        assert!(m.agrees_with(|x| 2.0 * x[0], &[(0.0, 100.0)], 0.02));
        assert!(m.agrees_with(|x| 2.01 * x[0], &[(0.0, 100.0)], 0.02));
        assert!(!m.agrees_with(|x| 3.0 * x[0], &[(0.0, 100.0)], 0.02));
    }

    #[test]
    fn paper_tab5_coolant_equivalence_on_observed_range() {
        // Ground truth Y = 1.8X - 40 vs. recovered Y = 1.7X - 22 agree on
        // the observed X range 0xA0..0xC0 (paper accepts this as correct).
        let recovered = FittedModel {
            expr: Expr::Binary(
                BinaryOp::Sub,
                Box::new(Expr::Binary(
                    BinaryOp::Mul,
                    Box::new(Expr::Const(1.7)),
                    Box::new(Expr::Var(0)),
                )),
                Box::new(Expr::Const(22.0)),
            ),
            plan: ScalePlan::identity(1),
            train_error: 0.0,
            metric: Metric::MeanAbsoluteError,
            generations: 0,
            evaluations: 0,
        };
        let truth = |x: &[f64]| 1.8 * x[0] - 40.0;
        assert!(recovered.agrees_with(truth, &[(160.0, 192.0)], 0.03));
        // …but not on the full byte range.
        assert!(!recovered.agrees_with(truth, &[(0.0, 255.0)], 0.03));
    }

    #[test]
    fn describe_spells_out_scaling() {
        let m = FittedModel {
            expr: Expr::Binary(
                BinaryOp::Mul,
                Box::new(Expr::Const(2.0)),
                Box::new(Expr::Var(0)),
            ),
            plan: ScalePlan {
                x_factors: vec![0.01],
                y_factor: 0.001,
            },
            train_error: 0.0,
            metric: Metric::MeanAbsoluteError,
            generations: 0,
            evaluations: 0,
        };
        assert_eq!(m.describe(), "Y*0.001 = (2 * (X0*0.01))");
        assert_eq!(model_2x().describe(), "Y = (2 * X0)");
    }
}
