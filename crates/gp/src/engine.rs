//! The genetic-programming engine: initialization, selection, variation,
//! and the paper's two stopping criteria.
//!
//! # Performance and determinism
//!
//! Fitness scoring is the engine's hot loop (population × generations ×
//! rows). Two optimizations keep it fast without perturbing a single
//! result:
//!
//! * every individual is flattened to a [`CompiledExpr`] and scored with
//!   the batch evaluator over a column-major [`Columns`] view — both
//!   bit-identical to the recursive walker;
//! * each generation is bred *sequentially* (all RNG draws happen here,
//!   selecting from the previous, fully-scored generation) and then scored
//!   *in parallel* on the [`dpr_par`] pool in index order. Individuals
//!   carried over unchanged — the elite, reproduction children, and
//!   depth-limit fallbacks — reuse their parent's cached score instead of
//!   being re-evaluated.
//!
//! Because scoring is pure and its outputs are reassembled in input order,
//! a run with `DPR_THREADS=8` produces exactly the same [`FittedModel`] as
//! a single-threaded run.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::compile::{BatchScratch, Columns, CompiledExpr};
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::model::FittedModel;
use crate::scaling::ScalePlan;
use crate::{Dataset, Metric};

/// The environment variable controlling batched scoring dispatch:
/// a number is the minimum count of distinct pending programs that
/// justifies waking the pool (`0` always uses the pool, the legacy
/// behavior); `auto` (or unset) adapts the threshold to the measured
/// spin-up cost of past scoring calls.
pub const BATCH_ENV: &str = "DPR_GP_BATCH";

/// The `dpr_prof` label scoring calls run under; the adaptive batch
/// threshold reads the same label's aggregate back.
const SCORE_LABEL: &str = "gp.score";

/// Resolves the minimum batch size for pool dispatch. Read per scoring
/// call, like `DPR_THREADS`, so it can be retuned between fits.
fn batch_min() -> usize {
    match std::env::var(BATCH_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => adaptive_batch_min(),
        },
        Err(_) => adaptive_batch_min(),
    }
}

/// The adaptive threshold: wake the pool only when the predicted parallel
/// saving clears twice the scoring label's measured spin-up cost. The
/// prediction itself lives in [`dpr_prof::break_even_items`], fed by the
/// per-call profiles the pool records under [`SCORE_LABEL`].
fn adaptive_batch_min() -> usize {
    dpr_prof::break_even_items(SCORE_LABEL, dpr_par::threads())
}

/// Which functions the engine may use as tree nodes.
///
/// [`FunctionSet::full`] is the paper's 14-function set;
/// [`FunctionSet::arithmetic`] restricts to `+ - * /` for ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSet {
    /// Allowed unary functions.
    pub unary: Vec<UnaryOp>,
    /// Allowed binary functions.
    pub binary: Vec<BinaryOp>,
}

impl FunctionSet {
    /// All 14 functions (paper §6).
    pub fn full() -> Self {
        FunctionSet {
            unary: UnaryOp::ALL.to_vec(),
            binary: BinaryOp::ALL.to_vec(),
        }
    }

    /// Arithmetic only: `+ - * /`.
    pub fn arithmetic() -> Self {
        FunctionSet {
            unary: Vec::new(),
            binary: vec![BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div],
        }
    }
}

impl Default for FunctionSet {
    fn default() -> Self {
        Self::full()
    }
}

/// Engine configuration.
///
/// [`GpConfig::paper`] matches the settings reported in §4.3: a maximum of
/// 30 generations with 1000 formulas per generation, mean-absolute-error
/// fitness, and both stopping criteria. [`GpConfig::fast`] is a smaller
/// budget suitable for unit tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Individuals per generation (paper: 1000).
    pub population_size: usize,
    /// Stopping criterion (i): maximum number of generations (paper: 30).
    pub max_generations: usize,
    /// Stopping criterion (ii): stop once the best (scaled-space) error
    /// falls to or below this threshold.
    pub stop_threshold: f64,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Probability that a child is produced by subtree crossover.
    pub crossover_prob: f64,
    /// Probability of subtree mutation.
    pub subtree_mutation_prob: f64,
    /// Probability of hoist mutation.
    pub hoist_mutation_prob: f64,
    /// Probability of point mutation (remaining mass is reproduction).
    pub point_mutation_prob: f64,
    /// Hard depth limit for any individual.
    pub max_depth: usize,
    /// Initial tree depths for ramped half-and-half, inclusive.
    pub init_depth: (usize, usize),
    /// Range of ephemeral random constants.
    pub const_range: (f64, f64),
    /// Fitness metric (paper: mean absolute error).
    pub metric: Metric,
    /// Parsimony coefficient: size penalty added to selection fitness.
    pub parsimony: f64,
    /// Whether to apply the Tab. 2 scaling (ablation toggle).
    pub scale: bool,
    /// Whether to seed a fraction of the initial population with affine /
    /// product templates (informed initialization; ablation toggle).
    pub seeded_init: bool,
    /// Hill-climbing iterations polishing the winner's constants.
    pub polish_iters: usize,
    /// Whether to run the closed-form residual refit on the winner
    /// (ablation toggle; see `refit` module docs).
    pub refit: bool,
    /// Allowed functions.
    pub functions: FunctionSet,
    /// RNG seed — every run is deterministic given the seed.
    pub seed: u64,
}

impl GpConfig {
    /// The paper's configuration: 1000 formulas × up to 30 generations.
    pub fn paper(seed: u64) -> Self {
        GpConfig {
            population_size: 1000,
            max_generations: 30,
            stop_threshold: 0.005,
            tournament_size: 7,
            crossover_prob: 0.65,
            subtree_mutation_prob: 0.12,
            hoist_mutation_prob: 0.05,
            point_mutation_prob: 0.12,
            max_depth: 9,
            init_depth: (2, 5),
            const_range: (-10.0, 10.0),
            metric: Metric::MeanAbsoluteError,
            parsimony: 0.001,
            scale: true,
            seeded_init: true,
            polish_iters: 2000,
            refit: true,
            functions: FunctionSet::full(),
            seed,
        }
    }

    /// A reduced budget for unit tests and quick experiments.
    pub fn fast(seed: u64) -> Self {
        GpConfig {
            population_size: 256,
            max_generations: 20,
            polish_iters: 800,
            ..GpConfig::paper(seed)
        }
    }
}

/// Progress record of one fitting run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpReport {
    /// Best (scaled-space, unpenalized) error after each generation.
    pub best_error_history: Vec<f64>,
    /// Which stopping criterion fired: `true` if the fitness threshold
    /// stopped the run, `false` if the generation budget ran out.
    pub stopped_by_threshold: bool,
}

struct Individual {
    expr: Expr,
    /// Raw metric error in scaled space (no parsimony).
    error: f64,
    /// Selection fitness: error plus parsimony penalty.
    fitness: f64,
}

/// How one individual of one generation was produced — the per-child
/// breeding record the evidence ledger's lineage walk-back consumes.
/// Only collected while an evidence capture is active; collection
/// consumes no RNG draws, so recorded and unrecorded runs are
/// bit-identical.
struct BreedRec {
    op: &'static str,
    /// Parent index in the previous generation (`None` for generation 0).
    parent: Option<u32>,
    /// Crossover donor index in the previous generation.
    donor: Option<u32>,
    parent_error: Option<f64>,
}

impl BreedRec {
    fn init(op: &'static str) -> Self {
        BreedRec {
            op,
            parent: None,
            donor: None,
            parent_error: None,
        }
    }
}

/// The symbolic-regression engine.
///
/// Owns its RNG; repeated [`fit`](Self::fit) calls continue the stream, so
/// construct a fresh regressor (same seed) to reproduce a run exactly.
#[derive(Debug)]
pub struct SymbolicRegressor {
    config: GpConfig,
    rng: StdRng,
    last_report: Option<GpReport>,
}

impl SymbolicRegressor {
    /// Creates an engine from a configuration.
    pub fn new(config: GpConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SymbolicRegressor {
            config,
            rng,
            last_report: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpConfig {
        &self.config
    }

    /// The report of the most recent [`fit`](Self::fit) call.
    pub fn last_report(&self) -> Option<&GpReport> {
        self.last_report.as_ref()
    }

    /// Fits a formula to the data set and returns the winning model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has a zero population or tournament
    /// size.
    pub fn fit(&mut self, data: &Dataset) -> FittedModel {
        assert!(self.config.population_size > 0, "population must be positive");
        assert!(self.config.tournament_size > 0, "tournament must be positive");
        let _span = dpr_telemetry::Span::enter("gp.fit");
        dpr_telemetry::counter("gp.fits").inc(1);

        let plan = if self.config.scale {
            ScalePlan::for_dataset(data)
        } else {
            ScalePlan::identity(data.n_vars())
        };
        let scaled = plan.apply(data);
        let cols = Columns::from_dataset(&scaled);
        let started = Instant::now();

        // Evidence lineage is recorded only when a capture is active.
        // Recording consumes no RNG draws, so captured and bare runs
        // produce bit-identical models.
        let lineage_on = dpr_evidence::active();
        let mut breeding: Vec<Vec<BreedRec>> = Vec::new();
        let mut cache_hits: u64 = 0;

        let mut evaluations: u64 = 0;
        let (mut population, init_recs) =
            self.init_population(&cols, &mut evaluations, &mut cache_hits, lineage_on);
        if lineage_on {
            breeding.push(init_recs);
        }
        let mut history = Vec::with_capacity(self.config.max_generations);
        let mut stopped_by_threshold = false;
        let mut generations = 0;

        for _gen in 0..self.config.max_generations {
            generations += 1;
            let best = population
                .iter()
                .map(|i| i.error)
                .fold(f64::INFINITY, f64::min);
            history.push(best);
            if best <= self.config.stop_threshold {
                stopped_by_threshold = true;
                break;
            }
            let (next, recs) = self.next_generation(
                population,
                &cols,
                &mut evaluations,
                &mut cache_hits,
                lineage_on,
            );
            population = next;
            if lineage_on {
                breeding.push(recs);
            }
        }
        // Record the final state's best as well.
        let best_idx = population
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.error.total_cmp(&b.error))
            .map(|(i, _)| i)
            .expect("population is non-empty");
        // Ancestry walk-back: from the winner's index in the final
        // generation, follow parent indices to generation 0. The result
        // reads oldest-first.
        let mut steps = Vec::new();
        if lineage_on {
            let mut idx = best_idx;
            for (g, recs) in breeding.iter().enumerate().rev() {
                let rec = &recs[idx];
                steps.push(dpr_evidence::LineageStep {
                    generation: g as u32,
                    op: rec.op.to_string(),
                    parent: rec.parent,
                    donor: rec.donor,
                    parent_error: rec.parent_error,
                });
                match rec.parent {
                    Some(p) => idx = p as usize,
                    None => break,
                }
            }
            steps.reverse();
        }
        let mut best = population.swap_remove(best_idx);
        if let Some(&last) = history.last() {
            if best.error < last {
                history.push(best.error);
            }
        }
        let post_gen = breeding.len() as u32;
        let post_step = |steps: &mut Vec<dpr_evidence::LineageStep>,
                             op: &str,
                             pre_error: f64| {
            steps.push(dpr_evidence::LineageStep {
                generation: post_gen,
                op: op.to_string(),
                parent: None,
                donor: None,
                parent_error: dpr_evidence::finite(pre_error),
            });
        };

        // Constant polishing: hill-climb the winner's numeric leaves.
        let mut scratch = BatchScratch::new();
        let pre_polish = best.error;
        self.polish(&mut best, &cols, &mut scratch, &mut evaluations);
        if lineage_on && best.error < pre_polish {
            post_step(&mut steps, "polish", pre_polish);
        }

        // Closed-form residual correction for missed low-order terms, and
        // a pure low-order candidate raced against the GP winner.
        if self.config.refit {
            dpr_telemetry::counter("gp.refit_attempts").inc(1);
            if let Some(corrected) = crate::refit::residual_refit(&best.expr, &scaled, self.config.metric) {
                let (error, fitness) = self.evaluate(&corrected, &cols, &mut scratch, &mut evaluations);
                if error < best.error {
                    if lineage_on {
                        post_step(&mut steps, "refit-residual", best.error);
                    }
                    best.expr = corrected;
                    best.error = error;
                    best.fitness = fitness;
                    dpr_telemetry::counter("gp.refit_applied").inc(1);
                }
            }
            if let Some(candidate) = crate::refit::loworder_candidate(&scaled) {
                let (error, fitness) = self.evaluate(&candidate, &cols, &mut scratch, &mut evaluations);
                if error < best.error {
                    if lineage_on {
                        post_step(&mut steps, "refit-loworder", best.error);
                    }
                    best.expr = candidate;
                    best.error = error;
                    best.fitness = fitness;
                    dpr_telemetry::counter("gp.refit_applied").inc(1);
                }
            }
            // Polish again: grafted coefficients interact with the original
            // constants.
            let pre_polish = best.error;
            self.polish(&mut best, &cols, &mut scratch, &mut evaluations);
            if lineage_on && best.error < pre_polish {
                post_step(&mut steps, "polish", pre_polish);
            }
        }

        let expr = best.expr.simplify();
        let model = FittedModel {
            expr,
            plan,
            train_error: 0.0,
            metric: self.config.metric,
            generations,
            evaluations,
        };
        let train_error = model.error_on(data);
        dpr_telemetry::counter("gp.generations").inc(generations as u64);
        dpr_telemetry::counter("gp.evaluations").inc(evaluations);
        // Throughput gauge: row evaluations per second for this fit. The
        // gauge (not a counter) keeps the latest rate visible in traces.
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            dpr_telemetry::gauge("gp.evals_per_sec").set((evaluations as f64 / elapsed) as i64);
        }
        if stopped_by_threshold {
            dpr_telemetry::counter("gp.threshold_stops").inc(1);
        }
        // The best-fitness trajectory: one sample per generation, so the
        // histogram shows how fast the population converged.
        let trajectory = dpr_telemetry::histogram("gp.best_error_trajectory");
        for &err in &history {
            if err.is_finite() {
                trajectory.record(err);
            }
        }
        if lineage_on {
            dpr_evidence::record(dpr_evidence::Event::Lineage(dpr_evidence::Lineage {
                subject: dpr_evidence::subject().unwrap_or_default(),
                steps,
                best_error_history: history.iter().map(|&e| dpr_evidence::finite(e)).collect(),
                final_error: dpr_evidence::finite(train_error),
                cache_hits,
                evaluations,
                generations: generations as u32,
                stopped_by_threshold,
                expression: model.expr.to_string(),
            }));
        }
        self.last_report = Some(GpReport {
            best_error_history: history,
            stopped_by_threshold,
        });
        FittedModel {
            train_error,
            ..model
        }
    }

    /// Scores one expression: compile, batch-evaluate, apply the parsimony
    /// penalty. Used by the sequential tail (polish, refit) — population
    /// scoring goes through [`Self::score_pending`].
    fn evaluate(
        &self,
        expr: &Expr,
        cols: &Columns,
        scratch: &mut BatchScratch,
        evaluations: &mut u64,
    ) -> (f64, f64) {
        *evaluations += cols.n_rows() as u64;
        let error = CompiledExpr::compile(expr).error_on(cols, self.config.metric, scratch);
        let fitness = if error.is_finite() {
            error + self.config.parsimony * expr.size() as f64
        } else {
            f64::INFINITY
        };
        (error, fitness)
    }

    /// Turns bred expressions into scored individuals.
    ///
    /// Entries carrying a cached `(error, fitness)` — individuals the
    /// breeding phase copied over unchanged — are not re-scored. The rest
    /// are compiled once on the breeding thread, deduplicated by compiled
    /// program structure (`DPR_GP_DEDUP`, on by default), and the distinct
    /// programs are dispatched through the [`dpr_par`] pool — or drained
    /// inline when the batch is too small to amortize pool wake-up
    /// (`DPR_GP_BATCH`; the adaptive default sizes the threshold from the
    /// scoring label's measured spin-up cost in [`dpr_prof`]).
    ///
    /// Every decision along that path is timing-blind where it must be:
    /// scoring is pure, results come back in index order, a duplicate
    /// reuses the bit-identical error its representative computed, and
    /// the inline/pool split changes scheduling only — so the outcome is
    /// bit-identical for any `DPR_THREADS`/`DPR_GP_DEDUP`/`DPR_GP_BATCH`
    /// combination. `evaluations` stays the *logical* count (pending ×
    /// rows) regardless of dedup, so reported work is comparable across
    /// configurations; the physical saving shows up in `gp.dedup_hits`.
    fn score_pending(
        &self,
        planned: Vec<(Expr, Option<(f64, f64)>)>,
        cols: &Columns,
        evaluations: &mut u64,
        cache_hits: &mut u64,
    ) -> Vec<Individual> {
        let pending: Vec<usize> = planned
            .iter()
            .enumerate()
            .filter(|(_, (_, cached))| cached.is_none())
            .map(|(i, _)| i)
            .collect();
        *evaluations += (pending.len() * cols.n_rows()) as u64;
        let hits = (planned.len() - pending.len()) as u64;
        if hits > 0 {
            dpr_telemetry::counter("gp.fitness_cache_hits").inc(hits);
            *cache_hits += hits;
        }

        // Compile on the breeding thread: dedup needs the programs
        // anyway, compilation is ~1% of scoring cost, and it keeps the
        // workers purely arithmetic.
        let programs: Vec<CompiledExpr> = pending
            .iter()
            .map(|&i| CompiledExpr::compile(&planned[i].0))
            .collect();
        let groups = if crate::dedup::enabled() {
            crate::dedup::group(&programs)
        } else {
            crate::dedup::DedupGroups::identity(programs.len())
        };
        if !programs.is_empty() {
            dpr_telemetry::counter("gp.dedup_distinct").inc(groups.reps.len() as u64);
            if groups.hits() > 0 {
                dpr_telemetry::counter("gp.dedup_hits").inc(groups.hits());
            }
        }
        let distinct: Vec<&CompiledExpr> = groups.reps.iter().map(|&r| &programs[r]).collect();

        let metric = self.config.metric;
        let min_items = batch_min();
        // Labelled so the profile store attributes the pool call (and its
        // per-worker busy/idle/alloc accounting) to GP fitness scoring —
        // and so the adaptive batch threshold can read the label back.
        let errors: Vec<f64> = dpr_prof::with_label(SCORE_LABEL, || {
            dpr_par::Pool::from_env().par_map_batched(&distinct, min_items, |program| {
                crate::compile::with_thread_scratch(|scratch| {
                    program.error_on(cols, metric, scratch)
                })
            })
        });

        // `pending` is in index order, so fresh scores interleave back
        // into the cached ones by consuming the assignments in sequence.
        let parsimony = self.config.parsimony;
        let mut next_pending = 0usize;
        planned
            .into_iter()
            .map(|(expr, cached)| {
                let (error, fitness) = cached.unwrap_or_else(|| {
                    let error = errors[groups.assign[next_pending] as usize];
                    next_pending += 1;
                    let fitness = if error.is_finite() {
                        error + parsimony * expr.size() as f64
                    } else {
                        f64::INFINITY
                    };
                    (error, fitness)
                });
                Individual { expr, error, fitness }
            })
            .collect()
    }

    fn init_population(
        &mut self,
        cols: &Columns,
        evaluations: &mut u64,
        cache_hits: &mut u64,
        lineage: bool,
    ) -> (Vec<Individual>, Vec<BreedRec>) {
        let n = self.config.population_size;
        let n_vars = cols.n_vars();
        let mut exprs = Vec::with_capacity(n);
        let mut recs = Vec::new();

        // Informed template seeding (~6% of the population): affine and
        // product skeletons with random constants. These do not contain
        // the answer — GP still has to tune every coefficient — but they
        // mirror gplearn's practical bias toward low-order structure.
        if self.config.seeded_init {
            let templates = n / 16;
            for _ in 0..templates {
                let expr = self.random_template(n_vars);
                exprs.push(expr);
                if lineage {
                    recs.push(BreedRec::init("seed-template"));
                }
            }
        }

        // Ramped half-and-half for the rest. Generation happens first (all
        // RNG draws, sequential); scoring follows in one parallel pass.
        let (lo, hi) = self.config.init_depth;
        let unary = self.config.functions.unary.clone();
        let binary = self.config.functions.binary.clone();
        let mut depth = lo;
        while exprs.len() < n {
            let full = exprs.len() % 2 == 0;
            let expr = if full {
                Expr::random_full(
                    &mut self.rng,
                    depth,
                    n_vars,
                    &unary,
                    &binary,
                    self.config.const_range,
                )
            } else {
                Expr::random_grow(
                    &mut self.rng,
                    depth,
                    n_vars,
                    &unary,
                    &binary,
                    self.config.const_range,
                )
            };
            exprs.push(expr);
            if lineage {
                recs.push(BreedRec::init(if full { "init-full" } else { "init-grow" }));
            }
            depth = if depth >= hi { lo } else { depth + 1 };
        }
        let pop = self.score_pending(
            exprs.into_iter().map(|e| (e, None)).collect(),
            cols,
            evaluations,
            cache_hits,
        );
        (pop, recs)
    }

    /// A random low-order template: `c0*Xi + c1`, `c0*Xi + c1*Xj + c2`, or
    /// `c0*Xi*Xj + c1`.
    fn random_template(&mut self, n_vars: usize) -> Expr {
        let c = |rng: &mut StdRng| {
            Expr::Const((rng.gen_range(-10.0..=10.0f64) * 1000.0).round() / 1000.0)
        };
        let var = |rng: &mut StdRng| Expr::Var(rng.gen_range(0..n_vars));
        let mul = |a: Expr, b: Expr| Expr::Binary(BinaryOp::Mul, Box::new(a), Box::new(b));
        let add = |a: Expr, b: Expr| Expr::Binary(BinaryOp::Add, Box::new(a), Box::new(b));
        match self.rng.gen_range(0..3) {
            0 => {
                let t = mul(c(&mut self.rng), var(&mut self.rng));
                add(t, c(&mut self.rng))
            }
            1 if n_vars > 1 => {
                let t0 = mul(c(&mut self.rng), Expr::Var(0));
                let t1 = mul(c(&mut self.rng), Expr::Var(1));
                add(add(t0, t1), c(&mut self.rng))
            }
            _ if n_vars > 1 => {
                let t = mul(c(&mut self.rng), mul(Expr::Var(0), Expr::Var(1)));
                add(t, c(&mut self.rng))
            }
            _ => {
                let t = mul(c(&mut self.rng), var(&mut self.rng));
                add(t, c(&mut self.rng))
            }
        }
    }

    /// Tournament selection, returning the winner's *index* so breeding can
    /// record parent identities for the evidence ledger. Draw order and the
    /// tie-breaking rule (an earlier draw wins ties) are unchanged from the
    /// original reference-returning implementation.
    fn tournament(&mut self, population: &[Individual]) -> usize {
        let mut best: Option<usize> = None;
        for _ in 0..self.config.tournament_size {
            let candidate = self.rng.gen_range(0..population.len());
            best = match best {
                Some(b) if population[b].fitness <= population[candidate].fitness => Some(b),
                _ => Some(candidate),
            };
        }
        best.expect("tournament size is positive")
    }

    /// Breeds and scores the next generation.
    ///
    /// The breeding loop runs sequentially and consumes the RNG stream in
    /// exactly the order the fully-sequential engine did: selection draws
    /// only depend on the *previous* generation's (already known) scores,
    /// never on a sibling's. Scoring of the bred children then happens in
    /// one deterministic parallel pass via [`Self::score_pending`].
    ///
    /// Fitness-cache rule: a score is carried over only when the child is
    /// byte-for-byte the parent expression — the elite copy, a
    /// reproduction child, or a depth-limit fallback. Any variation
    /// operator invalidates the cache unconditionally; the structural
    /// dedup pass in [`Self::score_pending`] then catches variation
    /// children that came out identical anyway (and identical siblings)
    /// at the compiled-program level, where the comparison is a cheap
    /// slice walk instead of a tree traversal.
    fn next_generation(
        &mut self,
        population: Vec<Individual>,
        cols: &Columns,
        evaluations: &mut u64,
        cache_hits: &mut u64,
        lineage: bool,
    ) -> (Vec<Individual>, Vec<BreedRec>) {
        let n = population.len();
        let mut planned: Vec<(Expr, Option<(f64, f64)>)> = Vec::with_capacity(n);
        let mut recs = Vec::new();

        // Elitism: the best individual survives unchanged, score and all.
        let elite_idx = population
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.error.total_cmp(&b.error))
            .map(|(i, _)| i)
            .expect("population is non-empty");
        planned.push((
            population[elite_idx].expr.clone(),
            Some((population[elite_idx].error, population[elite_idx].fitness)),
        ));
        if lineage {
            recs.push(BreedRec {
                op: "elite",
                parent: Some(elite_idx as u32),
                donor: None,
                parent_error: dpr_evidence::finite(population[elite_idx].error),
            });
        }

        let (p_cx, p_sub, p_hoist, p_point) = (
            self.config.crossover_prob,
            self.config.subtree_mutation_prob,
            self.config.hoist_mutation_prob,
            self.config.point_mutation_prob,
        );
        let max_depth = self.config.max_depth;
        let n_vars = cols.n_vars();
        while planned.len() < n {
            let roll: f64 = self.rng.gen();
            let picked_idx = self.tournament(&population);
            let picked = &population[picked_idx];
            let parent_score = (picked.error, picked.fitness);
            let parent = picked.expr.clone();
            let (child, cached, op, donor_idx) = if roll < p_cx {
                let donor_idx = self.tournament(&population);
                let donor = population[donor_idx].expr.clone();
                (self.crossover(&parent, &donor), None, "crossover", Some(donor_idx))
            } else if roll < p_cx + p_sub {
                (self.subtree_mutation(&parent, n_vars), None, "subtree-mutation", None)
            } else if roll < p_cx + p_sub + p_hoist {
                (self.hoist_mutation(&parent), None, "hoist-mutation", None)
            } else if roll < p_cx + p_sub + p_hoist + p_point {
                (self.point_mutation(&parent, n_vars), None, "point-mutation", None)
            } else {
                // Reproduction: the child IS the parent — reuse its score.
                (parent.clone(), Some(parent_score), "reproduction", None)
            };
            let (child, cached, op) = if child.depth() > max_depth {
                (parent, Some(parent_score), "depth-fallback")
            } else {
                (child, cached, op)
            };
            planned.push((child, cached));
            if lineage {
                recs.push(BreedRec {
                    op,
                    parent: Some(picked_idx as u32),
                    donor: donor_idx.map(|d| d as u32),
                    parent_error: dpr_evidence::finite(parent_score.0),
                });
            }
        }
        let pop = self.score_pending(planned, cols, evaluations, cache_hits);
        (pop, recs)
    }

    /// Subtree crossover: replace a random node of `recipient` with a
    /// random subtree of `donor`.
    fn crossover(&mut self, recipient: &Expr, donor: &Expr) -> Expr {
        let mut child = recipient.clone();
        let at = self.rng.gen_range(0..child.size());
        let from = self.rng.gen_range(0..donor.size());
        *child.node_mut(at) = donor.node(from).clone();
        child
    }

    /// Subtree mutation: replace a random node with a fresh grown tree.
    fn subtree_mutation(&mut self, parent: &Expr, n_vars: usize) -> Expr {
        let mut child = parent.clone();
        let at = self.rng.gen_range(0..child.size());
        let unary = self.config.functions.unary.clone();
        let binary = self.config.functions.binary.clone();
        let fresh = Expr::random_grow(
            &mut self.rng,
            3,
            n_vars,
            &unary,
            &binary,
            self.config.const_range,
        );
        *child.node_mut(at) = fresh;
        child
    }

    /// Hoist mutation: replace a random node with one of its own subtrees,
    /// shrinking the individual (bloat control).
    fn hoist_mutation(&mut self, parent: &Expr) -> Expr {
        let mut child = parent.clone();
        let at = self.rng.gen_range(0..child.size());
        let node = child.node(at).clone();
        let inner_at = self.rng.gen_range(0..node.size());
        let hoisted = node.node(inner_at).clone();
        *child.node_mut(at) = hoisted;
        child
    }

    /// Point mutation: independently perturb constants and swap operators
    /// or variables at ~15% of nodes.
    fn point_mutation(&mut self, parent: &Expr, n_vars: usize) -> Expr {
        let mut child = parent.clone();
        let size = child.size();
        let unary = self.config.functions.unary.clone();
        let binary = self.config.functions.binary.clone();
        for idx in 0..size {
            if !self.rng.gen_bool(0.15) {
                continue;
            }
            let node = child.node_mut(idx);
            match node {
                Expr::Const(v) => {
                    // Mix multiplicative and additive perturbations so both
                    // large and near-zero constants can move.
                    if self.rng.gen_bool(0.5) {
                        *v *= 1.0 + self.rng.gen_range(-0.2..0.2);
                    } else {
                        *v += self.rng.gen_range(-0.5..0.5);
                    }
                }
                Expr::Var(i) => {
                    if n_vars > 1 {
                        *i = self.rng.gen_range(0..n_vars);
                    }
                }
                Expr::Unary(op, _) => {
                    if let Some(new_op) = unary.choose(&mut self.rng) {
                        *op = *new_op;
                    }
                }
                Expr::Binary(op, _, _) => {
                    if let Some(new_op) = binary.choose(&mut self.rng) {
                        *op = *new_op;
                    }
                }
            }
        }
        child
    }

    /// Hill-climb the winner's constants: propose a perturbation of one
    /// constant at a time and keep it if the (scaled-space) error improves.
    fn polish(
        &mut self,
        best: &mut Individual,
        cols: &Columns,
        scratch: &mut BatchScratch,
        evaluations: &mut u64,
    ) {
        if self.config.polish_iters == 0 {
            return;
        }
        let n_consts = best.expr.clone().constants_mut().len();
        if n_consts == 0 {
            return;
        }
        for iter in 0..self.config.polish_iters {
            // Annealed step size: start coarse, end fine.
            let t = iter as f64 / self.config.polish_iters as f64;
            let sigma = 0.25 * (1.0 - t) + 0.002;
            let mut candidate = best.expr.clone();
            {
                let mut consts = candidate.constants_mut();
                let which = self.rng.gen_range(0..consts.len());
                let c = &mut *consts[which];
                if self.rng.gen_bool(0.5) {
                    *c *= 1.0 + self.rng.gen_range(-sigma..sigma);
                } else {
                    *c += self.rng.gen_range(-sigma..sigma);
                }
            }
            let (error, fitness) = self.evaluate(&candidate, cols, scratch, evaluations);
            if error < best.error {
                best.expr = candidate;
                best.error = error;
                best.fitness = fitness;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(config: GpConfig, data: &Dataset) -> FittedModel {
        SymbolicRegressor::new(config).fit(data)
    }

    #[test]
    fn recovers_identity() {
        let data = Dataset::from_pairs((0..30).map(|i| (f64::from(i), f64::from(i)))).unwrap();
        let model = fit(GpConfig::fast(1), &data);
        assert!(model.train_error < 0.1, "error {}", model.train_error);
    }

    #[test]
    fn recovers_linear_scale_offset() {
        // Y = 1.8X - 40 (OBD-II coolant in Fahrenheit).
        let data =
            Dataset::from_pairs((160..=192).map(|x| (f64::from(x), 1.8 * f64::from(x) - 40.0)))
                .unwrap();
        let model = fit(GpConfig::fast(2), &data);
        assert!(
            model.agrees_with(|x| 1.8 * x[0] - 40.0, &[(160.0, 192.0)], 0.02),
            "got {model} with error {}",
            model.train_error
        );
    }

    #[test]
    fn recovers_product_formula() {
        // Y = X0*X1/5 — the paper's KWP engine-speed formula.
        let data = Dataset::from_triples((0..60).map(|i| {
            let x0 = f64::from(150 + (i * 7) % 100);
            let x1 = f64::from(10 + (i * 3) % 20);
            ((x0, x1), x0 * x1 / 5.0)
        }))
        .unwrap();
        let model = fit(GpConfig::fast(3), &data);
        assert!(
            model.agrees_with(
                |x| x[0] * x[1] / 5.0,
                &[(150.0, 249.0), (10.0, 29.0)],
                0.03
            ),
            "got {model} with error {}",
            model.train_error
        );
    }

    #[test]
    fn threshold_stops_early_on_trivial_data() {
        let data = Dataset::from_pairs((1..40).map(|i| (f64::from(i), f64::from(i)))).unwrap();
        let mut engine = SymbolicRegressor::new(GpConfig::fast(4));
        let model = engine.fit(&data);
        let report = engine.last_report().unwrap();
        assert!(report.stopped_by_threshold);
        assert!(model.generations < engine.config().max_generations);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Dataset::from_pairs((0..25).map(|i| {
            let x = f64::from(i * 9 % 200);
            (x, 0.5 * x + 3.0)
        }))
        .unwrap();
        let a = fit(GpConfig::fast(99), &data);
        let b = fit(GpConfig::fast(99), &data);
        assert_eq!(a.expr, b.expr);
        assert_eq!(a.train_error, b.train_error);
    }

    #[test]
    fn constant_target_learned_as_constant() {
        let data = Dataset::from_pairs((0..20).map(|i| (f64::from(i), 7.0))).unwrap();
        let model = fit(GpConfig::fast(5), &data);
        assert!(model.train_error < 0.05);
        assert!((model.predict(&[100.0]) - 7.0).abs() < 0.5);
    }

    #[test]
    fn arithmetic_function_set_excludes_trig() {
        let config = GpConfig {
            functions: FunctionSet::arithmetic(),
            ..GpConfig::fast(6)
        };
        let data = Dataset::from_pairs((1..30).map(|i| (f64::from(i), 2.0 * f64::from(i)))).unwrap();
        let model = fit(config, &data);
        let printed = model.expr.to_string();
        for banned in ["sin", "cos", "tan", "sqrt", "log"] {
            assert!(!printed.contains(banned), "{printed}");
        }
        assert!(model.train_error < 0.5);
    }

    #[test]
    fn lineage_event_traces_winner_back_to_init() {
        let data = Dataset::from_pairs((0..30).map(|i| {
            let x = f64::from(i * 7 % 120);
            (x, 0.4 * x + 2.0)
        }))
        .unwrap();
        // Fit once without capture, once inside a capture: same model.
        let bare = fit(GpConfig::fast(11), &data);
        let (model, events) = dpr_evidence::capture(|| {
            dpr_evidence::with_subject("rpm", || fit(GpConfig::fast(11), &data))
        });
        assert_eq!(bare.expr, model.expr, "capture must not perturb the run");
        assert_eq!(bare.train_error, model.train_error);

        let lineages: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                dpr_evidence::Event::Lineage(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lineages.len(), 1);
        let lineage = lineages[0];
        assert_eq!(lineage.subject, "rpm");
        assert_eq!(lineage.expression, model.expr.to_string());
        assert_eq!(lineage.evaluations, model.evaluations);
        assert_eq!(lineage.generations as usize, model.generations);
        assert!(!lineage.steps.is_empty());
        // Oldest step is an initialization op at generation 0; every
        // later in-run step names its parent in the previous generation.
        let first = &lineage.steps[0];
        assert_eq!(first.generation, 0);
        assert!(
            first.op.starts_with("init") || first.op == "seed-template",
            "unexpected origin op {}",
            first.op
        );
        assert!(first.parent.is_none());
        let in_run: Vec<_> = lineage
            .steps
            .iter()
            .filter(|s| (s.generation as usize) < model.generations)
            .collect();
        for pair in in_run.windows(2) {
            assert_eq!(pair[1].generation, pair[0].generation + 1);
            assert!(pair[1].parent.is_some());
        }
        assert!(lineage.best_error_history.last().copied().flatten().is_some());
    }

    #[test]
    fn report_history_is_nonincreasing() {
        let data = Dataset::from_pairs((0..40).map(|i| {
            let x = f64::from(i);
            (x, x * x * 0.01)
        }))
        .unwrap();
        let mut engine = SymbolicRegressor::new(GpConfig::fast(7));
        engine.fit(&data);
        let history = &engine.last_report().unwrap().best_error_history;
        for pair in history.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12, "history must not regress");
        }
    }
}
