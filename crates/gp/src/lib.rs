//! Genetic-programming symbolic regression — DP-Reverser's inference core.
//!
//! Given `(X, Y)` pairs correlating raw response-message values with the
//! values a diagnostic tool displayed, this crate searches the space of
//! mathematical expressions for a formula `f` with `f(X) ≈ Y` (the paper's
//! §3.5, Step 2). It reimplements, from scratch, everything the paper used
//! from the gplearn library plus the paper's own additions:
//!
//! * [`Expr`] syntax trees over a **14-function set** (§6: addition,
//!   subtraction, multiplication, division, square root, log, absolute
//!   value, negation, maximum, minimum, sine, cosine, tangent, inverse),
//!   with *protected* versions of the partial functions;
//! * ramped half-and-half initialization, tournament selection, subtree
//!   crossover, and subtree/hoist/point mutation in [`SymbolicRegressor`];
//! * both of the paper's stopping criteria — generation budget and fitness
//!   threshold (§3.5);
//! * the paper's Tab. 2 **pre-scaling of the data set and post-processing
//!   of the inferred formula** in [`scaling`], which keeps most values in
//!   the GP-friendly `1.0..10.0` band;
//! * a constant-polishing hill climb that refines numeric leaves of the
//!   winning expression (the GP analogue of gplearn's final tuning).
//!
//! Fitness scoring — the dominant cost at the paper's 1000 × 30 budget —
//! runs through [`CompiledExpr`], a postfix-bytecode compilation of the
//! expression tree evaluated batch-wise over the whole data set, and is
//! fanned out across the [`dpr_par`] worker pool (`DPR_THREADS`). Both are
//! bit-identical to the naive recursive, sequential evaluation: all
//! randomness stays in the sequential breeding phase, so the same seed
//! yields the same [`FittedModel`] at any thread count.
//!
//! # Example
//!
//! ```
//! use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};
//!
//! // Recover Y = 64*X0 + 0.25*X1 (the OBD-II engine-speed formula).
//! let xs: Vec<Vec<f64>> = (0..40)
//!     .map(|i| vec![f64::from(i * 5 % 200), f64::from((i * 37) % 256)])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 64.0 * x[0] + 0.25 * x[1]).collect();
//! let data = Dataset::new(xs, ys).unwrap();
//!
//! let mut gp = SymbolicRegressor::new(GpConfig::fast(42));
//! let model = gp.fit(&data);
//! assert!(model.train_error < 25.0, "error was {}", model.train_error);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
mod dataset;
pub mod dedup;
mod engine;
pub mod expr;
mod fitness;
mod model;
mod refit;
pub mod scaling;

pub use compile::{BatchScratch, Columns, CompiledExpr};
pub use dataset::{Dataset, DatasetError};
pub use engine::{FunctionSet, GpConfig, GpReport, SymbolicRegressor, BATCH_ENV};
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use fitness::Metric;
pub use model::FittedModel;
