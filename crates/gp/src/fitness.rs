//! Fitness metrics.

use serde::{Deserialize, Serialize};

use crate::{Dataset, Expr};

/// The error metric used as GP fitness (lower is better). The paper names
/// "mean absolute error" and "mean squared error" as the usual choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Mean absolute error — the paper's default ("each generation contains
    /// 1000 formulas to calculate their fitness score ('mean absolute
    /// error')").
    #[default]
    MeanAbsoluteError,
    /// Mean squared error.
    MeanSquaredError,
    /// Root mean squared error.
    Rmse,
}

impl Metric {
    /// Computes the metric for an expression over a data set. Non-finite
    /// predictions yield `f64::INFINITY` so broken individuals always lose.
    pub fn error(self, expr: &Expr, data: &Dataset) -> f64 {
        let mut acc = 0.0;
        let n = data.len() as f64;
        for (row, target) in data.iter() {
            let pred = expr.eval(row);
            if !pred.is_finite() {
                return f64::INFINITY;
            }
            let residual = pred - target;
            acc += match self {
                Metric::MeanAbsoluteError => residual.abs(),
                Metric::MeanSquaredError | Metric::Rmse => residual * residual,
            };
        }
        match self {
            Metric::MeanAbsoluteError | Metric::MeanSquaredError => acc / n,
            Metric::Rmse => (acc / n).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;

    fn dataset() -> Dataset {
        Dataset::from_pairs([(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]).unwrap()
    }

    #[test]
    fn perfect_fit_has_zero_error() {
        // Y = 2*X0
        let e = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Const(2.0)),
            Box::new(Expr::Var(0)),
        );
        let d = dataset();
        assert_eq!(Metric::MeanAbsoluteError.error(&e, &d), 0.0);
        assert_eq!(Metric::MeanSquaredError.error(&e, &d), 0.0);
        assert_eq!(Metric::Rmse.error(&e, &d), 0.0);
    }

    #[test]
    fn metrics_measure_residuals() {
        // Y = X0: residuals -1, -2, -3.
        let e = Expr::Var(0);
        let d = dataset();
        assert_eq!(Metric::MeanAbsoluteError.error(&e, &d), 2.0);
        let mse = (1.0 + 4.0 + 9.0) / 3.0;
        assert_eq!(Metric::MeanSquaredError.error(&e, &d), mse);
        assert!((Metric::Rmse.error(&e, &d) - mse.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn non_finite_prediction_is_infinitely_bad() {
        let e = Expr::Const(f64::NAN);
        assert_eq!(
            Metric::MeanAbsoluteError.error(&e, &dataset()),
            f64::INFINITY
        );
    }
}
