//! Residual refit: a closed-form correction applied to the GP winner.
//!
//! A from-scratch GP engine sometimes converges to the dominant term of a
//! formula and misses a small additive contribution (e.g. finding `64·X0`
//! for the engine-speed formula `64·X0 + 0.25·X1`, where the second term
//! contributes less than 1%). Mature GP stacks escape this with enormous
//! populations; we instead fit the *residual* `y − f(x)` with ordinary
//! least squares over the low-order features `[1, X0, X1, X0·X1, X0²]` and
//! graft significant terms back onto the expression. The correction is
//! only accepted when it reduces the training error substantially, so
//! well-converged winners pass through untouched.

use crate::expr::{BinaryOp, Expr};
use crate::{Dataset, Metric};

/// Maximum features the refit considers.
const MAX_FEATURES: usize = 5;
/// Coefficients below this magnitude are dropped from the correction.
const COEFF_EPSILON: f64 = 1e-7;

/// Solves the least-squares system `X·beta ≈ r` via normal equations with
/// Gaussian elimination. Returns `None` for singular systems.
pub(crate) fn ols(features: &[Vec<f64>], targets: &[f64]) -> Option<Vec<f64>> {
    let n = features.len();
    if n == 0 {
        return None;
    }
    let k = features[0].len();
    debug_assert!(k <= MAX_FEATURES + 1);
    // Normal equations: A = Xᵀ X (k×k), b = Xᵀ r.
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (row, &t) in features.iter().zip(targets) {
        for i in 0..k {
            b[i] += row[i] * t;
            for j in 0..k {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    // Tiny ridge term for numerical stability on collinear features.
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += 1e-9;
        let _ = i;
    }
    gaussian_solve(a, b)
}

#[allow(clippy::needless_range_loop)] // index arithmetic on two arrays at once
fn gaussian_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let k = b.len();
    for col in 0..k {
        // Partial pivot.
        let pivot = (col..k).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        for row in 0..k {
            if row == col {
                continue;
            }
            let factor = a[row][col] / diag;
            for j in col..k {
                let v = a[col][j];
                a[row][j] -= factor * v;
            }
            b[row] -= factor * b[col];
        }
    }
    Some((0..k).map(|i| b[i] / a[i][i]).collect())
}

/// The low-order feature row for an input: one variable uses
/// `[1, X0, X0², 1/X0]` (the inverse term covers period→rate encodings);
/// two variables use `[1, X0, X1, X0·X1]`.
fn feature_row(x: &[f64]) -> Vec<f64> {
    match x.len() {
        1 => {
            let inv = if x[0].abs() > 1e-9 { 1.0 / x[0] } else { 0.0 };
            vec![1.0, x[0], x[0] * x[0], inv]
        }
        _ => vec![1.0, x[0], x[1], x[0] * x[1]],
    }
}

fn feature_expr(index: usize, n_vars: usize) -> Expr {
    let mul = |a: Expr, b: Expr| Expr::Binary(BinaryOp::Mul, Box::new(a), Box::new(b));
    match (n_vars, index) {
        (_, 0) => Expr::Const(1.0),
        (_, 1) => Expr::Var(0),
        (1, 2) => mul(Expr::Var(0), Expr::Var(0)),
        (1, 3) => Expr::Unary(crate::expr::UnaryOp::Inv, Box::new(Expr::Var(0))),
        (_, 2) => Expr::Var(1),
        (_, 3) => mul(Expr::Var(0), Expr::Var(1)),
        _ => unreachable!("feature index out of range"),
    }
}

/// Fits the target directly with OLS over the low-order features,
/// returning the resulting expression (a candidate the engine races
/// against the GP winner — GP still wins whenever the true formula is not
/// in the low-order polynomial family).
pub(crate) fn loworder_candidate(data: &Dataset) -> Option<Expr> {
    let features: Vec<Vec<f64>> = data.x().iter().map(|r| feature_row(r)).collect();
    let beta = ols(&features, data.y())?;
    let mut out = Expr::Const(0.0);
    for (i, &c) in beta.iter().enumerate() {
        if c.abs() < COEFF_EPSILON {
            continue;
        }
        let term = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Const(c)),
            Box::new(feature_expr(i, data.n_vars())),
        );
        out = Expr::Binary(BinaryOp::Add, Box::new(out), Box::new(term));
    }
    Some(out.simplify())
}

/// Fits the residual of `expr` on the low-order features and, if the
/// corrected expression improves the error by at least 2×, returns it.
pub(crate) fn residual_refit(expr: &Expr, data: &Dataset, metric: Metric) -> Option<Expr> {
    let base_error = metric.error(expr, data);
    if !base_error.is_finite() || base_error == 0.0 {
        return None;
    }
    let features: Vec<Vec<f64>> = data.x().iter().map(|r| feature_row(r)).collect();
    let residuals: Vec<f64> = data
        .iter()
        .map(|(row, y)| y - expr.eval(row))
        .collect();
    let beta = ols(&features, &residuals)?;

    // Build expr + Σ beta_i · feature_i, skipping negligible coefficients.
    let mut corrected = expr.clone();
    for (i, &c) in beta.iter().enumerate() {
        if c.abs() < COEFF_EPSILON {
            continue;
        }
        let term = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Const(c)),
            Box::new(feature_expr(i, data.n_vars())),
        );
        corrected = Expr::Binary(BinaryOp::Add, Box::new(corrected), Box::new(term));
    }
    let corrected = corrected.simplify();
    let new_error = metric.error(&corrected, data);
    (new_error.is_finite() && new_error < base_error * 0.5).then_some(corrected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_exact_affine() {
        let features: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x0 = f64::from(i);
                let x1 = f64::from((i * 7) % 13);
                vec![1.0, x0, x1, x0 * x1]
            })
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| 3.0 + 2.0 * f[1] - 0.5 * f[2] + 0.1 * f[3])
            .collect();
        let beta = ols(&features, &targets).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-6);
        assert!((beta[2] + 0.5).abs() < 1e-6);
        assert!((beta[3] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn ols_handles_degenerate_systems() {
        // Empty input yields no solution.
        assert!(ols(&[], &[]).is_none());
        // An all-zero system is regularized to the zero solution rather
        // than producing NaNs.
        let features = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let targets = vec![0.0, 0.0];
        if let Some(beta) = ols(&features, &targets) {
            assert!(beta.iter().all(|c| c.abs() < 1e-6));
        }
    }

    #[test]
    fn refit_adds_missing_small_term() {
        // GP found 64·X0; truth is 64·X0 + 0.25·X1.
        let data = Dataset::from_triples((0..40).map(|i| {
            let x0 = f64::from((i * 5) % 200);
            let x1 = f64::from((i * 37) % 256);
            ((x0, x1), 64.0 * x0 + 0.25 * x1)
        }))
        .unwrap();
        let partial = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Const(64.0)),
            Box::new(Expr::Var(0)),
        );
        let refined = residual_refit(&partial, &data, Metric::MeanAbsoluteError)
            .expect("refit should engage");
        let err = Metric::MeanAbsoluteError.error(&refined, &data);
        assert!(err < 1e-6, "residual error {err}");
    }

    #[test]
    fn refit_leaves_converged_winner_alone() {
        let data = Dataset::from_pairs((0..20).map(|i| (f64::from(i), 2.0 * f64::from(i)))).unwrap();
        let exact = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Const(2.0)),
            Box::new(Expr::Var(0)),
        );
        assert!(residual_refit(&exact, &data, Metric::MeanAbsoluteError).is_none());
    }

    #[test]
    fn refit_handles_single_variable_quadratics() {
        let data = Dataset::from_pairs((1..40).map(|i| {
            let x = f64::from(i);
            (x, 0.01 * x * x + 3.0)
        }))
        .unwrap();
        let poor = Expr::Var(0);
        let refined = residual_refit(&poor, &data, Metric::MeanAbsoluteError).unwrap();
        let err = Metric::MeanAbsoluteError.error(&refined, &data);
        assert!(err < 1e-6, "residual error {err}");
    }
}
