//! Scoring recovered protocols against the simulator's ground truth.
//!
//! The experiments need to decide, per ESV, whether the inferred formula
//! is *correct*. Following the paper, a formula counts as correct when it
//! is numerically equivalent to the ground truth over the raw-value range
//! actually observed in traffic — coefficient-close formulas, and
//! formulas with collapsed constant variables, all pass (Tab. 5's
//! `Y = 1.7X − 22` vs. `Y = 1.8X − 40` case).

use dpr_frames::SourceKey;
use dpr_protocol::uds::Did;
use dpr_protocol::EsvFormula;
use dpr_vehicle::ecu::EsvId;
use dpr_vehicle::AttachedVehicle;
use serde::{Deserialize, Serialize};

use crate::result::{RecoveredKind, ReverseEngineeringResult};

/// Relative tolerance for numeric equivalence (scale floor 1.0).
pub const EQUIVALENCE_TOLERANCE: f64 = 0.04;

/// Verdict for one recovered ESV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EsvVerdict {
    /// The identifier.
    pub key: SourceKey,
    /// The recovered label.
    pub label: String,
    /// Whether the ground truth is a formula (vs. enumeration).
    pub truth_is_formula: bool,
    /// Whether the recovered rule matches the ground truth.
    pub correct: bool,
    /// Whether the recovered label matches the ground-truth quantity name.
    pub semantics_correct: bool,
    /// Human-readable recovered rule.
    pub recovered: String,
    /// Human-readable ground truth.
    pub truth: String,
}

/// The aggregate evaluation of one car's run — one row of Tab. 6.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// Ground-truth formula ESVs recovered and matched.
    pub formula_total: usize,
    /// …of which the inferred formula is correct.
    pub formula_correct: usize,
    /// Ground-truth enumeration ESVs recovered and matched.
    pub enum_total: usize,
    /// …of which the recovered rule is correct (classified enumeration).
    pub enum_correct: usize,
    /// Recovered ESVs whose label matches the ground-truth quantity.
    pub semantics_correct: usize,
    /// Ground-truth readable ESVs that were never recovered.
    pub missed: usize,
    /// Per-ESV verdicts.
    pub verdicts: Vec<EsvVerdict>,
}

impl PrecisionReport {
    /// Formula-inference precision (the paper's Tab. 6 "Precision").
    pub fn formula_precision(&self) -> f64 {
        if self.formula_total == 0 {
            1.0
        } else {
            self.formula_correct as f64 / self.formula_total as f64
        }
    }

    /// Merges another car's report into this one (for the Tab. 6 total).
    pub fn merge(&mut self, other: PrecisionReport) {
        self.formula_total += other.formula_total;
        self.formula_correct += other.formula_correct;
        self.enum_total += other.enum_total;
        self.enum_correct += other.enum_correct;
        self.semantics_correct += other.semantics_correct;
        self.missed += other.missed;
        self.verdicts.extend(other.verdicts);
    }
}

fn esv_id_for(key: SourceKey) -> Option<EsvId> {
    match key {
        SourceKey::UdsDid(d) => Some(EsvId::Uds(Did(d))),
        SourceKey::Kwp { local_id, slot } => Some(EsvId::Kwp {
            local_id: dpr_protocol::kwp::LocalId(local_id),
            slot,
        }),
        SourceKey::Obd(_) => None,
    }
}

/// Evaluates a pipeline result against the vehicle it was collected from.
pub fn evaluate(
    result: &ReverseEngineeringResult,
    vehicle: &AttachedVehicle,
) -> PrecisionReport {
    let truth_points = vehicle.esv_points();
    let mut report = PrecisionReport::default();

    for esv in &result.esvs {
        let Some(id) = esv_id_for(esv.key) else {
            continue; // OBD signals are scored by the Tab. 5 harness
        };
        let Some(point) = truth_points.iter().find(|p| p.id == id) else {
            continue;
        };
        let truth = point.formula;
        let semantics_correct = esv.label.starts_with(point.quantity.name())
            || point.quantity.name().starts_with(esv.label.trim_end_matches(|c: char| c.is_ascii_digit() || c == ' '));
        let (correct, recovered_str) = match (&esv.kind, truth.has_formula()) {
            (RecoveredKind::Enumeration, false) => (true, "enumeration".to_string()),
            (RecoveredKind::Enumeration, true) => {
                // An enumeration verdict means "Y equals the raw byte";
                // that is correct when the hidden formula is the identity
                // over the observed range.
                let (lo, hi) = esv.x_ranges.first().copied().unwrap_or((0.0, 255.0));
                let identity_truth = (0..8).all(|i| {
                    let x = lo + (hi - lo) * f64::from(i) / 7.0;
                    (truth.eval(x, 0.0) - x).abs() <= EQUIVALENCE_TOLERANCE * x.abs().max(1.0)
                });
                (identity_truth, "enumeration".to_string())
            }
            (RecoveredKind::Formula(_), false) => {
                // Ground truth is an enumeration; a formula equivalent to
                // identity is still correct.
                let RecoveredKind::Formula(model) = &esv.kind else {
                    unreachable!()
                };
                let ok = model.agrees_with(
                    |x| x[0],
                    &esv.x_ranges[..1.min(esv.x_ranges.len())],
                    EQUIVALENCE_TOLERANCE,
                );
                (ok, model.describe())
            }
            (RecoveredKind::Formula(model), true) => {
                let ranges = &esv.x_ranges;
                let closure = |x: &[f64]| truth.eval(x[0], x.get(1).copied().unwrap_or(0.0));
                // When the model uses one variable but the truth uses two,
                // the second raw byte was constant in traffic; evaluate at
                // that constant.
                let ok = if ranges.len() == 1 && truth.arity() == 2 {
                    // The constant second byte is unknown here; accept if
                    // the model matches the truth at any plausible pinned
                    // value by comparing on observed data instead: use the
                    // training error relative to the observed Y scale.
                    model.train_error <= observed_scale(model, ranges) * EQUIVALENCE_TOLERANCE
                } else {
                    model.agrees_with(closure, ranges, EQUIVALENCE_TOLERANCE)
                };
                (ok, model.describe())
            }
        };
        if truth.has_formula() {
            report.formula_total += 1;
            if correct {
                report.formula_correct += 1;
            }
        } else {
            report.enum_total += 1;
            if correct {
                report.enum_correct += 1;
            }
        }
        if semantics_correct {
            report.semantics_correct += 1;
        }
        report.verdicts.push(EsvVerdict {
            key: esv.key,
            label: esv.label.clone(),
            truth_is_formula: truth.has_formula(),
            correct,
            semantics_correct,
            recovered: recovered_str,
            truth: format_truth(truth),
        });
    }

    let recovered_ids: Vec<EsvId> = result
        .esvs
        .iter()
        .filter_map(|e| esv_id_for(e.key))
        .collect();
    report.missed = truth_points
        .iter()
        .filter(|p| !recovered_ids.contains(&p.id))
        .count();
    report
}

/// Fits each closed-form family to the model's own predictions over the
/// observed range and returns the best family when it explains the model
/// within 1% — turning GP's raw expression tree into the paper's
/// presentation form (`Y = X0*X1/5` instead of a scaled syntax tree).
pub fn canonicalize(model: &dpr_gp::FittedModel, ranges: &[(f64, f64)]) -> Option<EsvFormula> {
    const STEPS: usize = 9;
    if ranges.is_empty() {
        return None;
    }
    // Sample the model over the observed grid.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut y_scale = 1.0f64;
    let mut idx = vec![0usize; ranges.len()];
    loop {
        let row: Vec<f64> = ranges
            .iter()
            .zip(&idx)
            .map(|(&(lo, hi), &i)| lo + (hi - lo) * i as f64 / (STEPS - 1) as f64)
            .collect();
        let y = model.predict(&row);
        if !y.is_finite() {
            return None;
        }
        y_scale = y_scale.max(y.abs());
        rows.push(row);
        ys.push(y);
        let mut k = 0;
        loop {
            if k == ranges.len() {
                // Grid exhausted.
                return canonical_from_samples(&rows, &ys, y_scale, ranges.len());
            }
            idx[k] += 1;
            if idx[k] < STEPS {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

#[allow(clippy::needless_range_loop)] // Gauss-Jordan index arithmetic
fn canonical_from_samples(
    rows: &[Vec<f64>],
    ys: &[f64],
    y_scale: f64,
    n_vars: usize,
) -> Option<EsvFormula> {
    // Least squares over a family's basis; returns (coeffs, max error).
    let fit = |basis: &dyn Fn(&[f64]) -> Vec<f64>| -> Option<(Vec<f64>, f64)> {
        let feats: Vec<Vec<f64>> = rows.iter().map(|r| basis(r)).collect();
        let k = feats[0].len();
        let mut a = vec![vec![0.0f64; k]; k];
        let mut b = vec![0.0f64; k];
        for (f, &y) in feats.iter().zip(ys) {
            for i in 0..k {
                b[i] += f[i] * y;
                for j in 0..k {
                    a[i][j] += f[i] * f[j];
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        // Gauss-Jordan.
        for col in 0..k {
            let piv = (col..k).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
            if a[piv][col].abs() < 1e-12 {
                return None;
            }
            a.swap(col, piv);
            b.swap(col, piv);
            let d = a[col][col];
            for r in 0..k {
                if r == col {
                    continue;
                }
                let f = a[r][col] / d;
                for c2 in col..k {
                    let v = a[col][c2];
                    a[r][c2] -= f * v;
                }
                b[r] -= f * b[col];
            }
        }
        let coeffs: Vec<f64> = (0..k).map(|i| b[i] / a[i][i]).collect();
        let err = rows
            .iter()
            .zip(ys)
            .map(|(r, &y)| {
                let pred: f64 = basis(r).iter().zip(&coeffs).map(|(f, c)| f * c).sum();
                (pred - y).abs()
            })
            .fold(0.0f64, f64::max);
        Some((coeffs, err))
    };
    let tol = 0.01 * y_scale.max(1.0);
    // Coefficients contributing under 0.3% of the output scale are noise
    // from the fit; zero them for presentation.
    let snap = |v: f64, term_scale: f64| {
        if (v * term_scale).abs() < 0.003 * y_scale.max(1.0) {
            0.0
        } else {
            (v * 1e4).round() / 1e4
        }
    };
    let x0_scale = rows.iter().map(|r| r[0].abs()).fold(0.0f64, f64::max);
    let x1_scale = rows
        .iter()
        .map(|r| r.get(1).copied().unwrap_or(0.0).abs())
        .fold(0.0f64, f64::max);

    // Fit every family; keep candidates within tolerance; pick the lowest
    // error with ties broken by the simpler family (listed order).
    let mut candidates: Vec<(f64, EsvFormula)> = Vec::new();
    if let Some((c, err)) = fit(&|r: &[f64]| vec![r[0], 1.0]) {
        candidates.push((
            err,
            EsvFormula::Linear {
                a: snap(c[0], x0_scale),
                b: snap(c[1], 1.0),
            },
        ));
    }
    if let Some((c, err)) = fit(&|r: &[f64]| vec![r[0] * r[0], 1.0]) {
        candidates.push((
            err,
            EsvFormula::Square {
                a: snap(c[0], x0_scale * x0_scale),
                b: snap(c[1], 1.0),
            },
        ));
    }
    if rows.iter().all(|r| r[0].abs() > 1e-6) {
        if let Some((c, err)) = fit(&|r: &[f64]| vec![1.0 / r[0], 1.0]) {
            candidates.push((
                err,
                EsvFormula::Inverse {
                    a: snap(c[0], 1.0),
                    b: snap(c[1], 1.0),
                },
            ));
        }
    }
    if n_vars >= 2 {
        if let Some((c, err)) = fit(&|r: &[f64]| vec![r[0] * r[1], 1.0]) {
            candidates.push((
                err,
                EsvFormula::Product {
                    a: snap(c[0], x0_scale * x1_scale),
                    b: snap(c[1], 1.0),
                },
            ));
        }
        if let Some((c, err)) = fit(&|r: &[f64]| vec![r[0], r[1], 1.0]) {
            candidates.push((
                err,
                EsvFormula::Affine2 {
                    a: snap(c[0], x0_scale),
                    b: snap(c[1], x1_scale),
                    c: snap(c[2], 1.0),
                },
            ));
        }
    }
    candidates
        .into_iter()
        .filter(|(err, _)| *err <= tol)
        .min_by(|(a, _), (b, _)| a.total_cmp(b))
        .map(|(_, f)| f)
}

fn observed_scale(model: &dpr_gp::FittedModel, ranges: &[(f64, f64)]) -> f64 {
    // Typical |Y| over the observed X range.
    let (lo, hi) = ranges[0];
    let mid = model.predict(&[(lo + hi) / 2.0]);
    mid.abs().max(1.0)
}

fn format_truth(truth: EsvFormula) -> String {
    truth.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};

    #[test]
    fn precision_math() {
        let mut a = PrecisionReport {
            formula_total: 8,
            formula_correct: 7,
            ..Default::default()
        };
        assert!((a.formula_precision() - 0.875).abs() < 1e-12);
        a.merge(PrecisionReport {
            formula_total: 2,
            formula_correct: 2,
            ..Default::default()
        });
        assert_eq!(a.formula_total, 10);
        assert_eq!(a.formula_correct, 9);
        assert_eq!(PrecisionReport::default().formula_precision(), 1.0);
    }

    #[test]
    fn canonicalize_recovers_closed_forms() {
        use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};
        // One representative per family.
        type Case = (Box<dyn Fn(f64, f64) -> f64>, bool, &'static str);
        let cases: Vec<Case> = vec![
            (Box::new(|a, _| 0.5 * a - 40.0), false, "Linear"),
            (Box::new(|a, _| 0.01 * a * a), false, "Square"),
            (Box::new(|a, _| 1000.0 / a), false, "Inverse"),
            (Box::new(|a, b| a * b / 5.0), true, "Product"),
        ];
        for (f, two, family) in cases {
            let data = if two {
                Dataset::from_triples((0..60).map(|i| {
                    let a = f64::from(40 + (i * 17) % 200);
                    let b = f64::from(10 + (i * 13) % 30);
                    ((a, b), f(a, b))
                }))
                .unwrap()
            } else {
                Dataset::from_pairs((0..60).map(|i| {
                    let a = f64::from(40 + (i * 17) % 200);
                    (a, f(a, 0.0))
                }))
                .unwrap()
            };
            let model = SymbolicRegressor::new(GpConfig::fast(9)).fit(&data);
            let ranges: Vec<(f64, f64)> = if two {
                vec![(40.0, 239.0), (10.0, 39.0)]
            } else {
                vec![(40.0, 239.0)]
            };
            let canon = canonicalize(&model, &ranges);
            let Some(formula) = canon else {
                panic!("{family}: no canonical form found (err {})", model.train_error);
            };
            let name = format!("{formula:?}");
            assert!(
                name.starts_with(family),
                "{family}: canonicalized to {formula} ({name})"
            );
            // And the canonical form matches the underlying function.
            for i in 0..10 {
                let a = 40.0 + 19.0 * f64::from(i);
                let b = 10.0 + 2.9 * f64::from(i);
                let want = f(a, b);
                let got = formula.eval(a, b);
                assert!(
                    (got - want).abs() <= 0.02 * want.abs().max(1.0),
                    "{family}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn canonicalize_handles_empty_ranges() {
        use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};
        let data = Dataset::from_pairs((0..10).map(|i| (f64::from(i), f64::from(i)))).unwrap();
        let model = SymbolicRegressor::new(GpConfig::fast(1)).fit(&data);
        assert_eq!(canonicalize(&model, &[]), None);
    }

    #[test]
    fn canonicalize_refuses_non_polynomial_models() {
        use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};
        // A saw-tooth-ish relation no closed family explains.
        let data = Dataset::from_pairs((0..60).map(|i| {
            let x = f64::from(i * 4 % 240);
            (x, (x / 17.0).sin() * 50.0 + (x % 13.0))
        }))
        .unwrap();
        let model = SymbolicRegressor::new(GpConfig::fast(11)).fit(&data);
        // Either the model itself failed to fit tightly (fine) or, if it
        // did, no simple family should claim it.
        if model.train_error < 0.5 {
            assert_eq!(canonicalize(&model, &[(0.0, 239.0)]), None);
        }
    }

    #[test]
    fn evaluate_scores_a_correct_and_incorrect_model() {
        use dpr_can::CanBus;
        use dpr_frames::FrameStats;
        use dpr_vehicle::codec::EsvCodec;
        use dpr_vehicle::ecu::{Ecu, Protocol, Sensor, TransportKind};
        use dpr_vehicle::signal::SignalGenerator;
        use dpr_vehicle::Vehicle;

        // Ground truth: DID 0x1000 decodes with Y = 0.5·X.
        let mut ecu = Ecu::new(
            "Engine",
            dpr_can::CanId::standard(0x7E0).unwrap(),
            dpr_can::CanId::standard(0x7E8).unwrap(),
            TransportKind::IsoTp,
            Protocol::Uds,
        );
        ecu.add_uds_point(
            Did(0x1000),
            Sensor {
                quantity: dpr_protocol::Quantity::new("Coolant Temperature", "degC", 0.0, 127.5),
                generator: SignalGenerator::Constant(50.0),
            },
            EsvCodec::single(EsvFormula::Linear { a: 0.5, b: 0.0 }),
        );
        let mut vehicle = Vehicle::new("Test");
        vehicle.add_ecu(ecu);
        let mut bus = CanBus::new();
        let attached = vehicle.attach(&mut bus);

        // A recovered model fitted to the true relation.
        let data = Dataset::from_pairs((0..40).map(|i| {
            let x = f64::from(i * 6 % 250);
            (x, 0.5 * x)
        }))
        .unwrap();
        let good = SymbolicRegressor::new(GpConfig::fast(3)).fit(&data);

        let result = ReverseEngineeringResult {
            esvs: vec![crate::RecoveredEsv {
                key: SourceKey::UdsDid(0x1000),
                f_type: None,
                screen: "Engine - Data Stream p1".into(),
                label: "Coolant Temperature".into(),
                kind: RecoveredKind::Formula(good),
                pairs: 40,
                x_ranges: vec![(0.0, 250.0)],
                match_score: 0.99,
            }],
            ecrs: vec![],
            stats: FrameStats::default(),
            negatives: 0,
            alignment_offset_us: 0,
            trace: Default::default(),
            evidence: Default::default(),
        };
        let report = evaluate(&result, &attached);
        assert_eq!(report.formula_total, 1);
        assert_eq!(report.formula_correct, 1, "{:#?}", report.verdicts);
        assert_eq!(report.semantics_correct, 1);
        assert_eq!(report.missed, 0);

        // A wrong model (identity instead of half-scale) fails.
        let wrong_data = Dataset::from_pairs((0..40).map(|i| {
            let x = f64::from(i * 6 % 250);
            (x, x)
        }))
        .unwrap();
        let wrong = SymbolicRegressor::new(GpConfig::fast(4)).fit(&wrong_data);
        let mut bad_result = result;
        bad_result.esvs[0].kind = RecoveredKind::Formula(wrong);
        let report = evaluate(&bad_result, &attached);
        assert_eq!(report.formula_correct, 0);
    }
}
