//! # DP-Reverser
//!
//! A complete, simulation-backed reproduction of *"Towards Automatically
//! Reverse Engineering Vehicle Diagnostic Protocols"* (USENIX Security
//! 2022; poster at ICDCS 2023): a cyber-physical pipeline that recovers
//! the proprietary content of KWP 2000 and UDS diagnostic sessions —
//! identifier semantics, ECU-control records, and the formulas decoding
//! raw response bytes into physical values — purely from a diagnostic
//! tool's screen and its CAN traffic.
//!
//! This crate is the facade: it wires the substrates (CAN bus, transport
//! layers, protocol codecs, vehicle and tool simulators, the
//! robotic-clicker CPS, OCR, frames analysis, genetic-programming
//! inference) into the end-to-end [`DpReverser`] pipeline and provides the
//! [`evaluate`] harness that scores results against a simulated vehicle's
//! ground truth.
//!
//! # Quickstart
//!
//! ```
//! use dpr_can::Micros;
//! use dp_reverser::{DpReverser, PipelineConfig};
//! use dpr_cps::{collect_vehicle, CollectConfig, PlanStrategy};
//! use dpr_frames::Scheme;
//! use dpr_tool::{ToolProfile, ToolSession};
//! use dpr_vehicle::profiles::{self, CarId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A simulated car and tool, collected by the robotic clicker.
//! let car = profiles::build(CarId::P, 7);
//! let session = ToolSession::new(car, ToolProfile::autel_919());
//! let report = collect_vehicle(
//!     session,
//!     &CollectConfig {
//!         read_wait: Micros::from_secs(3),
//!         strategy: PlanStrategy::NearestNeighbor,
//!         ..CollectConfig::default()
//!     },
//! )?;
//!
//! // 2. Reverse engineer from the capture and the screen video alone.
//! let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 7));
//! let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
//! assert!(!result.esvs.is_empty());
//!
//! // 3. Score against the simulator's ground truth.
//! let precision = dp_reverser::evaluate(&result, &report.vehicle);
//! assert!(precision.formula_total > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod associate;
mod evaluate;
mod pipeline;
pub mod report;
mod result;

pub use associate::{match_series, match_series_two_pass, LabelSeries, MatchScore};
pub use dpr_capture::{CaptureReader, CaptureSession, CaptureWriter};
pub use dpr_evidence::{EvidenceChain, EvidenceLedger};
pub use evaluate::{canonicalize, evaluate, EsvVerdict, PrecisionReport};
pub use pipeline::{Alignment, DpReverser, PipelineConfig};
pub use result::{RecoveredEcr, RecoveredEsv, RecoveredKind, ReverseEngineeringResult};
