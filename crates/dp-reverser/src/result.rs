//! Result model: what DP-Reverser recovers.

use dpr_frames::{EcrTarget, FrameStats, SourceKey};
use dpr_gp::FittedModel;
use dpr_telemetry::PipelineTrace;
use serde::{Deserialize, Serialize};

/// What was recovered for one readable signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecoveredKind {
    /// A formula mapping raw response values to the displayed value.
    Formula(FittedModel),
    /// An enumeration: the raw value is displayed as-is (door open/closed
    /// …) — the paper's "#ESV (Enum)" category.
    Enumeration,
}

/// One reverse-engineered ESV: the identifier, its recovered semantics
/// (the UI label), and the decoding rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveredEsv {
    /// The request-side identifier (DID / local-id slot / PID).
    pub key: SourceKey,
    /// For KWP slots, the formula-type byte seen on the wire.
    pub f_type: Option<u8>,
    /// The screen (ECU page) the signal was read from.
    pub screen: String,
    /// The recovered semantic meaning: the label the tool displays.
    pub label: String,
    /// The decoding rule.
    pub kind: RecoveredKind,
    /// Number of `(X, Y)` pairs the inference used.
    pub pairs: usize,
    /// Observed range of each raw input column.
    pub x_ranges: Vec<(f64, f64)>,
    /// The association confidence from series matching.
    pub match_score: f64,
}

impl RecoveredEsv {
    /// Whether a formula (not an enumeration) was recovered.
    pub fn has_formula(&self) -> bool {
        matches!(self.kind, RecoveredKind::Formula(_))
    }

    /// A one-line human-readable summary.
    pub fn describe(&self) -> String {
        match &self.kind {
            RecoveredKind::Formula(m) => {
                format!("{} [{}] <- {}", self.key, self.label, m.describe())
            }
            RecoveredKind::Enumeration => {
                format!("{} [{}] <- enumeration (raw value)", self.key, self.label)
            }
        }
    }

    /// The recovered rule in the paper's presentation form: a closed-form
    /// formula where one explains the model over the observed range, the
    /// raw expression otherwise.
    pub fn pretty_formula(&self) -> String {
        match &self.kind {
            RecoveredKind::Enumeration => "enumeration".to_string(),
            RecoveredKind::Formula(m) => crate::canonicalize(m, &self.x_ranges)
                .map(|f| f.to_string())
                .unwrap_or_else(|| m.describe()),
        }
    }
}

/// One reverse-engineered ECU-control record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredEcr {
    /// The addressed component identifier.
    pub target: EcrTarget,
    /// The control state sent with the short-term adjustment.
    pub state: Vec<u8>,
    /// Whether the full freeze → adjust → return pattern was seen (§4.5).
    pub complete_pattern: bool,
    /// The recovered semantic meaning (the active-test button label
    /// clicked just before the procedure), when the click log allows it.
    pub label: Option<String>,
}

/// The complete output of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReverseEngineeringResult {
    /// Recovered readable signals.
    pub esvs: Vec<RecoveredEsv>,
    /// Recovered control records.
    pub ecrs: Vec<RecoveredEcr>,
    /// Frame-kind statistics of the capture (Tab. 9).
    pub stats: FrameStats,
    /// Negative responses observed.
    pub negatives: usize,
    /// The clock offset (camera − bus, µs) the pipeline corrected for.
    pub alignment_offset_us: i64,
    /// Observability data of the run: per-stage wall time and counters.
    /// Compares equal by design — wall times are not part of the result.
    pub trace: PipelineTrace,
    /// The run's evidence ledger: one provenance chain per recovered
    /// sensor (frames → reassembly → OCR → alignment → GP lineage) plus
    /// run-level transport reject tallies. Built from simulation-clock
    /// data only, so live and replayed runs compare byte-identical.
    pub evidence: dpr_evidence::EvidenceLedger,
}

impl ReverseEngineeringResult {
    /// Recovered ESVs that carry formulas.
    pub fn formula_esvs(&self) -> impl Iterator<Item = &RecoveredEsv> {
        self.esvs.iter().filter(|e| e.has_formula())
    }

    /// The result as canonical JSON with the observability trace zeroed
    /// out. Per-stage wall times differ run to run even when the
    /// recovered artifacts are byte-identical, so every identity
    /// comparison (record/replay determinism, service-vs-direct) goes
    /// through this form.
    pub fn canonical_json(&self) -> String {
        let mut stripped = self.clone();
        stripped.trace = PipelineTrace::default();
        dpr_telemetry::json::to_string(&stripped)
            .expect("a recovered result always serializes")
    }

    /// Reconstructs the manufacturer's KWP 2000 formula-type table — the
    /// paper's third KWP reverse-engineering target: "the corresponding
    /// formula used to transform ESV in the response message to actual
    /// ESV". For every formula-type byte observed on the wire, the
    /// canonicalized formula of each recovered slot of that type is
    /// collected; slots of one type share one formula by construction, so
    /// the entries are the recovered table rows.
    pub fn kwp_formula_table(&self) -> Vec<(u8, String, usize)> {
        let mut by_type: std::collections::BTreeMap<u8, std::collections::BTreeMap<String, usize>> =
            Default::default();
        for esv in &self.esvs {
            let Some(f_type) = esv.f_type else { continue };
            *by_type
                .entry(f_type)
                .or_default()
                .entry(esv.pretty_formula())
                .or_default() += 1;
        }
        by_type
            .into_iter()
            .map(|(f_type, votes)| {
                let count = votes.values().sum();
                // Majority vote over the (near-identical) recovered forms;
                // ties break toward the lexicographically smallest form.
                let best = votes
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                    .expect("entry only created when a formula is pushed")
                    .0;
                (f_type, best, count)
            })
            .collect()
    }

    /// Recovered ESVs classified as enumerations.
    pub fn enum_esvs(&self) -> impl Iterator<Item = &RecoveredEsv> {
        self.esvs.iter().filter(|e| !e.has_formula())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_formats() {
        let esv = RecoveredEsv {
            key: SourceKey::UdsDid(0xF40D),
            f_type: None,
            screen: "Engine - Data Stream p1".into(),
            label: "Vehicle Speed".into(),
            kind: RecoveredKind::Enumeration,
            pairs: 40,
            x_ranges: vec![(0.0, 200.0)],
            match_score: 0.99,
        };
        assert!(esv.describe().contains("Vehicle Speed"));
        assert!(esv.describe().contains("0xF40D"));
        assert!(!esv.has_formula());
    }

    #[test]
    fn result_partitions_esvs() {
        let enum_esv = RecoveredEsv {
            key: SourceKey::UdsDid(1),
            f_type: None,
            screen: String::new(),
            label: "Door".into(),
            kind: RecoveredKind::Enumeration,
            pairs: 5,
            x_ranges: vec![],
            match_score: 1.0,
        };
        let result = ReverseEngineeringResult {
            esvs: vec![enum_esv],
            ecrs: vec![],
            stats: FrameStats::default(),
            negatives: 0,
            alignment_offset_us: 0,
            trace: PipelineTrace::default(),
            evidence: dpr_evidence::EvidenceLedger::default(),
        };
        assert_eq!(result.formula_esvs().count(), 0);
        assert_eq!(result.enum_esvs().count(), 1);
    }
}
