//! The end-to-end pipeline: capture + video in, recovered protocol out.

use dpr_can::{BusLog, Micros};
use dpr_capture::{CaptureReader, CaptureSession};
use dpr_cps::clock::{align_by_obd, retime_readings};
use dpr_cps::script::ExecutionLog;
use dpr_frames::{analyze_capture, Scheme};
use dpr_gp::{Dataset, GpConfig, SymbolicRegressor};
use dpr_ocr::{filter_readings, read_frames, OcrChannel, RangeBook};
use dpr_tool::UiFrame;
use serde::{Deserialize, Serialize};

use dpr_baselines::{PolynomialFit, Regressor};

use crate::associate::{match_series_two_pass, LabelSeries, MatchScore};
use crate::result::{RecoveredEcr, RecoveredEsv, RecoveredKind, ReverseEngineeringResult};

/// One structured log line per finished pipeline stage — the
/// stage-boundary breadcrumbs that let `grep <job_id>` over a JSON log
/// reconstruct a run. Purely observational: analysis output is
/// byte-identical with logging on or off (pinned by the
/// `log_identity` test).
fn stage_done(stage: &str) {
    dpr_log::info("pipeline", "stage complete", &[("stage", stage.into())]);
}

/// How the pipeline aligns camera time with bus time (paper §9.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Alignment {
    /// Clocks are already synchronized (NTP happened out of band).
    None,
    /// Estimate the offset from decodable OBD-II traffic in the capture.
    ByObd,
    /// Apply a known offset estimate (e.g. from simulated NTP).
    FixedOffset(i64),
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The car's transport scheme (prerequisite domain knowledge, §6).
    pub scheme: Scheme,
    /// The OCR noise channel to read the video with.
    pub ocr: OcrChannel,
    /// Stage-1 plausibility ranges for the incorrect-ESV filter.
    pub range_book: RangeBook,
    /// Genetic-programming settings for formula inference.
    pub gp: GpConfig,
    /// Clock alignment method.
    pub align: Alignment,
    /// Minimum `(X, Y)` pairs required before inferring a formula.
    pub min_pairs: usize,
    /// Association confidence threshold.
    pub match_threshold: f64,
    /// Maximum X-to-Y timestamp distance when pairing.
    pub pair_window: Micros,
    /// Whether to run the §3.3 incorrect-ESV filter and the pairing-level
    /// robust trim (ablation toggle; both on in the paper's pipeline).
    pub use_filter: bool,
}

impl PipelineConfig {
    /// The paper's settings: full GP budget (1000 × 30).
    pub fn paper(scheme: Scheme, seed: u64) -> Self {
        PipelineConfig {
            scheme,
            ocr: OcrChannel::new(0.9976, seed),
            range_book: RangeBook::standard(),
            gp: GpConfig::paper(seed),
            align: Alignment::None,
            min_pairs: 6,
            match_threshold: 0.5,
            // Tight enough that an X sample only pairs with the display
            // frame of its own poll round: page transitions (≥ ~0.5 s of
            // stylus travel) leave no stale cross-page pairs.
            pair_window: Micros::from_millis(350),
            use_filter: true,
        }
    }

    /// A reduced GP budget for tests and quick runs.
    pub fn fast(scheme: Scheme, seed: u64) -> Self {
        PipelineConfig {
            gp: GpConfig::fast(seed),
            ..Self::paper(scheme, seed)
        }
    }
}

/// The DP-Reverser pipeline.
///
/// Construct once per capture; [`analyze`](Self::analyze) is deterministic
/// given the configuration seed.
#[derive(Debug, Clone)]
pub struct DpReverser {
    config: PipelineConfig,
}

impl DpReverser {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        DpReverser { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Like [`analyze`](Self::analyze), but auto-detects the transport
    /// scheme from the capture ([`dpr_frames::Scheme::detect`]) instead of
    /// trusting the configured one — one step beyond the paper, which
    /// lists scheme knowledge as a prerequisite (§6).
    pub fn analyze_auto(
        &self,
        log: &BusLog,
        frames: &[UiFrame],
        execution: Option<&ExecutionLog>,
    ) -> ReverseEngineeringResult {
        let detected = Scheme::detect(log);
        if detected == self.config.scheme {
            return self.analyze(log, frames, execution);
        }
        let config = PipelineConfig {
            scheme: detected,
            ..self.config.clone()
        };
        DpReverser::new(config).analyze(log, frames, execution)
    }

    /// Runs the full analysis: frames analysis (§3.2), screenshot analysis
    /// (§3.3), request-message analysis (§3.4), and response-message
    /// analysis (§3.5). The optional execution log adds semantic labels to
    /// recovered control records.
    pub fn analyze(
        &self,
        log: &BusLog,
        frames: &[UiFrame],
        execution: Option<&ExecutionLog>,
    ) -> ReverseEngineeringResult {
        let registry = dpr_telemetry::registry();
        let tracer = dpr_telemetry::TraceBuilder::new(registry);
        self.analyze_with(tracer, log, frames, execution)
    }

    /// Offline entry point: replays a recorded session
    /// ([`dpr_capture`]) through the same stages as a live run. Given a
    /// capture recorded from a collection run, the result is
    /// bit-identical to [`analyze`](Self::analyze) on that run's
    /// artifacts (the capture's clicker actions stand in for the
    /// execution log; a capture without any becomes `execution: None`).
    /// Damaged records are skipped, not fatal — the reader's tallies
    /// land on the trace's `capture` stage as `capture.crc_skipped` /
    /// `capture.records_read`.
    pub fn analyze_capture<R: std::io::Read>(
        &self,
        reader: CaptureReader<R>,
    ) -> ReverseEngineeringResult {
        let registry = dpr_telemetry::registry();
        let mut tracer = dpr_telemetry::TraceBuilder::new(registry);
        let session = tracer.stage("capture", || {
            let _span = dpr_telemetry::Span::enter("capture");
            let (session, _stats) = reader.read_session();
            session
        });
        stage_done("capture");
        self.analyze_session(tracer, &session)
    }

    /// Like [`analyze_capture`](Self::analyze_capture) for an already
    /// reconstructed [`CaptureSession`].
    pub fn analyze_replay(&self, session: &CaptureSession) -> ReverseEngineeringResult {
        let registry = dpr_telemetry::registry();
        let tracer = dpr_telemetry::TraceBuilder::new(registry);
        self.analyze_session(tracer, session)
    }

    fn analyze_session(
        &self,
        tracer: dpr_telemetry::TraceBuilder,
        session: &CaptureSession,
    ) -> ReverseEngineeringResult {
        let execution = (!session.execution.entries.is_empty()).then_some(&session.execution);
        self.analyze_with(tracer, &session.log, &session.frames, execution)
    }

    /// The shared stage machinery behind the live and replay entry
    /// points; `tracer` may already carry replay-side stages.
    ///
    /// The whole stage sequence runs inside a [`dpr_evidence::capture`],
    /// so the per-stage hooks in the substrate crates (transport rejects,
    /// reassembly provenance, OCR verdicts, alignment decisions, GP
    /// lineage) all land on one decision log; [`dpr_evidence::assemble`]
    /// then joins it into one [`dpr_evidence::EvidenceChain`] per
    /// recovered sensor. Every input to the log is simulation-clock data,
    /// so a replayed capture yields a byte-identical ledger.
    fn analyze_with(
        &self,
        tracer: dpr_telemetry::TraceBuilder,
        log: &BusLog,
        frames: &[UiFrame],
        execution: Option<&ExecutionLog>,
    ) -> ReverseEngineeringResult {
        let ((mut result, descs), events) =
            dpr_evidence::capture(|| self.run_stages(tracer, log, frames, execution));
        result.evidence = dpr_evidence::assemble(&events, &descs);
        result
    }

    /// The pipeline stages proper; returns the result (with an empty
    /// evidence ledger) plus the sensor descriptors [`Self::analyze_with`]
    /// joins the event log against.
    fn run_stages(
        &self,
        mut tracer: dpr_telemetry::TraceBuilder,
        log: &BusLog,
        frames: &[UiFrame],
        execution: Option<&ExecutionLog>,
    ) -> (ReverseEngineeringResult, Vec<dpr_evidence::SensorDesc>) {
        let _run_span = dpr_telemetry::Span::enter("pipeline");

        // ——— diagnostic frames analysis ———
        let capture = tracer.stage("transport", || {
            let _span = dpr_telemetry::Span::enter("transport");
            analyze_capture(log, self.config.scheme)
        });
        stage_done("transport");

        // ——— screenshot analysis ———
        let (readings, offset) = tracer.stage("ocr", || {
            let _span = dpr_telemetry::Span::enter("ocr");
            let raw_readings = read_frames(frames, &self.config.ocr);
            let offset = match self.config.align {
                Alignment::None => 0,
                Alignment::FixedOffset(o) => o,
                Alignment::ByObd => align_by_obd(log, &raw_readings).unwrap_or(0),
            };
            let retimed = if offset != 0 {
                retime_readings(&raw_readings, offset)
            } else {
                raw_readings
            };
            let readings: Vec<_> = if self.config.use_filter {
                filter_readings(&retimed, &self.config.range_book)
            } else {
                retimed.into_iter().filter(|r| r.value.is_some()).collect()
            };
            (readings, offset)
        });
        stage_done("ocr");

        // Group Y series by (screen, label).
        let mut labels: Vec<(String, String)> = readings
            .iter()
            .map(|r| (r.screen.clone(), r.label.clone()))
            .collect();
        labels.sort();
        labels.dedup();
        let y_series: Vec<LabelSeries> = labels
            .into_iter()
            .map(|key| {
                let series: Vec<(Micros, f64)> = readings
                    .iter()
                    .filter(|r| r.screen == key.0 && r.label == key.1)
                    .filter_map(|r| r.value.map(|v| (r.at, v)))
                    .collect();
                (key, series)
            })
            .collect();

        // ——— request-message analysis: associate ids with labels ———
        let matches = tracer.stage("association", || {
            let _span = dpr_telemetry::Span::enter("association");
            match_series_two_pass(
                &capture.extraction.series,
                &y_series,
                self.config.pair_window,
                self.config.match_threshold,
            )
        });
        stage_done("association");

        // ——— response-message analysis: infer formulas ———
        let mut esvs = tracer.stage("inference", || {
            let _span = dpr_telemetry::Span::enter("inference");
            let mut esvs = Vec::new();
            for m in &matches {
                if m.pairs.len() < self.config.min_pairs {
                    crate::associate::record_candidate(
                        &capture.extraction.series,
                        &y_series,
                        m.series_idx,
                        m.label_idx,
                        m.score,
                        m.pairs.len(),
                        dpr_evidence::CandidateDecision::TooFewPairs,
                    );
                    continue;
                }
                let series = &capture.extraction.series[m.series_idx];
                let ((screen, label), _) = &y_series[m.label_idx];
                if let Some(esv) = self.infer_one(series, screen, label, m) {
                    esvs.push(esv);
                }
            }
            esvs
        });
        stage_done("inference");
        esvs.sort_by_key(|e| e.key);

        // ——— ECR recovery ———
        let ecrs = tracer.stage("ecr", || recover_ecrs(&capture.extraction, execution));

        // Join keys for evidence assembly: which association indices fed
        // each recovered sensor.
        let descs: Vec<dpr_evidence::SensorDesc> = esvs
            .iter()
            .map(|e| {
                let indices = matches
                    .iter()
                    .find(|m| {
                        capture.extraction.series[m.series_idx].key == e.key
                            && y_series[m.label_idx].0 .0 == e.screen
                            && y_series[m.label_idx].0 .1 == e.label
                    })
                    .map(|m| (m.series_idx as u32, m.label_idx as u32));
                let (series_idx, label_idx) = indices.unwrap_or((u32::MAX, u32::MAX));
                dpr_evidence::SensorDesc {
                    key: e.key.to_string(),
                    screen: e.screen.clone(),
                    label: e.label.clone(),
                    kind: if e.has_formula() { "formula" } else { "enumeration" }.to_string(),
                    formula: e.pretty_formula(),
                    series_idx,
                    label_idx,
                    score: dpr_evidence::finite(e.match_score),
                    pairs: e.pairs as u32,
                }
            })
            .collect();

        let result = ReverseEngineeringResult {
            esvs,
            ecrs,
            stats: capture.stats,
            negatives: capture.extraction.negatives,
            alignment_offset_us: offset,
            trace: tracer.finish(),
            evidence: dpr_evidence::EvidenceLedger::default(),
        };
        (result, descs)
    }

    /// Infers the decoding rule for one matched (identifier, label) pair.
    fn infer_one(
        &self,
        series: &dpr_frames::EsvSeries,
        screen: &str,
        label: &str,
        m: &MatchScore,
    ) -> Option<RecoveredEsv> {
        // Robust trim: pairs whose Y came from a neighbouring poll round
        // (or a surviving OCR error) sit far off the underlying relation;
        // fit a quick low-order model and drop large-residual pairs before
        // the expensive inference. This is the pairing-level analogue of
        // the paper's observation (i) in §4.3 about display-lag noise.
        let trimmed = if self.config.use_filter {
            robust_trim(&m.pairs)
        } else {
            m.pairs.clone()
        };
        let m = &MatchScore {
            series_idx: m.series_idx,
            label_idx: m.label_idx,
            score: m.score,
            pairs: trimmed,
        };
        if m.pairs.len() < self.config.min_pairs {
            // The robust trim ate too much of the pairing — record why
            // this accepted candidate still produced no sensor.
            if dpr_evidence::active() {
                dpr_evidence::record(dpr_evidence::Event::Candidate(dpr_evidence::Candidate {
                    series_idx: m.series_idx as u32,
                    label_idx: m.label_idx as u32,
                    key: series.key.to_string(),
                    screen: screen.to_string(),
                    label: label.to_string(),
                    score: dpr_evidence::finite(m.score),
                    pairs: m.pairs.len() as u32,
                    decision: dpr_evidence::CandidateDecision::TooFewPairs,
                }));
            }
            return None;
        }
        // Trim constant second columns: the paper observes that a pinned
        // scale byte collapses a two-variable formula, and GP should then
        // work in one variable.
        let two_cols = m.pairs.iter().any(|(x, _)| x.len() > 1) && {
            let first = m.pairs[0].0.get(1).copied().unwrap_or(0.0);
            m.pairs
                .iter()
                .any(|(x, _)| (x.get(1).copied().unwrap_or(first) - first).abs() > 1e-9)
        };
        let rows: Vec<Vec<f64>> = m
            .pairs
            .iter()
            .map(|(x, _)| {
                if two_cols {
                    vec![x[0], x.get(1).copied().unwrap_or(0.0)]
                } else {
                    vec![x[0]]
                }
            })
            .collect();
        let ys: Vec<f64> = m.pairs.iter().map(|(_, y)| *y).collect();

        let x_ranges: Vec<(f64, f64)> = (0..rows[0].len())
            .map(|c| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for r in &rows {
                    lo = lo.min(r[c]);
                    hi = hi.max(r[c]);
                }
                (lo, hi)
            })
            .collect();

        // Enumeration detection: the displayed value equals the raw byte
        // and takes few small integer values.
        let equal = m
            .pairs
            .iter()
            .filter(|(x, y)| (x[0] - y).abs() < 1e-9)
            .count();
        let mut distinct: Vec<u64> = ys.iter().map(|y| y.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if equal * 10 >= m.pairs.len() * 9
            && distinct.len() <= 12
            && ys.iter().all(|y| y.fract() == 0.0 && (0.0..=20.0).contains(y))
        {
            return Some(RecoveredEsv {
                key: series.key,
                f_type: series.f_type,
                screen: screen.to_string(),
                label: label.to_string(),
                kind: RecoveredKind::Enumeration,
                pairs: m.pairs.len(),
                x_ranges,
                match_score: m.score,
            });
        }

        let data = Dataset::new(rows, ys).ok()?;
        // Deterministic per-signal seed so each ESV's GP run is
        // reproducible independently of processing order.
        let seed = self.config.gp.seed ^ key_hash(series.key);
        let mut engine = SymbolicRegressor::new(GpConfig {
            seed,
            ..self.config.gp.clone()
        });
        // Tag the fit's lineage event with the sensor it belongs to.
        let model =
            dpr_evidence::with_subject(&series.key.to_string(), || engine.fit(&data));
        Some(RecoveredEsv {
            key: series.key,
            f_type: series.f_type,
            screen: screen.to_string(),
            label: label.to_string(),
            kind: RecoveredKind::Formula(model),
            pairs: m.pairs.len(),
            x_ranges,
            match_score: m.score,
        })
    }
}

/// Drops pairs more than six residual-MADs away from a quick low-order
/// fit. Keeps the input unchanged when the fit fails or the trim would
/// remove more than a third of the data.
fn robust_trim(pairs: &[(Vec<f64>, f64)]) -> Vec<(Vec<f64>, f64)> {
    let mut current = pairs.to_vec();
    // Iterate: an outlier cluster can bend the first fit enough to mask
    // part of itself; re-fitting on the kept set unmasks the rest.
    for _ in 0..3 {
        if current.len() < 12 {
            break;
        }
        let rows: Vec<Vec<f64>> = current.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<f64> = current.iter().map(|(_, y)| *y).collect();
        let Ok(data) = Dataset::new(rows, ys) else {
            break;
        };
        let Some(model) = PolynomialFit.fit(&data) else {
            break;
        };
        let residuals: Vec<f64> = current
            .iter()
            .map(|(x, y)| (model.predict(x) - y).abs())
            .collect();
        let mut sorted = residuals.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mad = sorted[sorted.len() / 2].max(1e-9);
        let kept: Vec<(Vec<f64>, f64)> = current
            .iter()
            .zip(&residuals)
            .filter(|(_, r)| **r <= 6.0 * mad)
            .map(|(p, _)| p.clone())
            .collect();
        if kept.len() == current.len() {
            break; // fixpoint
        }
        if kept.len() * 3 < pairs.len() * 2 {
            break; // refuse to throw away more than a third of the data
        }
        current = kept;
    }
    current
}

fn key_hash(key: dpr_frames::SourceKey) -> u64 {
    use dpr_frames::SourceKey::*;
    let raw = match key {
        UdsDid(d) => 0x1_0000u64 + u64::from(d),
        Kwp { local_id, slot } => 0x2_0000u64 + (u64::from(local_id) << 4) + slot as u64,
        Obd(p) => 0x3_0000u64 + u64::from(p),
    };
    let mut z = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Recovers control records, attaching the active-test label clicked just
/// before each procedure when the execution log is available.
fn recover_ecrs(
    extraction: &dpr_frames::Extraction,
    execution: Option<&ExecutionLog>,
) -> Vec<RecoveredEcr> {
    let nav = ["[Back]", "[Next Page]", "[Prev Page]", "wait", "Read Data Stream", "Active Test"];
    extraction
        .procedures
        .iter()
        .map(|p| {
            // Find the adjustment time for this procedure.
            let adjust_at = extraction
                .ecrs
                .iter()
                .find(|e| e.target == p.target && e.param == 0x03 && e.state == p.state)
                .map(|e| e.at);
            let label = match (execution, adjust_at) {
                (Some(log), Some(at)) => log
                    .entries
                    .iter()
                    .rfind(|e| e.at <= at && !nav.contains(&e.action.as_str()))
                    .map(|e| e.action.clone()),
                _ => None,
            };
            RecoveredEcr {
                target: p.target,
                state: p.state.clone(),
                complete_pattern: p.complete_pattern,
                label,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_cps::{collect_vehicle, CollectConfig};
    use dpr_tool::{ToolProfile, ToolSession};
    use dpr_vehicle::profiles::{self, CarId};

    fn quick_collect(id: CarId, seed: u64) -> dpr_cps::CollectionReport {
        let car = profiles::build(id, seed);
        let spec = profiles::spec(id);
        let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
        collect_vehicle(
            session,
            &CollectConfig {
                read_wait: Micros::from_secs(4),
                ..CollectConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn pipeline_recovers_esvs_on_a_small_car() {
        // Car M: 4 formula ESVs + 14 enums — small enough for a unit test.
        let report = quick_collect(CarId::M, 31);
        let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 31));
        let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));

        assert!(
            result.formula_esvs().count() >= 3,
            "recovered only {} formula ESVs",
            result.formula_esvs().count()
        );
        assert!(
            result.enum_esvs().count() >= 10,
            "recovered only {} enum ESVs",
            result.enum_esvs().count()
        );
        // Every recovered ESV carries a semantic label.
        assert!(result.esvs.iter().all(|e| !e.label.is_empty()));
        // Tab. 9 style stats were tallied.
        assert!(result.stats.total() > 0);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let report = quick_collect(CarId::M, 5);
        let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 5));
        let a = pipeline.analyze(&report.log, &report.frames, None);
        let b = pipeline.analyze(&report.log, &report.frames, None);
        assert_eq!(a, b);
    }

    #[test]
    fn ecr_recovery_labels_components() {
        // Car O: 4 ECRs over UDS 0x2F.
        let report = quick_collect(CarId::O, 13);
        let pipeline = DpReverser::new(PipelineConfig::fast(Scheme::IsoTp, 13));
        let result = pipeline.analyze(&report.log, &report.frames, Some(&report.execution));
        assert_eq!(result.ecrs.len(), 4, "{:?}", result.ecrs);
        assert!(result.ecrs.iter().all(|e| e.complete_pattern));
        assert!(result.ecrs.iter().all(|e| e.label.is_some()));
    }
}
