//! Associating traffic series with screen series.
//!
//! The frames analysis yields an `X` series per identifier; the screenshot
//! analysis yields a `Y` series per screen label. Before formulas can be
//! inferred, each label must be matched to the identifier that feeds it
//! (paper §3.4: the semantic meaning of a DID *is* the text shown on the
//! UI). We match by value correlation: the raw values and the displayed
//! values co-move through the (unknown) formula, so the label whose series
//! best correlates with an identifier's series — over the features `X0`,
//! `X1`, and `X0·X1` — is its meaning. Assignment is greedy
//! highest-score-first, one label per identifier.

use dpr_can::Micros;
use dpr_frames::EsvSeries;
use serde::{Deserialize, Serialize};

/// A displayed-value series: the `(screen, label)` scope plus its
/// timestamped readings.
pub type LabelSeries = ((String, String), Vec<(Micros, f64)>);

/// One candidate association with its evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchScore {
    /// Index into the X-series list.
    pub series_idx: usize,
    /// Index into the Y-series list.
    pub label_idx: usize,
    /// Correlation-based confidence in `0..=1`.
    pub score: f64,
    /// The paired samples `(x values, y)` used for inference.
    pub pairs: Vec<(Vec<f64>, f64)>,
}

/// Records one alignment candidate's decision on the evidence log
/// (no-op outside a [`dpr_evidence::capture`]). Decisions recorded
/// later for the same `(series_idx, label_idx)` supersede earlier
/// ones when the ledger is assembled, so the relaxed second pass can
/// overwrite a pass-one `below_threshold` with `accepted_rescued`.
pub(crate) fn record_candidate(
    xs: &[EsvSeries],
    ys: &[LabelSeries],
    series_idx: usize,
    label_idx: usize,
    score: f64,
    pairs: usize,
    decision: dpr_evidence::CandidateDecision,
) {
    if !dpr_evidence::active() {
        return;
    }
    let ((screen, label), _) = &ys[label_idx];
    dpr_evidence::record(dpr_evidence::Event::Candidate(dpr_evidence::Candidate {
        series_idx: series_idx as u32,
        label_idx: label_idx as u32,
        key: xs[series_idx].key.to_string(),
        screen: screen.clone(),
        label: label.clone(),
        score: dpr_evidence::finite(score),
        pairs: pairs as u32,
        decision,
    }));
}

/// Average-rank transform for Spearman correlation.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation magnitude — robust to the residual OCR
/// outliers that slip past the two-stage filter.
fn abs_spearman(xs: &[f64], ys: &[f64]) -> f64 {
    abs_pearson(&ranks(xs), &ranks(ys))
}

/// The stronger of Pearson and Spearman magnitudes.
fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    abs_pearson(xs, ys).max(abs_spearman(xs, ys))
}

/// Pearson correlation magnitude; 0 when either side is constant.
fn abs_pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 3 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-12 || vy < 1e-12 {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).abs()
}

/// Builds the `(X, Y)` pairs for one candidate: each X sample takes the
/// nearest-in-time Y value within `window` (paper §3.5 Step 1).
pub(crate) fn pair_series(
    x: &EsvSeries,
    y: &[(Micros, f64)],
    window: Micros,
) -> Vec<(Vec<f64>, f64)> {
    let mut out = Vec::new();
    if y.is_empty() {
        return out;
    }
    let mut j = 0usize;
    for (t, vals) in &x.samples {
        // Advance j to the closest y timestamp (y is time-sorted).
        while j + 1 < y.len() && y[j + 1].0.abs_diff(*t) <= y[j].0.abs_diff(*t) {
            j += 1;
        }
        if y[j].0.abs_diff(*t) <= window {
            let mut cols = vals.clone();
            cols.truncate(2);
            out.push((cols, y[j].1));
        }
    }
    out
}

/// Scores one candidate pairing: the best absolute Pearson correlation
/// over the features `X0`, `X1`, `X0·X1`, with two special cases — exact
/// equality (enumerations) scores 1.0, and matching constants score 0.35
/// (weak, but assignable when nothing else claims the label).
pub(crate) fn score_pairs(pairs: &[(Vec<f64>, f64)]) -> f64 {
    if pairs.len() < 3 {
        return 0.0;
    }
    let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
    let x0: Vec<f64> = pairs.iter().map(|(x, _)| x[0]).collect();
    let equal = pairs
        .iter()
        .filter(|(x, y)| (x[0] - y).abs() < 1e-9)
        .count();
    if equal * 10 >= pairs.len() * 9 {
        return 1.0;
    }
    let mut best = correlation(&x0, &ys);
    if pairs[0].0.len() > 1 {
        let x1: Vec<f64> = pairs.iter().map(|(x, _)| x[1]).collect();
        let prod: Vec<f64> = pairs.iter().map(|(x, _)| x[0] * x[1]).collect();
        best = best.max(correlation(&x1, &ys)).max(correlation(&prod, &ys));
    }
    if best > 0.0 {
        return best;
    }
    // Both sides constant: weak compatibility signal.
    let y_const = ys.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9);
    let x_const = x0.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9);
    if y_const && x_const {
        0.35
    } else {
        0.0
    }
}

/// Greedy bipartite matching between X series and Y label series. Returns
/// accepted matches, highest score first; each series and each label is
/// used at most once, and scores below `threshold` are discarded.
pub fn match_series(
    xs: &[EsvSeries],
    ys: &[LabelSeries],
    window: Micros,
    threshold: f64,
) -> Vec<MatchScore> {
    let mut candidates: Vec<MatchScore> = Vec::new();
    for (si, x) in xs.iter().enumerate() {
        for (li, (_, y)) in ys.iter().enumerate() {
            let pairs = pair_series(x, y, window);
            let score = score_pairs(&pairs);
            dpr_telemetry::counter("pipeline.pairs_formed").inc(pairs.len() as u64);
            if score >= threshold {
                dpr_telemetry::counter("pipeline.matches_above_threshold").inc(1);
                candidates.push(MatchScore {
                    series_idx: si,
                    label_idx: li,
                    score,
                    pairs,
                });
            } else {
                dpr_telemetry::counter("pipeline.matches_below_threshold").inc(1);
                record_candidate(
                    xs,
                    ys,
                    si,
                    li,
                    score,
                    pairs.len(),
                    dpr_evidence::CandidateDecision::BelowThreshold,
                );
            }
        }
    }
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut used_series = vec![false; xs.len()];
    let mut used_labels = vec![false; ys.len()];
    let mut accepted = Vec::new();
    for c in candidates {
        if used_series[c.series_idx] || used_labels[c.label_idx] {
            let decision = if used_series[c.series_idx] {
                dpr_evidence::CandidateDecision::SeriesClaimed
            } else {
                dpr_evidence::CandidateDecision::LabelClaimed
            };
            record_candidate(xs, ys, c.series_idx, c.label_idx, c.score, c.pairs.len(), decision);
            continue;
        }
        used_series[c.series_idx] = true;
        used_labels[c.label_idx] = true;
        record_candidate(
            xs,
            ys,
            c.series_idx,
            c.label_idx,
            c.score,
            c.pairs.len(),
            dpr_evidence::CandidateDecision::AcceptedStrict,
        );
        accepted.push(c);
    }
    accepted
}

/// Two-pass matching: the strict pass at `threshold`, then a relaxed pass
/// (0.6 × threshold) over whatever is left — a still-unclaimed label and
/// series that prefer each other are almost certainly a genuine pair whose
/// correlation was depressed by residual noise.
pub fn match_series_two_pass(
    xs: &[EsvSeries],
    ys: &[LabelSeries],
    window: Micros,
    threshold: f64,
) -> Vec<MatchScore> {
    let mut accepted = match_series(xs, ys, window, threshold);
    let mut used_series = vec![false; xs.len()];
    let mut used_labels = vec![false; ys.len()];
    for m in &accepted {
        used_series[m.series_idx] = true;
        used_labels[m.label_idx] = true;
    }
    let mut second: Vec<MatchScore> = Vec::new();
    for (si, x) in xs.iter().enumerate() {
        if used_series[si] {
            continue;
        }
        for (li, (_, y)) in ys.iter().enumerate() {
            if used_labels[li] {
                continue;
            }
            let pairs = pair_series(x, y, window);
            let score = score_pairs(&pairs);
            if score >= threshold * 0.6 {
                second.push(MatchScore {
                    series_idx: si,
                    label_idx: li,
                    score,
                    pairs,
                });
            }
        }
    }
    second.sort_by(|a, b| b.score.total_cmp(&a.score));
    for c in second {
        if used_series[c.series_idx] || used_labels[c.label_idx] {
            let decision = if used_series[c.series_idx] {
                dpr_evidence::CandidateDecision::SeriesClaimed
            } else {
                dpr_evidence::CandidateDecision::LabelClaimed
            };
            record_candidate(xs, ys, c.series_idx, c.label_idx, c.score, c.pairs.len(), decision);
            continue;
        }
        used_series[c.series_idx] = true;
        used_labels[c.label_idx] = true;
        dpr_telemetry::counter("pipeline.matches_rescued").inc(1);
        record_candidate(
            xs,
            ys,
            c.series_idx,
            c.label_idx,
            c.score,
            c.pairs.len(),
            dpr_evidence::CandidateDecision::AcceptedRescued,
        );
        accepted.push(c);
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_frames::SourceKey;

    fn x_series(key: u16, f: impl Fn(usize) -> Vec<f64>) -> EsvSeries {
        EsvSeries {
            key: SourceKey::UdsDid(key),
            f_type: None,
            samples: (0..30)
                .map(|i| (Micros::from_millis(i as u64 * 100), f(i)))
                .collect(),
        }
    }

    fn y_series(f: impl Fn(usize) -> f64) -> Vec<(Micros, f64)> {
        (0..30)
            .map(|i| (Micros::from_millis(i as u64 * 100 + 20), f(i)))
            .collect()
    }

    #[test]
    fn pearson_detects_linear_relation() {
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!(abs_pearson(&xs, &ys) > 0.999);
        let flat = vec![5.0; 20];
        assert_eq!(abs_pearson(&xs, &flat), 0.0);
    }

    #[test]
    fn matching_assigns_correct_labels() {
        // DID 1 drives "Speed" (y = x), DID 2 drives "Coolant" (y = 0.5x).
        let xs = vec![
            x_series(1, |i| vec![(i * 7 % 100) as f64]),
            x_series(2, |i| vec![(i * 13 % 90) as f64]),
        ];
        let ys = vec![
            (
                ("E".to_string(), "Speed".to_string()),
                y_series(|i| (i * 7 % 100) as f64),
            ),
            (
                ("E".to_string(), "Coolant".to_string()),
                y_series(|i| (i * 13 % 90) as f64 * 0.5),
            ),
        ];
        let matches = match_series(&xs, &ys, Micros::from_millis(500), 0.5);
        assert_eq!(matches.len(), 2);
        for m in &matches {
            assert_eq!(m.series_idx, m.label_idx, "matched to the wrong label");
            assert!(m.score > 0.9);
        }
    }

    #[test]
    fn enumeration_equality_scores_perfectly() {
        let pairs: Vec<(Vec<f64>, f64)> = (0..20)
            .map(|i| (vec![(i % 2) as f64], (i % 2) as f64))
            .collect();
        assert_eq!(score_pairs(&pairs), 1.0);
    }

    #[test]
    fn product_formula_detected_via_cross_feature() {
        // y = x0*x1/5 where both vary and neither alone correlates
        // strongly.
        let pairs: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let x0 = (100 + (i * 37) % 120) as f64;
                let x1 = (10 + (i * 23) % 20) as f64;
                (vec![x0, x1], x0 * x1 / 5.0)
            })
            .collect();
        assert!(score_pairs(&pairs) > 0.9);
    }

    #[test]
    fn unrelated_series_rejected() {
        let xs = vec![x_series(1, |i| vec![(i * 7 % 100) as f64])];
        // Deterministic "noise" uncorrelated with x.
        let ys = vec![(
            ("E".to_string(), "Noise".to_string()),
            y_series(|i| ((i * 6151 + 13) % 97) as f64),
        )];
        let matches = match_series(&xs, &ys, Micros::from_millis(500), 0.6);
        assert!(matches.is_empty(), "{matches:?}");
    }

    #[test]
    fn pairing_respects_the_window() {
        let x = x_series(1, |i| vec![i as f64]);
        // Y series 10 s away from every X sample.
        let y: Vec<(Micros, f64)> = (0..30)
            .map(|i| (Micros::from_secs(100 + i as u64), i as f64))
            .collect();
        let pairs = pair_series(&x, &y, Micros::from_millis(500));
        assert!(pairs.is_empty());
    }

    #[test]
    fn one_label_claimed_once() {
        // Two identical X series compete for one label; only one wins.
        let xs = vec![
            x_series(1, |i| vec![(i % 50) as f64]),
            x_series(2, |i| vec![(i % 50) as f64]),
        ];
        let ys = vec![(
            ("E".to_string(), "Speed".to_string()),
            y_series(|i| (i % 50) as f64),
        )];
        let matches = match_series(&xs, &ys, Micros::from_millis(500), 0.5);
        assert_eq!(matches.len(), 1);
    }

    /// Candidate decisions recorded under a capture, keyed by indices.
    fn decisions(
        events: &[dpr_evidence::Event],
    ) -> Vec<(u32, u32, &'static str)> {
        events
            .iter()
            .filter_map(|e| match e {
                dpr_evidence::Event::Candidate(c) => {
                    Some((c.series_idx, c.label_idx, c.decision.code()))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn rejection_below_threshold_lands_on_the_ledger() {
        let xs = vec![x_series(1, |i| vec![(i * 7 % 100) as f64])];
        let ys = vec![(
            ("E".to_string(), "Noise".to_string()),
            y_series(|i| ((i * 6151 + 13) % 97) as f64),
        )];
        let (matches, events) = dpr_evidence::capture(|| {
            match_series_two_pass(&xs, &ys, Micros::from_millis(500), 0.9)
        });
        assert!(matches.is_empty());
        let recorded = decisions(&events);
        assert!(
            recorded.contains(&(0, 0, "below_threshold")),
            "{recorded:?}"
        );
        // The relaxed pass didn't rescue it, so no later decision
        // supersedes the rejection.
        assert_eq!(recorded.last().unwrap().2, "below_threshold");
    }

    #[test]
    fn rejection_label_claimed_lands_on_the_ledger() {
        // Two identical series compete for one label: the greedy loser's
        // label is already claimed when its turn comes.
        let xs = vec![
            x_series(1, |i| vec![(i % 50) as f64]),
            x_series(2, |i| vec![(i % 50) as f64]),
        ];
        let ys = vec![(
            ("E".to_string(), "Speed".to_string()),
            y_series(|i| (i % 50) as f64),
        )];
        let (matches, events) = dpr_evidence::capture(|| {
            match_series_two_pass(&xs, &ys, Micros::from_millis(500), 0.5)
        });
        assert_eq!(matches.len(), 1);
        let recorded = decisions(&events);
        let winner = matches[0].series_idx as u32;
        let loser = 1 - winner;
        assert!(
            recorded.contains(&(winner, 0, "accepted_strict")),
            "{recorded:?}"
        );
        assert!(
            recorded.contains(&(loser, 0, "label_claimed")),
            "{recorded:?}"
        );
    }

    #[test]
    fn rescued_match_supersedes_its_first_pass_rejection() {
        // A constant pair scores 0.35: below the 0.5 strict threshold,
        // above the 0.3 relaxed one — rejected in pass one, rescued in
        // pass two. The rescue is recorded *after* the rejection, so the
        // ledger's last-decision-wins join keeps the acceptance.
        let xs = vec![x_series(1, |_| vec![5.0])];
        let ys = vec![(
            ("E".to_string(), "Battery".to_string()),
            y_series(|_| 12.0),
        )];
        let (matches, events) = dpr_evidence::capture(|| {
            match_series_two_pass(&xs, &ys, Micros::from_millis(500), 0.5)
        });
        assert_eq!(matches.len(), 1, "{matches:?}");
        let recorded = decisions(&events);
        let first = recorded
            .iter()
            .position(|d| *d == (0, 0, "below_threshold"))
            .expect("pass-one rejection recorded");
        let second = recorded
            .iter()
            .position(|d| *d == (0, 0, "accepted_rescued"))
            .expect("pass-two rescue recorded");
        assert!(first < second, "{recorded:?}");
    }
}
