//! Rendering recovered protocols as human-readable reports.
//!
//! The paper's defender use case (§2.1) needs the recovered protocol in a
//! form security engineers can review and turn into filtering rules; the
//! attacker write-up (§9.3) needs the same thing as a work sheet. This
//! module renders a [`ReverseEngineeringResult`] (and optionally its
//! [`PrecisionReport`](crate::PrecisionReport) evaluation) as Markdown.

use std::fmt::Write as _;

use dpr_frames::EcrTarget;

use crate::result::{RecoveredKind, ReverseEngineeringResult};

/// Renders the result as a Markdown report: one table of readable signals
/// (identifier, semantics, decoding rule) and one of control records.
pub fn to_markdown(result: &ReverseEngineeringResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Reverse-engineered diagnostic protocol: {title}\n");
    let _ = writeln!(
        out,
        "Capture: {} frames ({:.1}% single, {:.1}% multi-frame), {} negative responses, clock offset {} µs.\n",
        result.stats.total(),
        result.stats.single_share() * 100.0,
        result.stats.multi_share() * 100.0,
        result.negatives,
        result.alignment_offset_us,
    );

    let _ = writeln!(out, "## Readable signals ({})\n", result.esvs.len());
    let _ = writeln!(out, "| identifier | semantics | screen | decoding rule | pairs | confidence |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for esv in &result.esvs {
        let rule = match &esv.kind {
            RecoveredKind::Enumeration => "enumeration (raw value)".to_string(),
            RecoveredKind::Formula(_) => esv.pretty_formula(),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | `{}` | {} | {:.2} |",
            esv.key, esv.label, esv.screen, rule, esv.pairs, esv.match_score
        );
    }

    let _ = writeln!(out, "\n## Control records ({})\n", result.ecrs.len());
    if result.ecrs.is_empty() {
        let _ = writeln!(out, "none observed");
    } else {
        let _ = writeln!(out, "| target | component | control state | procedure |");
        let _ = writeln!(out, "|---|---|---|---|");
        for ecr in &result.ecrs {
            let target = match ecr.target {
                EcrTarget::Id2F(id) => format!("0x2F id 0x{id:04X}"),
                EcrTarget::Local30(id) => format!("0x30 local 0x{id:02X}"),
            };
            let state: Vec<String> = ecr.state.iter().map(|b| format!("{b:02X}")).collect();
            let _ = writeln!(
                out,
                "| {} | {} | `{}` | {} |",
                target,
                ecr.label.as_deref().unwrap_or("?"),
                state.join(" "),
                if ecr.complete_pattern {
                    "freeze → adjust → return"
                } else {
                    "partial"
                }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::RecoveredEsv;
    use dpr_frames::{FrameStats, SourceKey};

    fn sample_result() -> ReverseEngineeringResult {
        ReverseEngineeringResult {
            esvs: vec![RecoveredEsv {
                key: SourceKey::UdsDid(0xF40D),
                f_type: None,
                screen: "Engine - Data Stream p1".into(),
                label: "Vehicle Speed".into(),
                kind: RecoveredKind::Enumeration,
                pairs: 40,
                x_ranges: vec![(0.0, 200.0)],
                match_score: 1.0,
            }],
            ecrs: vec![crate::RecoveredEcr {
                target: EcrTarget::Id2F(0x0950),
                state: vec![0x05, 0x01, 0x00, 0x00],
                complete_pattern: true,
                label: Some("Fog Light Left".into()),
            }],
            stats: FrameStats {
                single: 55,
                multi: 32,
                control: 13,
                unknown: 0,
            },
            negatives: 2,
            alignment_offset_us: 0,
            trace: Default::default(),
            evidence: Default::default(),
        }
    }

    #[test]
    fn markdown_contains_both_tables() {
        let md = to_markdown(&sample_result(), "Test Car");
        assert!(md.contains("# Reverse-engineered diagnostic protocol: Test Car"));
        assert!(md.contains("| DID 0xF40D | Vehicle Speed |"));
        assert!(md.contains("enumeration (raw value)"));
        assert!(md.contains("| 0x2F id 0x0950 | Fog Light Left | `05 01 00 00` | freeze → adjust → return |"));
        assert!(md.contains("55.0% single"));
    }

    #[test]
    fn empty_control_section_renders() {
        let mut result = sample_result();
        result.ecrs.clear();
        let md = to_markdown(&result, "X");
        assert!(md.contains("none observed"));
    }
}
