//! Transport-layer errors.

use std::fmt;

/// Errors raised by the transport state machines and stream decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The payload exceeds what the scheme can express (ISO-TP classic
    /// addressing carries at most 4095 bytes).
    PayloadTooLarge {
        /// Requested payload length.
        len: usize,
        /// Maximum the scheme supports.
        max: usize,
    },
    /// Attempted to send an empty payload.
    EmptyPayload,
    /// A consecutive/data frame arrived with the wrong sequence number.
    SequenceMismatch {
        /// Sequence number the receiver expected.
        expected: u8,
        /// Sequence number actually observed.
        got: u8,
    },
    /// A frame arrived that is not valid in the current state
    /// (e.g. a consecutive frame with no first frame in flight).
    UnexpectedFrame {
        /// Short description of the offending frame kind.
        kind: &'static str,
        /// The state the machine was in.
        state: &'static str,
    },
    /// The frame bytes do not parse as any frame of the scheme.
    MalformedFrame(String),
    /// A peer signalled buffer overflow (ISO-TP flow status `OVFLW`).
    Overflow,
    /// A timer expired while waiting for the peer.
    Timeout {
        /// Which protocol timer expired (e.g. `"N_Bs"`).
        timer: &'static str,
    },
    /// The endpoint is already busy transmitting a message.
    Busy,
    /// A VW TP 2.0 operation needs an open channel but none is established.
    ChannelNotOpen,
}

impl TransportError {
    /// The stable error-kind tag the telemetry counters
    /// (`transport.<scheme>.reject.<kind>`) and the evidence ledger's
    /// reject events share.
    pub fn kind(&self) -> &'static str {
        match self {
            TransportError::PayloadTooLarge { .. } => "payload_too_large",
            TransportError::EmptyPayload => "empty_payload",
            TransportError::SequenceMismatch { .. } => "sequence_mismatch",
            TransportError::UnexpectedFrame { .. } => "unexpected_frame",
            TransportError::MalformedFrame(_) => "malformed_frame",
            TransportError::Overflow => "overflow",
            TransportError::Timeout { .. } => "timeout",
            TransportError::Busy => "busy",
            TransportError::ChannelNotOpen => "channel_not_open",
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds scheme maximum of {max}")
            }
            TransportError::EmptyPayload => write!(f, "cannot send an empty payload"),
            TransportError::SequenceMismatch { expected, got } => {
                write!(f, "sequence mismatch: expected {expected}, got {got}")
            }
            TransportError::UnexpectedFrame { kind, state } => {
                write!(f, "unexpected {kind} frame in state {state}")
            }
            TransportError::MalformedFrame(msg) => write!(f, "malformed frame: {msg}"),
            TransportError::Overflow => write!(f, "peer signalled receive buffer overflow"),
            TransportError::Timeout { timer } => write!(f, "protocol timer {timer} expired"),
            TransportError::Busy => write!(f, "endpoint is busy with a previous transmission"),
            TransportError::ChannelNotOpen => {
                write!(f, "transport channel is not open (VW TP 2.0 setup missing)")
            }
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let samples: Vec<TransportError> = vec![
            TransportError::PayloadTooLarge { len: 9000, max: 4095 },
            TransportError::EmptyPayload,
            TransportError::SequenceMismatch { expected: 3, got: 5 },
            TransportError::UnexpectedFrame { kind: "consecutive", state: "idle" },
            TransportError::MalformedFrame("empty data".into()),
            TransportError::Overflow,
            TransportError::Timeout { timer: "N_Bs" },
            TransportError::Busy,
            TransportError::ChannelNotOpen,
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
            // Kinds are snake_case identifiers, fit for metric names.
            let kind = e.kind();
            assert!(kind.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{kind}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TransportError>();
    }
}
