//! Transport/network-layer protocols carrying diagnostic messages over CAN.
//!
//! A diagnostic message (a KWP 2000 or UDS request/response) is often longer
//! than the 8 data bytes of a classic CAN frame. The paper's Tab. 9 measures
//! that 32% of UDS frames and 75.2% of KWP 2000 frames belong to multi-frame
//! messages — without the transport layer implemented here, the
//! reverse-engineering pipeline cannot even see the payloads it analyzes.
//!
//! Three schemes from the paper are implemented:
//!
//! * [`isotp`] — ISO 15765-2 ("DoCAN"): single/first/consecutive/flow-control
//!   frames, block-size and STmin pacing. Used by UDS, CAN-based KWP 2000,
//!   and OBD-II.
//! * [`vwtp`] — VW TP 2.0: channel setup/parameter frames plus sequenced
//!   data-transmission frames whose *opcode* (not a length field) marks the
//!   last frame of a message. Used by Volkswagen-group KWP 2000 cars.
//! * [`bmw`] — the raw scheme the paper observed on BMW and Mini Cooper:
//!   byte 0 of every frame is the target ECU id and the remaining bytes are
//!   payload.
//!
//! Each scheme offers two faces:
//!
//! * a live [`Endpoint`] state machine (segmentation, pacing, flow control)
//!   used by the simulated vehicle and diagnostic tool, and
//! * an offline *stream decoder* that reassembles payloads from a sniffed
//!   frame sequence — the code path the paper's "diagnostic frames analysis"
//!   module exercises (its Step 2).
//!
//! # Example: ISO-TP round trip over a simulated bus
//!
//! ```
//! use dpr_can::{CanBus, CanId, Micros};
//! use dpr_transport::isotp::IsoTpEndpoint;
//! use dpr_transport::{pump, Endpoint};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut bus = CanBus::new();
//! let tool_node = bus.attach("tool");
//! let ecu_node = bus.attach("ecu");
//!
//! let req_id = CanId::standard(0x7E0)?;
//! let rsp_id = CanId::standard(0x7E8)?;
//! let mut tool = IsoTpEndpoint::new(req_id, rsp_id);
//! let mut ecu = IsoTpEndpoint::new(rsp_id, req_id);
//!
//! let long_request: Vec<u8> = (0..40).collect();
//! tool.send(&long_request, Micros::ZERO)?;
//! pump(&mut bus, &mut [(tool_node, &mut tool), (ecu_node, &mut ecu)])?;
//!
//! assert_eq!(ecu.receive().as_deref(), Some(&long_request[..]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmw;
mod endpoint;
mod error;
pub mod isotp;
pub mod vwtp;

pub use endpoint::{pump, Endpoint, OutgoingFrame};
pub use error::TransportError;

/// Books one reassembly reject under the per-kind taxonomy: bumps the
/// `transport.<scheme>.reject.<kind>` counter and, when an evidence
/// capture is active, records the matching
/// [`ReassemblyReject`](dpr_evidence::ReassemblyReject) event — the
/// two views agree by construction.
///
/// `kind` is a [`TransportError::kind`] tag, or the pseudo-kind
/// `superseded` for an in-flight reassembly displaced by a new
/// single/first frame.
pub(crate) fn reject(scheme: &'static str, kind: &'static str) {
    dpr_telemetry::counter(&format!("transport.{scheme}.reject.{kind}")).inc(1);
    if dpr_evidence::active() {
        dpr_evidence::record(dpr_evidence::Event::ReassemblyReject(
            dpr_evidence::ReassemblyReject {
                scheme: scheme.to_string(),
                kind: kind.to_string(),
                id: None,
                at_us: None,
            },
        ));
    }
}
