//! VW TP 2.0, the Volkswagen-group transport protocol.
//!
//! VW TP 2.0 carries KWP 2000 on Volkswagen-group vehicles (the paper's
//! Cars B and C). Unlike ISO-TP it is channel-oriented:
//!
//! 1. the tester broadcasts a **channel setup** request on id `0x200`
//!    naming the destination ECU; the ECU answers with the CAN ids the data
//!    channel will use;
//! 2. both sides exchange **channel parameters** (timing, block size);
//! 3. **data-transmission frames** carry the payload. Byte 0 packs a 4-bit
//!    opcode and a 4-bit sequence number. Crucially for the paper's Step 2,
//!    data frames carry *no length field* — the opcode alone
//!    (`0x1`/`0x3` = "last frame") marks message boundaries, so the sniffer
//!    must concatenate chunks until it sees a last-frame opcode;
//! 4. the receiver acknowledges blocks with **ACK** frames.
//!
//! The paper's screening step removes broadcast, channel-setup, and
//! channel-parameter frames and keeps only data-transmission frames; the
//! [`VwTpStreamDecoder`] here implements exactly the opcode-driven
//! reassembly the paper describes.

use dpr_can::{CanFrame, CanId, Micros};
use serde::{Deserialize, Serialize};

use crate::{Endpoint, OutgoingFrame, TransportError};

/// The broadcast identifier used for channel setup requests.
pub const SETUP_BROADCAST_ID: u16 = 0x200;
/// Payload bytes per data frame (8 minus the opcode/sequence byte).
pub const DATA_CHUNK: usize = 7;
/// Maximum payload we accept for one message (generous; VW TP has no
/// intrinsic 12-bit limit like ISO-TP).
pub const MAX_VWTP_PAYLOAD: usize = 16 * 1024;
/// How many data frames the sender emits before expecting an ACK.
pub const ACK_INTERVAL: u8 = 4;

/// High-nibble opcodes of VW TP 2.0 frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VwOpcode {
    /// More data follows; an ACK is expected after this frame.
    DataExpectAck,
    /// Last frame of the message; an ACK is expected.
    DataLastExpectAck,
    /// More data follows; no ACK expected.
    Data,
    /// Last frame of the message; no ACK expected.
    DataLast,
    /// Acknowledgement, ready for more.
    Ack,
    /// Acknowledgement, not ready (sender must pause).
    AckNotReady,
    /// Channel setup request (sent on the broadcast id).
    ChannelSetupRequest,
    /// Positive channel setup response.
    ChannelSetupResponse,
    /// Channel parameters request.
    ParamsRequest,
    /// Channel parameters response.
    ParamsResponse,
    /// Channel test (keep-alive).
    ChannelTest,
    /// Disconnect.
    Disconnect,
}

impl VwOpcode {
    /// Parses the first byte of a VW TP 2.0 frame into its opcode.
    pub fn from_first_byte(b: u8) -> Option<VwOpcode> {
        match b >> 4 {
            0x0 => Some(VwOpcode::DataExpectAck),
            0x1 => Some(VwOpcode::DataLastExpectAck),
            0x2 => Some(VwOpcode::Data),
            0x3 => Some(VwOpcode::DataLast),
            0x9 => Some(VwOpcode::Ack),
            0xB => Some(VwOpcode::AckNotReady),
            0xA => match b {
                0xA0 => Some(VwOpcode::ParamsRequest),
                0xA1 => Some(VwOpcode::ParamsResponse),
                0xA3 => Some(VwOpcode::ChannelTest),
                0xA8 => Some(VwOpcode::Disconnect),
                _ => None,
            },
            0xC => Some(VwOpcode::ChannelSetupRequest),
            0xD => Some(VwOpcode::ChannelSetupResponse),
            _ => None,
        }
    }

    /// Whether the frame carries message payload (the only kind the paper's
    /// screening step keeps).
    pub fn is_data(self) -> bool {
        matches!(
            self,
            VwOpcode::DataExpectAck
                | VwOpcode::DataLastExpectAck
                | VwOpcode::Data
                | VwOpcode::DataLast
        )
    }

    /// Whether a data frame with this opcode ends its message.
    pub fn is_last(self) -> bool {
        matches!(self, VwOpcode::DataLastExpectAck | VwOpcode::DataLast)
    }

    /// Whether the sender expects an ACK after this data frame.
    pub fn expects_ack(self) -> bool {
        matches!(self, VwOpcode::DataExpectAck | VwOpcode::DataLastExpectAck)
    }
}

/// Classifies a sniffed frame for the screening step.
///
/// Returns `None` for frames that do not parse as VW TP 2.0 at all.
pub fn classify(frame: &CanFrame) -> Option<VwOpcode> {
    if frame.id().raw() == u32::from(SETUP_BROADCAST_ID) {
        return Some(VwOpcode::ChannelSetupRequest);
    }
    frame.data().first().and_then(|&b| VwOpcode::from_first_byte(b))
}

#[derive(Debug)]
enum ChannelState {
    /// No channel; the initiator must set one up.
    Closed,
    /// Setup request sent, waiting for the response.
    SettingUp,
    /// Channel established; data may flow.
    Open,
}

#[derive(Debug)]
struct SendJob {
    payload: Vec<u8>,
    offset: usize,
    awaiting_ack: bool,
}

/// A live VW TP 2.0 endpoint.
///
/// The *initiator* side (the diagnostic tool) performs channel setup on
/// first send; the *responder* side (the ECU) answers it. Data frames are
/// paced by [`ACK_INTERVAL`]-sized blocks.
#[derive(Debug)]
pub struct VwTpEndpoint {
    tx_id: CanId,
    rx_id: CanId,
    ecu_addr: u8,
    initiator: bool,
    state: ChannelState,
    tx_seq: u8,
    rx_seq: u8,
    job: Option<SendJob>,
    assembling: Vec<u8>,
    out_queue: Vec<OutgoingFrame>,
    received: Vec<Vec<u8>>,
}

impl VwTpEndpoint {
    /// Creates the initiator (tester) side for a channel to `ecu_addr`.
    pub fn initiator(tx_id: CanId, rx_id: CanId, ecu_addr: u8) -> Self {
        Self::new_inner(tx_id, rx_id, ecu_addr, true)
    }

    /// Creates the responder (ECU) side.
    pub fn responder(tx_id: CanId, rx_id: CanId, ecu_addr: u8) -> Self {
        Self::new_inner(tx_id, rx_id, ecu_addr, false)
    }

    fn new_inner(tx_id: CanId, rx_id: CanId, ecu_addr: u8, initiator: bool) -> Self {
        VwTpEndpoint {
            tx_id,
            rx_id,
            ecu_addr,
            initiator,
            state: ChannelState::Closed,
            tx_seq: 0,
            rx_seq: 0,
            job: None,
            assembling: Vec::new(),
            out_queue: Vec::new(),
            received: Vec::new(),
        }
    }

    /// The identifier this endpoint transmits on.
    pub fn tx_id(&self) -> CanId {
        self.tx_id
    }

    /// Whether the data channel is established.
    pub fn is_open(&self) -> bool {
        matches!(self.state, ChannelState::Open)
    }

    fn queue_raw(&mut self, ready_at: Micros, id: CanId, data: &[u8]) {
        self.out_queue.push(OutgoingFrame {
            ready_at,
            frame: CanFrame::new(id, data).expect("vwtp frames fit 8 bytes"),
        });
    }

    /// Emits data frames until the next ACK boundary or end of message.
    fn emit_data(&mut self, now: Micros) {
        let Some(mut job) = self.job.take() else {
            return;
        };
        if job.awaiting_ack {
            self.job = Some(job);
            return;
        }
        let mut sent = 0u8;
        let mut at = now;
        loop {
            let end = (job.offset + DATA_CHUNK).min(job.payload.len());
            let is_last = end == job.payload.len();
            sent += 1;
            let expects_ack = is_last || sent == ACK_INTERVAL;
            let op: u8 = match (is_last, expects_ack) {
                (true, true) => 0x1,
                (true, false) => 0x3,
                (false, true) => 0x0,
                (false, false) => 0x2,
            };
            let mut data = vec![(op << 4) | (self.tx_seq & 0x0F)];
            data.extend_from_slice(&job.payload[job.offset..end]);
            let id = self.tx_id;
            self.queue_raw(at, id, &data);
            self.tx_seq = (self.tx_seq + 1) & 0x0F;
            job.offset = end;
            at += Micros::from_micros(500);
            if is_last {
                self.job = None;
                return;
            }
            if expects_ack {
                job.awaiting_ack = true;
                self.job = Some(job);
                return;
            }
        }
    }

    fn handle_data(&mut self, op: VwOpcode, seq: u8, chunk: &[u8], now: Micros) -> Result<(), TransportError> {
        if seq != self.rx_seq {
            return Err(TransportError::SequenceMismatch {
                expected: self.rx_seq,
                got: seq,
            });
        }
        self.rx_seq = (self.rx_seq + 1) & 0x0F;
        self.assembling.extend_from_slice(chunk);
        if self.assembling.len() > MAX_VWTP_PAYLOAD {
            self.assembling.clear();
            return Err(TransportError::Overflow);
        }
        if op.expects_ack() {
            // ACK carries the next expected sequence number.
            let ack = [(0x9u8 << 4) | (self.rx_seq & 0x0F)];
            let id = self.tx_id;
            self.queue_raw(now, id, &ack);
        }
        if op.is_last() {
            dpr_telemetry::counter("transport.vwtp.reassembled").inc(1);
            dpr_telemetry::histogram("transport.vwtp.sdu_bytes").record(self.assembling.len() as f64);
            self.received.push(std::mem::take(&mut self.assembling));
        }
        Ok(())
    }
}

impl Endpoint for VwTpEndpoint {
    fn send(&mut self, payload: &[u8], now: Micros) -> Result<(), TransportError> {
        if payload.is_empty() {
            return Err(TransportError::EmptyPayload);
        }
        if payload.len() > MAX_VWTP_PAYLOAD {
            return Err(TransportError::PayloadTooLarge {
                len: payload.len(),
                max: MAX_VWTP_PAYLOAD,
            });
        }
        if self.job.is_some() {
            return Err(TransportError::Busy);
        }
        self.job = Some(SendJob {
            payload: payload.to_vec(),
            offset: 0,
            awaiting_ack: false,
        });
        match self.state {
            ChannelState::Open => self.emit_data(now),
            ChannelState::Closed if self.initiator => {
                // Channel setup request on the broadcast id: destination
                // ECU address, opcode 0xC0, then the ids we will listen on.
                let setup = [
                    self.ecu_addr,
                    0xC0,
                    (self.rx_id.raw() & 0xFF) as u8,
                    ((self.rx_id.raw() >> 8) & 0x07) as u8,
                    (self.tx_id.raw() & 0xFF) as u8,
                    ((self.tx_id.raw() >> 8) & 0x07) as u8,
                    0x01,
                ];
                let id = CanId::standard(SETUP_BROADCAST_ID).expect("0x200 is a valid standard id");
                self.queue_raw(now, id, &setup);
                self.state = ChannelState::SettingUp;
            }
            ChannelState::Closed => return Err(TransportError::ChannelNotOpen),
            ChannelState::SettingUp => {}
        }
        Ok(())
    }

    fn handle_frame(&mut self, frame: &CanFrame, now: Micros) -> Result<(), TransportError> {
        // The responder watches the broadcast id for setup requests that
        // name its ECU address.
        if !self.initiator
            && frame.id().raw() == u32::from(SETUP_BROADCAST_ID)
            && frame.data().first() == Some(&self.ecu_addr)
            && frame.data().get(1) == Some(&0xC0)
        {
            let response = [
                0xD0,
                (self.rx_id.raw() & 0xFF) as u8,
                ((self.rx_id.raw() >> 8) & 0x07) as u8,
                (self.tx_id.raw() & 0xFF) as u8,
                ((self.tx_id.raw() >> 8) & 0x07) as u8,
                0x01,
            ];
            let id = self.tx_id;
            self.queue_raw(now, id, &response);
            self.state = ChannelState::Open;
            self.tx_seq = 0;
            self.rx_seq = 0;
            return Ok(());
        }
        if frame.id() != self.rx_id {
            return Ok(());
        }
        let Some(&first) = frame.data().first() else {
            return Err(TransportError::MalformedFrame("empty VW TP frame".into()));
        };
        let Some(op) = VwOpcode::from_first_byte(first) else {
            return Err(TransportError::MalformedFrame(format!(
                "unknown VW TP opcode byte {first:#04x}"
            )));
        };
        match op {
            VwOpcode::ChannelSetupResponse => {
                if matches!(self.state, ChannelState::SettingUp) {
                    self.state = ChannelState::Open;
                    self.tx_seq = 0;
                    self.rx_seq = 0;
                    self.emit_data(now);
                }
                Ok(())
            }
            VwOpcode::Ack => {
                if let Some(job) = &mut self.job {
                    job.awaiting_ack = false;
                }
                self.emit_data(now);
                Ok(())
            }
            VwOpcode::AckNotReady => Ok(()),
            VwOpcode::ParamsRequest => {
                let id = self.tx_id;
                self.queue_raw(now, id, &[0xA1, 0x0F, 0x8A, 0xFF, 0x32, 0xFF]);
                Ok(())
            }
            VwOpcode::ParamsResponse | VwOpcode::ChannelTest => Ok(()),
            VwOpcode::Disconnect => {
                self.state = ChannelState::Closed;
                Ok(())
            }
            VwOpcode::ChannelSetupRequest => Ok(()),
            data_op if data_op.is_data() => {
                self.handle_data(data_op, first & 0x0F, &frame.data()[1..], now)
            }
            _ => Ok(()),
        }
    }

    fn outgoing(&mut self, _now: Micros) -> Vec<OutgoingFrame> {
        std::mem::take(&mut self.out_queue)
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        if self.received.is_empty() {
            None
        } else {
            Some(self.received.remove(0))
        }
    }

    fn is_active(&self) -> bool {
        !self.out_queue.is_empty() || self.job.is_some() || !self.assembling.is_empty()
    }
}

/// Offline reassembly of one direction of VW TP 2.0 data traffic.
///
/// Implements the paper's observation verbatim: *"the data transmission
/// frames do not contain the data length fields. We check their opcodes to
/// determine if the current frame is the last frame or not."* Non-data
/// frames are ignored (screening removes them anyway).
#[derive(Debug, Default)]
pub struct VwTpStreamDecoder {
    assembling: Vec<u8>,
    complete: Vec<Vec<u8>>,
}

impl VwTpStreamDecoder {
    /// Creates an idle decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the data bytes of one sniffed frame from the watched direction.
    pub fn push(&mut self, data: &[u8]) {
        let Some(&first) = data.first() else {
            return;
        };
        let Some(op) = VwOpcode::from_first_byte(first) else {
            crate::reject("vwtp", "malformed_frame");
            return;
        };
        if !op.is_data() {
            return;
        }
        self.assembling.extend_from_slice(&data[1..]);
        if op.is_last() {
            dpr_telemetry::counter("transport.vwtp.reassembled").inc(1);
            dpr_telemetry::histogram("transport.vwtp.sdu_bytes").record(self.assembling.len() as f64);
            self.complete.push(std::mem::take(&mut self.assembling));
        }
    }

    /// Pops the next completed payload.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        if self.complete.is_empty() {
            None
        } else {
            Some(self.complete.remove(0))
        }
    }

    /// Drains all completed payloads.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.complete)
    }

    /// Whether the decoder holds a partial message ("needs to wait for the
    /// next frames" in the paper's Tab. 9 terminology).
    pub fn in_progress(&self) -> bool {
        !self.assembling.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pump;
    use dpr_can::CanBus;

    fn channel() -> (VwTpEndpoint, VwTpEndpoint) {
        let tool_tx = CanId::standard(0x740).unwrap();
        let ecu_tx = CanId::standard(0x300).unwrap();
        (
            VwTpEndpoint::initiator(tool_tx, ecu_tx, 0x01),
            VwTpEndpoint::responder(ecu_tx, tool_tx, 0x01),
        )
    }

    fn round_trip(payload: &[u8]) -> (Vec<u8>, dpr_can::BusLog) {
        let (mut tool, mut ecu) = channel();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        tool.send(payload, Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        let got = ecu.receive().expect("payload should arrive");
        (got, bus.into_log())
    }

    #[test]
    fn setup_then_short_payload() {
        let (got, log) = round_trip(&[0x21, 0x07]);
        assert_eq!(got, vec![0x21, 0x07]);
        // setup req + setup rsp + 1 data frame + 1 ack
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn long_payload_spans_blocks_with_acks() {
        let payload: Vec<u8> = (0..100).collect();
        let (got, log) = round_trip(&payload);
        assert_eq!(got, payload);
        // 100 bytes → 15 data frames; ACK every 4th + final.
        let data_frames = log
            .iter()
            .filter(|e| {
                classify(&e.frame).is_some_and(|op| op.is_data())
            })
            .count();
        assert_eq!(data_frames, 15);
    }

    #[test]
    fn channel_reused_for_second_message() {
        let (mut tool, mut ecu) = channel();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        tool.send(&[1, 2, 3], Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        assert_eq!(ecu.receive(), Some(vec![1, 2, 3]));
        let frames_after_first = bus.log().len();

        tool.send(&[4, 5], bus.now()).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        assert_eq!(ecu.receive(), Some(vec![4, 5]));
        // No second channel setup: only data + ack added.
        assert_eq!(bus.log().len(), frames_after_first + 2);
    }

    #[test]
    fn responder_can_reply() {
        let (mut tool, mut ecu) = channel();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        tool.send(&[0x21, 0x07], Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        assert!(ecu.receive().is_some());

        // ECU responds over the now-open channel.
        let response: Vec<u8> = (0..30).collect();
        ecu.send(&response, bus.now()).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        assert_eq!(tool.receive(), Some(response));
    }

    #[test]
    fn responder_cannot_send_without_channel() {
        let (_, mut ecu) = channel();
        assert_eq!(
            ecu.send(&[1], Micros::ZERO),
            Err(TransportError::ChannelNotOpen)
        );
    }

    #[test]
    fn stream_decoder_uses_opcode_for_boundaries() {
        let payload: Vec<u8> = (0..40).collect();
        let (_, log) = round_trip(&payload);
        let tool_tx = CanId::standard(0x740).unwrap();
        let mut decoder = VwTpStreamDecoder::new();
        for entry in log.frames_with_id(tool_tx) {
            decoder.push(entry.frame.data());
        }
        assert_eq!(decoder.pop(), Some(payload));
        assert!(!decoder.in_progress());
    }

    #[test]
    fn decoder_ignores_control_frames() {
        let mut decoder = VwTpStreamDecoder::new();
        decoder.push(&[0xA0, 0x0F, 0x8A, 0xFF, 0x32, 0xFF]); // params
        decoder.push(&[0x91]); // ack
        decoder.push(&[0x30, 0xDE, 0xAD]); // data last, no ack
        assert_eq!(decoder.pop(), Some(vec![0xDE, 0xAD]));
    }

    #[test]
    fn opcode_classification() {
        assert_eq!(VwOpcode::from_first_byte(0x05), Some(VwOpcode::DataExpectAck));
        assert_eq!(VwOpcode::from_first_byte(0x1F), Some(VwOpcode::DataLastExpectAck));
        assert_eq!(VwOpcode::from_first_byte(0x23), Some(VwOpcode::Data));
        assert_eq!(VwOpcode::from_first_byte(0x3A), Some(VwOpcode::DataLast));
        assert_eq!(VwOpcode::from_first_byte(0x92), Some(VwOpcode::Ack));
        assert_eq!(VwOpcode::from_first_byte(0xA0), Some(VwOpcode::ParamsRequest));
        assert_eq!(VwOpcode::from_first_byte(0xC0), Some(VwOpcode::ChannelSetupRequest));
        assert_eq!(VwOpcode::from_first_byte(0x45), None);
        assert!(VwOpcode::Data.is_data());
        assert!(!VwOpcode::Data.is_last());
        assert!(VwOpcode::DataLastExpectAck.expects_ack());
    }

    #[test]
    fn sequence_mismatch_detected() {
        let (mut tool, mut ecu) = channel();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        tool.send(&[1], Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        ecu.receive().unwrap();

        // Inject a data frame with a bad sequence number directly.
        let bad = CanFrame::new(CanId::standard(0x740).unwrap(), &[0x17, 0xFF]).unwrap();
        let err = ecu.handle_frame(&bad, Micros::ZERO);
        assert_eq!(
            err,
            Err(TransportError::SequenceMismatch { expected: 1, got: 7 })
        );
    }
}
