//! ISO 15765-2 (ISO-TP / "DoCAN") segmentation and reassembly.
//!
//! Implements the four frame types of the paper's Fig. 7 — single frame
//! (SF), first frame (FF), consecutive frame (CF), and flow control (FC) —
//! the sender/receiver state machines with block-size and STmin pacing, and
//! an offline [`IsoTpStreamDecoder`] that reassembles payloads from a
//! sniffed capture (the paper's "Step 2: Assembling Payload").

use dpr_can::{CanFrame, CanId, Micros};
use serde::{Deserialize, Serialize};

use crate::{Endpoint, OutgoingFrame, TransportError};

/// Maximum payload length of classic ISO-TP (12-bit length in the FF).
pub const MAX_ISOTP_PAYLOAD: usize = 4095;
/// Maximum payload bytes in a single frame with classic addressing.
pub const MAX_SF_PAYLOAD: usize = 7;
/// Payload bytes carried by a first frame.
pub const FF_PAYLOAD: usize = 6;
/// Maximum payload bytes per consecutive frame.
pub const CF_PAYLOAD: usize = 7;
/// Padding byte used for classic-CAN frame padding.
pub const PAD_BYTE: u8 = 0x55;

/// Flow status carried in an FC frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowStatus {
    /// Clear to send: the sender may transmit the next block.
    ContinueToSend,
    /// The receiver needs more time; the sender must wait for another FC.
    Wait,
    /// The receiver's buffer cannot hold the announced message.
    Overflow,
}

impl FlowStatus {
    fn to_nibble(self) -> u8 {
        match self {
            FlowStatus::ContinueToSend => 0,
            FlowStatus::Wait => 1,
            FlowStatus::Overflow => 2,
        }
    }

    fn from_nibble(n: u8) -> Result<Self, TransportError> {
        match n {
            0 => Ok(FlowStatus::ContinueToSend),
            1 => Ok(FlowStatus::Wait),
            2 => Ok(FlowStatus::Overflow),
            other => Err(TransportError::MalformedFrame(format!(
                "flow status nibble {other:#x} is reserved"
            ))),
        }
    }
}

/// The STmin (minimum separation time) field of an FC frame.
///
/// Values `0x00..=0x7F` encode milliseconds; `0xF1..=0xF9` encode
/// 100–900 µs. Other encodings are reserved and treated per the standard as
/// the maximum (127 ms) by senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StMin(u8);

impl StMin {
    /// STmin of zero — consecutive frames may be sent back to back.
    pub const ZERO: StMin = StMin(0);

    /// Creates an STmin from its on-wire byte.
    pub const fn from_raw(raw: u8) -> Self {
        StMin(raw)
    }

    /// Creates an STmin encoding the given number of milliseconds
    /// (clamped to the 127 ms maximum).
    pub fn from_millis(ms: u8) -> Self {
        StMin(ms.min(0x7F))
    }

    /// The on-wire byte.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The minimum separation as logical time. Reserved encodings collapse
    /// to the defensive maximum of 127 ms, as the standard requires.
    pub fn as_micros(self) -> Micros {
        match self.0 {
            0x00..=0x7F => Micros::from_millis(u64::from(self.0)),
            0xF1..=0xF9 => Micros::from_micros(u64::from(self.0 - 0xF0) * 100),
            _ => Micros::from_millis(127),
        }
    }
}

/// A parsed ISO-TP frame (the protocol control information plus payload).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IsoTpFrame {
    /// Single frame: a complete payload of 1–7 bytes.
    Single {
        /// The payload.
        data: Vec<u8>,
    },
    /// First frame of a multi-frame message.
    First {
        /// Total length of the full message (up to 4095).
        total_len: u16,
        /// The first 6 payload bytes.
        data: Vec<u8>,
    },
    /// Consecutive frame.
    Consecutive {
        /// 4-bit sequence number (1..=15, then wraps to 0).
        seq: u8,
        /// Up to 7 payload bytes.
        data: Vec<u8>,
    },
    /// Flow-control frame.
    FlowControl {
        /// Whether the sender may continue.
        status: FlowStatus,
        /// Consecutive frames allowed before the next FC (0 = unlimited).
        block_size: u8,
        /// Minimum separation between consecutive frames.
        st_min: StMin,
    },
}

impl IsoTpFrame {
    /// Parses ISO-TP protocol control information from CAN frame data.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::MalformedFrame`] for empty data, reserved
    /// PCI types, or inconsistent length fields.
    pub fn parse(data: &[u8]) -> Result<Self, TransportError> {
        let Some(&pci) = data.first() else {
            return Err(TransportError::MalformedFrame(
                "empty CAN data cannot carry ISO-TP".into(),
            ));
        };
        match pci >> 4 {
            0x0 => {
                let len = usize::from(pci & 0x0F);
                if len == 0 || len > MAX_SF_PAYLOAD {
                    return Err(TransportError::MalformedFrame(format!(
                        "single-frame length {len} out of range 1..=7"
                    )));
                }
                if data.len() < 1 + len {
                    return Err(TransportError::MalformedFrame(format!(
                        "single frame announces {len} bytes but carries {}",
                        data.len() - 1
                    )));
                }
                Ok(IsoTpFrame::Single {
                    data: data[1..=len].to_vec(),
                })
            }
            0x1 => {
                if data.len() < 2 {
                    return Err(TransportError::MalformedFrame(
                        "first frame shorter than its length field".into(),
                    ));
                }
                let total_len = (u16::from(pci & 0x0F) << 8) | u16::from(data[1]);
                if usize::from(total_len) <= MAX_SF_PAYLOAD {
                    return Err(TransportError::MalformedFrame(format!(
                        "first frame announces {total_len} bytes, which fits a single frame"
                    )));
                }
                Ok(IsoTpFrame::First {
                    total_len,
                    data: data[2..].to_vec(),
                })
            }
            0x2 => Ok(IsoTpFrame::Consecutive {
                seq: pci & 0x0F,
                data: data[1..].to_vec(),
            }),
            0x3 => {
                if data.len() < 3 {
                    return Err(TransportError::MalformedFrame(
                        "flow-control frame shorter than 3 bytes".into(),
                    ));
                }
                Ok(IsoTpFrame::FlowControl {
                    status: FlowStatus::from_nibble(pci & 0x0F)?,
                    block_size: data[1],
                    st_min: StMin::from_raw(data[2]),
                })
            }
            other => Err(TransportError::MalformedFrame(format!(
                "reserved ISO-TP PCI type {other:#x}"
            ))),
        }
    }

    /// Encodes the frame as padded CAN data on the given identifier.
    pub fn to_can_frame(&self, id: CanId) -> CanFrame {
        let mut buf: Vec<u8> = Vec::with_capacity(8);
        match self {
            IsoTpFrame::Single { data } => {
                debug_assert!((1..=MAX_SF_PAYLOAD).contains(&data.len()));
                buf.push(data.len() as u8);
                buf.extend_from_slice(data);
            }
            IsoTpFrame::First { total_len, data } => {
                debug_assert!(data.len() == FF_PAYLOAD);
                buf.push(0x10 | ((total_len >> 8) as u8 & 0x0F));
                buf.push((total_len & 0xFF) as u8);
                buf.extend_from_slice(data);
            }
            IsoTpFrame::Consecutive { seq, data } => {
                debug_assert!(data.len() <= CF_PAYLOAD);
                buf.push(0x20 | (seq & 0x0F));
                buf.extend_from_slice(data);
            }
            IsoTpFrame::FlowControl {
                status,
                block_size,
                st_min,
            } => {
                buf.push(0x30 | status.to_nibble());
                buf.push(*block_size);
                buf.push(st_min.raw());
            }
        }
        CanFrame::new_padded(id, &buf, PAD_BYTE).expect("ISO-TP frames always fit 8 bytes")
    }

    /// Whether this is a flow-control frame (the kind the paper's screening
    /// step removes).
    pub fn is_flow_control(&self) -> bool {
        matches!(self, IsoTpFrame::FlowControl { .. })
    }
}

/// Tuning parameters for an [`IsoTpEndpoint`]'s receiver side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsoTpConfig {
    /// Block size advertised in FC frames (0 = send everything).
    pub block_size: u8,
    /// STmin advertised in FC frames.
    pub st_min: StMin,
    /// Receive buffer capacity; longer announcements trigger `OVFLW`.
    pub max_receive: usize,
    /// How long the sender waits for an FC before giving up (N_Bs).
    pub fc_timeout: Micros,
}

impl Default for IsoTpConfig {
    fn default() -> Self {
        IsoTpConfig {
            block_size: 8,
            st_min: StMin::from_millis(1),
            max_receive: MAX_ISOTP_PAYLOAD,
            fc_timeout: Micros::from_millis(1000),
        }
    }
}

#[derive(Debug)]
enum SendState {
    Idle,
    /// FF sent; waiting for the receiver's FC.
    WaitingForFc {
        payload: Vec<u8>,
        offset: usize,
        next_seq: u8,
        deadline: Micros,
    },
}

#[derive(Debug)]
enum RecvState {
    Idle,
    Receiving {
        total_len: usize,
        buf: Vec<u8>,
        next_seq: u8,
        cf_in_block: u8,
    },
}

/// A live ISO-TP endpoint: segments outgoing payloads and reassembles
/// incoming ones, honouring flow control.
///
/// The endpoint transmits on `tx_id` and listens on `rx_id`; all other
/// identifiers are ignored, so many endpoints can share one bus.
#[derive(Debug)]
pub struct IsoTpEndpoint {
    tx_id: CanId,
    rx_id: CanId,
    config: IsoTpConfig,
    send: SendState,
    recv: RecvState,
    out_queue: Vec<OutgoingFrame>,
    received: Vec<Vec<u8>>,
}

impl IsoTpEndpoint {
    /// Creates an endpoint transmitting on `tx_id` and receiving on `rx_id`
    /// with default flow-control parameters.
    pub fn new(tx_id: CanId, rx_id: CanId) -> Self {
        Self::with_config(tx_id, rx_id, IsoTpConfig::default())
    }

    /// Creates an endpoint with explicit flow-control parameters.
    pub fn with_config(tx_id: CanId, rx_id: CanId, config: IsoTpConfig) -> Self {
        IsoTpEndpoint {
            tx_id,
            rx_id,
            config,
            send: SendState::Idle,
            recv: RecvState::Idle,
            out_queue: Vec::new(),
            received: Vec::new(),
        }
    }

    /// The identifier this endpoint transmits on.
    pub fn tx_id(&self) -> CanId {
        self.tx_id
    }

    /// The identifier this endpoint listens on.
    pub fn rx_id(&self) -> CanId {
        self.rx_id
    }

    fn queue(&mut self, ready_at: Micros, frame: IsoTpFrame) {
        self.out_queue.push(OutgoingFrame {
            ready_at,
            frame: frame.to_can_frame(self.tx_id),
        });
    }

    /// Emits up to `block_size` consecutive frames starting at `offset`,
    /// returning the updated (offset, next_seq) and the time of the last
    /// scheduled frame.
    fn emit_block(
        &mut self,
        payload: &[u8],
        mut offset: usize,
        mut seq: u8,
        block_size: u8,
        st_min: StMin,
        start: Micros,
    ) -> (usize, u8) {
        let mut at = start;
        let mut sent_in_block = 0u8;
        while offset < payload.len() {
            if block_size != 0 && sent_in_block == block_size {
                break;
            }
            let end = (offset + CF_PAYLOAD).min(payload.len());
            self.queue(
                at,
                IsoTpFrame::Consecutive {
                    seq,
                    data: payload[offset..end].to_vec(),
                },
            );
            offset = end;
            seq = (seq + 1) & 0x0F;
            sent_in_block += 1;
            at += st_min.as_micros().max(Micros::from_micros(1));
        }
        (offset, seq)
    }

    fn on_flow_control(
        &mut self,
        status: FlowStatus,
        block_size: u8,
        st_min: StMin,
        now: Micros,
    ) -> Result<(), TransportError> {
        let SendState::WaitingForFc {
            payload,
            offset,
            next_seq,
            ..
        } = std::mem::replace(&mut self.send, SendState::Idle)
        else {
            return Err(TransportError::UnexpectedFrame {
                kind: "flow control",
                state: "idle sender",
            });
        };
        match status {
            FlowStatus::Overflow => {
                dpr_telemetry::counter("transport.isotp.fc_overflow").inc(1);
                Err(TransportError::Overflow)
            }
            FlowStatus::Wait => {
                dpr_telemetry::counter("transport.isotp.fc_wait").inc(1);
                let deadline = now + self.config.fc_timeout;
                self.send = SendState::WaitingForFc {
                    payload,
                    offset,
                    next_seq,
                    deadline,
                };
                Ok(())
            }
            FlowStatus::ContinueToSend => {
                let (new_offset, new_seq) =
                    self.emit_block(&payload, offset, next_seq, block_size, st_min, now);
                if new_offset < payload.len() {
                    let deadline = now + self.config.fc_timeout;
                    self.send = SendState::WaitingForFc {
                        payload,
                        offset: new_offset,
                        next_seq: new_seq,
                        deadline,
                    };
                }
                Ok(())
            }
        }
    }

    fn on_first(&mut self, total_len: u16, data: Vec<u8>, now: Micros) {
        let announce = usize::from(total_len);
        if announce > self.config.max_receive {
            self.queue(
                now,
                IsoTpFrame::FlowControl {
                    status: FlowStatus::Overflow,
                    block_size: 0,
                    st_min: StMin::ZERO,
                },
            );
            self.recv = RecvState::Idle;
            return;
        }
        let mut buf = Vec::with_capacity(announce);
        buf.extend_from_slice(&data[..FF_PAYLOAD.min(data.len())]);
        self.recv = RecvState::Receiving {
            total_len: announce,
            buf,
            next_seq: 1,
            cf_in_block: 0,
        };
        self.queue(
            now,
            IsoTpFrame::FlowControl {
                status: FlowStatus::ContinueToSend,
                block_size: self.config.block_size,
                st_min: self.config.st_min,
            },
        );
    }

    fn on_consecutive(&mut self, seq: u8, data: Vec<u8>, now: Micros) -> Result<(), TransportError> {
        let RecvState::Receiving {
            total_len,
            mut buf,
            next_seq,
            mut cf_in_block,
        } = std::mem::replace(&mut self.recv, RecvState::Idle)
        else {
            return Err(TransportError::UnexpectedFrame {
                kind: "consecutive",
                state: "idle receiver",
            });
        };
        if seq != next_seq {
            crate::reject("isotp", "sequence_mismatch");
            return Err(TransportError::SequenceMismatch {
                expected: next_seq,
                got: seq,
            });
        }
        let remaining = total_len - buf.len();
        buf.extend_from_slice(&data[..remaining.min(data.len())]);
        if buf.len() >= total_len {
            dpr_telemetry::counter("transport.isotp.reassembled").inc(1);
            dpr_telemetry::histogram("transport.isotp.sdu_bytes").record(buf.len() as f64);
            self.received.push(buf);
            return Ok(());
        }
        cf_in_block += 1;
        if self.config.block_size != 0 && cf_in_block == self.config.block_size {
            cf_in_block = 0;
            self.queue(
                now,
                IsoTpFrame::FlowControl {
                    status: FlowStatus::ContinueToSend,
                    block_size: self.config.block_size,
                    st_min: self.config.st_min,
                },
            );
        }
        self.recv = RecvState::Receiving {
            total_len,
            buf,
            next_seq: (seq + 1) & 0x0F,
            cf_in_block,
        };
        Ok(())
    }

    /// Checks the sender's FC timer; call periodically in long simulations.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] once the N_Bs deadline passes.
    pub fn check_timers(&mut self, now: Micros) -> Result<(), TransportError> {
        if let SendState::WaitingForFc { deadline, .. } = &self.send {
            if now > *deadline {
                self.send = SendState::Idle;
                dpr_telemetry::counter("transport.isotp.fc_timeout").inc(1);
                return Err(TransportError::Timeout { timer: "N_Bs" });
            }
        }
        Ok(())
    }
}

impl Endpoint for IsoTpEndpoint {
    fn send(&mut self, payload: &[u8], now: Micros) -> Result<(), TransportError> {
        if payload.is_empty() {
            return Err(TransportError::EmptyPayload);
        }
        if payload.len() > MAX_ISOTP_PAYLOAD {
            return Err(TransportError::PayloadTooLarge {
                len: payload.len(),
                max: MAX_ISOTP_PAYLOAD,
            });
        }
        if !matches!(self.send, SendState::Idle) {
            return Err(TransportError::Busy);
        }
        if payload.len() <= MAX_SF_PAYLOAD {
            self.queue(
                now,
                IsoTpFrame::Single {
                    data: payload.to_vec(),
                },
            );
            return Ok(());
        }
        self.queue(
            now,
            IsoTpFrame::First {
                total_len: payload.len() as u16,
                data: payload[..FF_PAYLOAD].to_vec(),
            },
        );
        self.send = SendState::WaitingForFc {
            payload: payload.to_vec(),
            offset: FF_PAYLOAD,
            next_seq: 1,
            deadline: now + self.config.fc_timeout,
        };
        Ok(())
    }

    fn handle_frame(&mut self, frame: &CanFrame, now: Micros) -> Result<(), TransportError> {
        if frame.id() != self.rx_id {
            return Ok(());
        }
        match IsoTpFrame::parse(frame.data())? {
            IsoTpFrame::Single { data } => {
                dpr_telemetry::counter("transport.isotp.reassembled").inc(1);
                dpr_telemetry::histogram("transport.isotp.sdu_bytes").record(data.len() as f64);
                self.received.push(data);
                Ok(())
            }
            IsoTpFrame::First { total_len, data } => {
                self.on_first(total_len, data, now);
                Ok(())
            }
            IsoTpFrame::Consecutive { seq, data } => self.on_consecutive(seq, data, now),
            IsoTpFrame::FlowControl {
                status,
                block_size,
                st_min,
            } => self.on_flow_control(status, block_size, st_min, now),
        }
    }

    fn outgoing(&mut self, _now: Micros) -> Vec<OutgoingFrame> {
        std::mem::take(&mut self.out_queue)
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        if self.received.is_empty() {
            None
        } else {
            Some(self.received.remove(0))
        }
    }

    fn is_active(&self) -> bool {
        !self.out_queue.is_empty()
            || !matches!(self.send, SendState::Idle)
            || !matches!(self.recv, RecvState::Idle)
    }
}

/// Offline reassembly of one direction of ISO-TP traffic from a capture.
///
/// This is the sniffer-side algorithm of the paper's Step 2: it never sends
/// flow control (the live peers did that); it only watches SF/FF/CF frames
/// of a single CAN id and emits completed payloads. Malformed or
/// out-of-sequence input aborts the in-progress message but keeps the
/// decoder usable — a sniffer must survive mid-capture glitches.
#[derive(Debug, Default)]
pub struct IsoTpStreamDecoder {
    state: Option<(usize, Vec<u8>, u8)>,
    complete: Vec<Vec<u8>>,
}

impl IsoTpStreamDecoder {
    /// Creates an idle decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the data bytes of one sniffed CAN frame.
    ///
    /// Flow-control frames are ignored (the screening step normally removes
    /// them, but tolerating them makes the decoder robust).
    pub fn push(&mut self, data: &[u8]) {
        let Ok(frame) = IsoTpFrame::parse(data) else {
            if self.state.take().is_some() {
                crate::reject("isotp", "superseded");
            }
            crate::reject("isotp", "malformed_frame");
            return;
        };
        match frame {
            IsoTpFrame::Single { data } => {
                if self.state.take().is_some() {
                    crate::reject("isotp", "superseded");
                }
                dpr_telemetry::counter("transport.isotp.reassembled").inc(1);
                dpr_telemetry::histogram("transport.isotp.sdu_bytes").record(data.len() as f64);
                self.complete.push(data);
            }
            IsoTpFrame::First { total_len, data } => {
                if self.state.is_some() {
                    crate::reject("isotp", "superseded");
                }
                let mut buf = Vec::with_capacity(usize::from(total_len));
                buf.extend_from_slice(&data[..FF_PAYLOAD.min(data.len())]);
                self.state = Some((usize::from(total_len), buf, 1));
            }
            IsoTpFrame::Consecutive { seq, data } => {
                if let Some((total, mut buf, expect)) = self.state.take() {
                    if seq != expect {
                        crate::reject("isotp", "sequence_mismatch");
                        return; // drop the damaged message
                    }
                    let remaining = total - buf.len();
                    buf.extend_from_slice(&data[..remaining.min(data.len())]);
                    if buf.len() >= total {
                        dpr_telemetry::counter("transport.isotp.reassembled").inc(1);
                        dpr_telemetry::histogram("transport.isotp.sdu_bytes")
                            .record(buf.len() as f64);
                        self.complete.push(buf);
                    } else {
                        self.state = Some((total, buf, (seq + 1) & 0x0F));
                    }
                }
            }
            IsoTpFrame::FlowControl { .. } => {}
        }
    }

    /// Pops the next completed payload.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        if self.complete.is_empty() {
            None
        } else {
            Some(self.complete.remove(0))
        }
    }

    /// Drains all completed payloads.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.complete)
    }

    /// Whether a multi-frame message is partially assembled.
    pub fn in_progress(&self) -> bool {
        self.state.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pump;
    use dpr_can::CanBus;

    fn ids() -> (CanId, CanId) {
        (
            CanId::standard(0x7E0).unwrap(),
            CanId::standard(0x7E8).unwrap(),
        )
    }

    fn round_trip(payload: &[u8]) -> (Vec<u8>, usize) {
        let (req, rsp) = ids();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let mut tool = IsoTpEndpoint::new(req, rsp);
        let mut ecu = IsoTpEndpoint::new(rsp, req);
        tool.send(payload, Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        let got = ecu.receive().expect("message should arrive");
        (got, bus.log().len())
    }

    #[test]
    fn single_frame_round_trip() {
        let (got, frames) = round_trip(&[0x22, 0xF4, 0x0D]);
        assert_eq!(got, vec![0x22, 0xF4, 0x0D]);
        assert_eq!(frames, 1);
    }

    #[test]
    fn seven_bytes_still_single_frame() {
        let (got, frames) = round_trip(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(got.len(), 7);
        assert_eq!(frames, 1);
    }

    #[test]
    fn eight_bytes_become_multi_frame() {
        let (got, frames) = round_trip(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // FF + FC + CF = 3 frames.
        assert_eq!(frames, 3);
    }

    #[test]
    fn long_payload_round_trip_with_multiple_blocks() {
        let payload: Vec<u8> = (0..200u16).map(|v| (v % 251) as u8).collect();
        let (got, frames) = round_trip(&payload);
        assert_eq!(got, payload);
        // 200 bytes: FF(6) + 28 CFs; block size 8 → several FCs.
        assert!(frames > 30, "expected >30 frames, got {frames}");
    }

    #[test]
    fn max_payload_round_trips() {
        let payload = vec![0xAB; MAX_ISOTP_PAYLOAD];
        let (got, _) = round_trip(&payload);
        assert_eq!(got.len(), MAX_ISOTP_PAYLOAD);
    }

    #[test]
    fn oversized_payload_rejected() {
        let (req, rsp) = ids();
        let mut ep = IsoTpEndpoint::new(req, rsp);
        let err = ep.send(&vec![0; MAX_ISOTP_PAYLOAD + 1], Micros::ZERO);
        assert_eq!(
            err,
            Err(TransportError::PayloadTooLarge {
                len: MAX_ISOTP_PAYLOAD + 1,
                max: MAX_ISOTP_PAYLOAD
            })
        );
        assert_eq!(ep.send(&[], Micros::ZERO), Err(TransportError::EmptyPayload));
    }

    #[test]
    fn sender_is_busy_during_multiframe() {
        let (req, rsp) = ids();
        let mut ep = IsoTpEndpoint::new(req, rsp);
        ep.send(&[0; 20], Micros::ZERO).unwrap();
        assert_eq!(ep.send(&[1], Micros::ZERO), Err(TransportError::Busy));
    }

    #[test]
    fn overflow_when_receiver_buffer_too_small() {
        let (req, rsp) = ids();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let mut tool = IsoTpEndpoint::new(req, rsp);
        let mut ecu = IsoTpEndpoint::with_config(
            rsp,
            req,
            IsoTpConfig {
                max_receive: 16,
                ..IsoTpConfig::default()
            },
        );
        tool.send(&[0; 64], Micros::ZERO).unwrap();
        let err = pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]);
        assert_eq!(err, Err(TransportError::Overflow));
        assert!(ecu.receive().is_none());
    }

    #[test]
    fn fc_timeout_fires() {
        let (req, rsp) = ids();
        let mut ep = IsoTpEndpoint::new(req, rsp);
        ep.send(&[0; 20], Micros::ZERO).unwrap();
        assert!(ep.check_timers(Micros::from_millis(999)).is_ok());
        assert_eq!(
            ep.check_timers(Micros::from_millis(1001)),
            Err(TransportError::Timeout { timer: "N_Bs" })
        );
    }

    #[test]
    fn st_min_paces_consecutive_frames() {
        let (req, rsp) = ids();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let mut tool = IsoTpEndpoint::new(req, rsp);
        let mut ecu = IsoTpEndpoint::with_config(
            rsp,
            req,
            IsoTpConfig {
                st_min: StMin::from_millis(10),
                block_size: 0,
                ..IsoTpConfig::default()
            },
        );
        tool.send(&(0..30).collect::<Vec<u8>>(), Micros::ZERO).unwrap();
        let end = pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        // 24 bytes after the FF → 4 CFs, ≥10 ms apart.
        assert!(end >= Micros::from_millis(30), "end was {end}");
        assert_eq!(ecu.receive().unwrap().len(), 30);
    }

    #[test]
    fn frame_parse_encode_round_trip() {
        let id = CanId::standard(0x700).unwrap();
        let samples = vec![
            IsoTpFrame::Single {
                data: vec![0x3E, 0x00],
            },
            IsoTpFrame::First {
                total_len: 100,
                data: vec![1, 2, 3, 4, 5, 6],
            },
            IsoTpFrame::Consecutive {
                seq: 5,
                data: vec![7; 7],
            },
            IsoTpFrame::FlowControl {
                status: FlowStatus::Wait,
                block_size: 4,
                st_min: StMin::from_raw(0xF3),
            },
        ];
        for frame in samples {
            let can = frame.to_can_frame(id);
            let parsed = IsoTpFrame::parse(can.data()).unwrap();
            match (&frame, &parsed) {
                // CF payload is padded on the wire; compare prefix.
                (
                    IsoTpFrame::Consecutive { seq: s1, data: d1 },
                    IsoTpFrame::Consecutive { seq: s2, data: d2 },
                ) => {
                    assert_eq!(s1, s2);
                    assert_eq!(&d2[..d1.len()], &d1[..]);
                }
                (IsoTpFrame::First { data: d1, .. }, IsoTpFrame::First { data: d2, .. }) => {
                    assert_eq!(&d2[..d1.len()], &d1[..]);
                }
                _ => assert_eq!(&frame, &parsed),
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(IsoTpFrame::parse(&[]).is_err());
        assert!(IsoTpFrame::parse(&[0x00]).is_err()); // SF with len 0
        assert!(IsoTpFrame::parse(&[0x08, 0, 0, 0, 0, 0, 0, 0]).is_err()); // SF len 8
        assert!(IsoTpFrame::parse(&[0x40]).is_err()); // reserved PCI
        assert!(IsoTpFrame::parse(&[0x33, 0, 0]).is_err()); // reserved flow status
        assert!(IsoTpFrame::parse(&[0x10, 0x05, 1, 2, 3, 4, 5, 6]).is_err()); // FF too short
    }

    #[test]
    fn st_min_encodings() {
        assert_eq!(StMin::from_millis(5).as_micros(), Micros::from_millis(5));
        assert_eq!(StMin::from_millis(200).as_micros(), Micros::from_millis(127));
        assert_eq!(
            StMin::from_raw(0xF1).as_micros(),
            Micros::from_micros(100)
        );
        assert_eq!(
            StMin::from_raw(0xF9).as_micros(),
            Micros::from_micros(900)
        );
        // Reserved encoding falls back to the defensive maximum.
        assert_eq!(StMin::from_raw(0x80).as_micros(), Micros::from_millis(127));
    }

    #[test]
    fn stream_decoder_reassembles_sniffed_traffic() {
        let (req, rsp) = ids();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let mut tool = IsoTpEndpoint::new(req, rsp);
        let mut ecu = IsoTpEndpoint::new(rsp, req);
        let payload: Vec<u8> = (0..50).collect();
        tool.send(&payload, Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();

        let mut decoder = IsoTpStreamDecoder::new();
        for entry in bus.log().frames_with_id(req) {
            decoder.push(entry.frame.data());
        }
        assert_eq!(decoder.pop(), Some(payload));
        assert!(!decoder.in_progress());
    }

    #[test]
    fn stream_decoder_survives_sequence_gap() {
        let mut decoder = IsoTpStreamDecoder::new();
        // FF announcing 20 bytes, then a CF with the wrong sequence.
        decoder.push(&[0x10, 20, 1, 2, 3, 4, 5, 6]);
        decoder.push(&[0x23, 9, 9, 9, 9, 9, 9, 9]); // expected seq 1, got 3
        assert!(decoder.pop().is_none());
        // A fresh single frame still decodes.
        decoder.push(&[0x02, 0xAA, 0xBB]);
        assert_eq!(decoder.pop(), Some(vec![0xAA, 0xBB]));
    }

    #[test]
    fn stream_decoder_ignores_flow_control() {
        let mut decoder = IsoTpStreamDecoder::new();
        decoder.push(&[0x30, 0, 0]);
        decoder.push(&[0x01, 0x3E]);
        assert_eq!(decoder.pop(), Some(vec![0x3E]));
    }
}
