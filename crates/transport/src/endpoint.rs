//! The transport endpoint abstraction and the bus pump helper.

use dpr_can::{CanBus, CanFrame, Micros, NodeHandle};

use crate::TransportError;

/// A frame the endpoint wants to transmit, with the earliest logical time at
/// which it may contend for the bus (used to honour ISO-TP STmin pacing and
/// response delays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutgoingFrame {
    /// Earliest time the frame may be offered to the bus.
    pub ready_at: Micros,
    /// The frame itself.
    pub frame: CanFrame,
}

/// A transport endpoint: one side of a diagnostic conversation.
///
/// Endpoints are *sans-io* state machines — they never touch the bus
/// directly. The caller feeds incoming frames via
/// [`handle_frame`](Endpoint::handle_frame), drains frames to transmit via
/// [`outgoing`](Endpoint::outgoing), and collects reassembled messages via
/// [`receive`](Endpoint::receive). The [`pump`] helper wires endpoints to a
/// [`CanBus`] for simulations and tests.
pub trait Endpoint {
    /// Queues a complete diagnostic payload for segmentation and
    /// transmission starting no earlier than `now`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Busy`] if a previous transmission is still
    /// in flight, [`TransportError::PayloadTooLarge`] /
    /// [`TransportError::EmptyPayload`] for unrepresentable payloads.
    fn send(&mut self, payload: &[u8], now: Micros) -> Result<(), TransportError>;

    /// Feeds one frame received from the bus at time `now`.
    ///
    /// Frames not addressed to this endpoint are ignored silently.
    ///
    /// # Errors
    ///
    /// Returns a protocol error for malformed, out-of-sequence, or
    /// state-violating frames addressed to this endpoint.
    fn handle_frame(&mut self, frame: &CanFrame, now: Micros) -> Result<(), TransportError>;

    /// Drains frames that are ready (or will become ready) for transmission.
    fn outgoing(&mut self, now: Micros) -> Vec<OutgoingFrame>;

    /// Pops the next fully reassembled incoming payload, if any.
    fn receive(&mut self) -> Option<Vec<u8>>;

    /// Whether the endpoint still has work in flight (segments to send or a
    /// partially received message).
    fn is_active(&self) -> bool;
}

/// Drives a set of endpoints over a bus until the system is quiescent: no
/// endpoint has outgoing frames and the bus has nothing pending.
///
/// Each endpoint is paired with the bus node it transmits as. Returns the
/// logical time at which the system went quiescent.
///
/// # Errors
///
/// Propagates the first protocol error any endpoint raises.
pub fn pump(
    bus: &mut CanBus,
    endpoints: &mut [(NodeHandle, &mut dyn Endpoint)],
) -> Result<Micros, TransportError> {
    loop {
        let mut moved = false;
        let now = bus.now();
        for (node, ep) in endpoints.iter_mut() {
            for out in ep.outgoing(now) {
                bus.transmit(*node, out.frame, out.ready_at);
                moved = true;
            }
        }
        // Deliver exactly one frame per iteration so endpoints can react
        // (e.g. emit a flow-control frame) before the next arbitration
        // round.
        if let Some(entry) = bus.step() {
            moved = true;
            for (_, ep) in endpoints.iter_mut() {
                ep.handle_frame(&entry.frame, entry.at)?;
            }
        }
        if !moved && bus.pending_len() == 0 {
            // Endpoints emit frames eagerly (future pacing is expressed via
            // `ready_at`, not by withholding frames), so an idle bus plus no
            // drained frames means the whole system is quiescent.
            return Ok(bus.now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_can::CanId;

    /// A trivial endpoint that sends each payload as one raw frame.
    struct RawEndpoint {
        tx: CanId,
        rx: CanId,
        queue: Vec<OutgoingFrame>,
        received: Vec<Vec<u8>>,
    }

    impl RawEndpoint {
        fn new(tx: CanId, rx: CanId) -> Self {
            RawEndpoint {
                tx,
                rx,
                queue: Vec::new(),
                received: Vec::new(),
            }
        }
    }

    impl Endpoint for RawEndpoint {
        fn send(&mut self, payload: &[u8], now: Micros) -> Result<(), TransportError> {
            if payload.is_empty() {
                return Err(TransportError::EmptyPayload);
            }
            if payload.len() > 8 {
                return Err(TransportError::PayloadTooLarge {
                    len: payload.len(),
                    max: 8,
                });
            }
            self.queue.push(OutgoingFrame {
                ready_at: now,
                frame: CanFrame::new(self.tx, payload).expect("checked length"),
            });
            Ok(())
        }

        fn handle_frame(&mut self, frame: &CanFrame, _now: Micros) -> Result<(), TransportError> {
            if frame.id() == self.rx {
                self.received.push(frame.data().to_vec());
            }
            Ok(())
        }

        fn outgoing(&mut self, _now: Micros) -> Vec<OutgoingFrame> {
            std::mem::take(&mut self.queue)
        }

        fn receive(&mut self) -> Option<Vec<u8>> {
            if self.received.is_empty() {
                None
            } else {
                Some(self.received.remove(0))
            }
        }

        fn is_active(&self) -> bool {
            !self.queue.is_empty()
        }
    }

    #[test]
    fn pump_moves_payloads_between_endpoints() {
        let mut bus = CanBus::new();
        let na = bus.attach("a");
        let nb = bus.attach("b");
        let ida = CanId::standard(0x10).unwrap();
        let idb = CanId::standard(0x20).unwrap();
        let mut a = RawEndpoint::new(ida, idb);
        let mut b = RawEndpoint::new(idb, ida);

        a.send(&[1, 2, 3], Micros::ZERO).unwrap();
        b.send(&[9], Micros::ZERO).unwrap();
        let t = pump(&mut bus, &mut [(na, &mut a), (nb, &mut b)]).unwrap();

        assert!(t > Micros::ZERO);
        assert_eq!(b.receive(), Some(vec![1, 2, 3]));
        assert_eq!(a.receive(), Some(vec![9]));
        assert!(a.receive().is_none());
    }

    #[test]
    fn pump_is_quiescent_with_no_work() {
        let mut bus = CanBus::new();
        let na = bus.attach("a");
        let mut a = RawEndpoint::new(
            CanId::standard(1).unwrap(),
            CanId::standard(2).unwrap(),
        );
        let t = pump(&mut bus, &mut [(na, &mut a)]).unwrap();
        assert_eq!(t, Micros::ZERO);
    }
}
