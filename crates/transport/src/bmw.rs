//! The raw ECU-id-prefix scheme observed on BMW and Mini Cooper.
//!
//! The paper (§3.2, Step 2) observes: *"some vehicles like BMW and Mini
//! Cooper do not directly adopt the ISO 15765-2 protocol. Instead, the first
//! byte of each CAN frame stores the ID of the target ECU. The remaining
//! bytes are the payload of the diagnostic message. [...] we ignore the
//! first byte and put the remaining bytes together."*
//!
//! The paper does not publish how message boundaries are recovered; real
//! BMW diagnostics prepend a one-byte length to the application payload
//! (as in the classic DS2/ediabas framing). We adopt that convention —
//! **substitution note**: the payload carried after the ECU-id byte starts
//! with a single length byte covering the application message, which is what
//! lets both the live endpoint and the offline decoder delimit messages
//! while still exercising the paper's "strip the first byte and
//! concatenate" code path.

use dpr_can::{CanFrame, CanId, Micros};

use crate::{Endpoint, OutgoingFrame, TransportError};

/// Payload bytes per frame (8 minus the ECU-id byte).
pub const CHUNK: usize = 7;
/// Maximum application payload (one length byte).
pub const MAX_BMW_PAYLOAD: usize = 255;

/// A live endpoint for the BMW raw scheme.
///
/// Both directions run on fixed CAN ids; every frame starts with the target
/// ECU address. There is no flow control — frames are paced by a fixed
/// inter-frame gap.
#[derive(Debug)]
pub struct BmwRawEndpoint {
    tx_id: CanId,
    rx_id: CanId,
    /// ECU address written into byte 0 of outgoing frames.
    peer_addr: u8,
    /// ECU address expected in byte 0 of incoming frames.
    own_addr: u8,
    out_queue: Vec<OutgoingFrame>,
    decoder: BmwStreamDecoder,
    /// Earliest time the next outgoing frame may be scheduled, so that
    /// back-to-back messages never interleave on the bus.
    next_slot: Micros,
}

impl BmwRawEndpoint {
    /// Creates an endpoint that transmits to `peer_addr` on `tx_id` and
    /// accepts frames addressed to `own_addr` on `rx_id`.
    pub fn new(tx_id: CanId, rx_id: CanId, peer_addr: u8, own_addr: u8) -> Self {
        BmwRawEndpoint {
            tx_id,
            rx_id,
            peer_addr,
            own_addr,
            out_queue: Vec::new(),
            decoder: BmwStreamDecoder::new(),
            next_slot: Micros::ZERO,
        }
    }

    /// The identifier this endpoint transmits on.
    pub fn tx_id(&self) -> CanId {
        self.tx_id
    }
}

impl Endpoint for BmwRawEndpoint {
    fn send(&mut self, payload: &[u8], now: Micros) -> Result<(), TransportError> {
        if payload.is_empty() {
            return Err(TransportError::EmptyPayload);
        }
        if payload.len() > MAX_BMW_PAYLOAD {
            return Err(TransportError::PayloadTooLarge {
                len: payload.len(),
                max: MAX_BMW_PAYLOAD,
            });
        }
        // Length-prefixed application payload, chunked into 7-byte slices.
        let mut framed = Vec::with_capacity(payload.len() + 1);
        framed.push(payload.len() as u8);
        framed.extend_from_slice(payload);

        let mut at = now.max(self.next_slot);
        for chunk in framed.chunks(CHUNK) {
            let mut data = Vec::with_capacity(chunk.len() + 1);
            data.push(self.peer_addr);
            data.extend_from_slice(chunk);
            self.out_queue.push(OutgoingFrame {
                ready_at: at,
                frame: CanFrame::new(self.tx_id, &data).expect("chunk fits 8 bytes"),
            });
            at += Micros::from_micros(500);
        }
        self.next_slot = at;
        Ok(())
    }

    fn handle_frame(&mut self, frame: &CanFrame, _now: Micros) -> Result<(), TransportError> {
        if frame.id() != self.rx_id {
            return Ok(());
        }
        if frame.data().first() != Some(&self.own_addr) {
            return Ok(());
        }
        self.decoder.push(frame.data());
        Ok(())
    }

    fn outgoing(&mut self, _now: Micros) -> Vec<OutgoingFrame> {
        std::mem::take(&mut self.out_queue)
    }

    fn receive(&mut self) -> Option<Vec<u8>> {
        self.decoder.pop()
    }

    fn is_active(&self) -> bool {
        !self.out_queue.is_empty() || self.decoder.in_progress()
    }
}

/// Offline reassembly for the BMW raw scheme: strip byte 0 of every frame
/// and concatenate, delimiting messages by the leading length byte.
#[derive(Debug, Default)]
pub struct BmwStreamDecoder {
    buf: Vec<u8>,
    expected: Option<usize>,
    complete: Vec<Vec<u8>>,
}

impl BmwStreamDecoder {
    /// Creates an idle decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the data bytes of one sniffed frame (including the ECU-id
    /// byte, which is ignored per the paper).
    pub fn push(&mut self, data: &[u8]) {
        if data.len() < 2 {
            return;
        }
        let mut chunk = &data[1..];
        while !chunk.is_empty() {
            match self.expected {
                None => {
                    let len = usize::from(chunk[0]);
                    chunk = &chunk[1..];
                    if len == 0 {
                        continue;
                    }
                    self.expected = Some(len);
                    self.buf.clear();
                }
                Some(len) => {
                    let take = (len - self.buf.len()).min(chunk.len());
                    self.buf.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if self.buf.len() == len {
                        self.complete.push(std::mem::take(&mut self.buf));
                        self.expected = None;
                        // Anything after the message in this frame is
                        // padding; stop scanning the chunk.
                        break;
                    }
                }
            }
        }
    }

    /// Pops the next completed payload.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        if self.complete.is_empty() {
            None
        } else {
            Some(self.complete.remove(0))
        }
    }

    /// Drains all completed payloads.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.complete)
    }

    /// Whether a message is partially assembled.
    pub fn in_progress(&self) -> bool {
        self.expected.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pump;
    use dpr_can::CanBus;

    fn pair() -> (BmwRawEndpoint, BmwRawEndpoint) {
        let tool_tx = CanId::standard(0x6F1).unwrap();
        let ecu_tx = CanId::standard(0x640).unwrap();
        (
            BmwRawEndpoint::new(tool_tx, ecu_tx, 0x40, 0xF1),
            BmwRawEndpoint::new(ecu_tx, tool_tx, 0xF1, 0x40),
        )
    }

    fn round_trip(payload: &[u8]) -> (Vec<u8>, usize) {
        let (mut tool, mut ecu) = pair();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        tool.send(payload, Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        (ecu.receive().expect("message should arrive"), bus.log().len())
    }

    #[test]
    fn short_payload_single_frame() {
        let (got, frames) = round_trip(&[0x22, 0xDB, 0xE5]);
        assert_eq!(got, vec![0x22, 0xDB, 0xE5]);
        assert_eq!(frames, 1);
    }

    #[test]
    fn long_payload_spans_frames() {
        let payload: Vec<u8> = (0..50).collect();
        let (got, frames) = round_trip(&payload);
        assert_eq!(got, payload);
        // 51 framed bytes / 7 per frame = 8 frames.
        assert_eq!(frames, 8);
    }

    #[test]
    fn max_payload_round_trips() {
        let payload = vec![7u8; MAX_BMW_PAYLOAD];
        let (got, _) = round_trip(&payload);
        assert_eq!(got.len(), MAX_BMW_PAYLOAD);
    }

    #[test]
    fn rejects_bad_sizes() {
        let (mut tool, _) = pair();
        assert_eq!(tool.send(&[], Micros::ZERO), Err(TransportError::EmptyPayload));
        assert_eq!(
            tool.send(&[0; 256], Micros::ZERO),
            Err(TransportError::PayloadTooLarge { len: 256, max: 255 })
        );
    }

    #[test]
    fn frames_to_other_addresses_ignored() {
        let (_, mut ecu) = pair();
        // Addressed to 0x99, not 0x40.
        let frame = CanFrame::new(CanId::standard(0x6F1).unwrap(), &[0x99, 2, 1, 2]).unwrap();
        ecu.handle_frame(&frame, Micros::ZERO).unwrap();
        assert!(ecu.receive().is_none());
    }

    #[test]
    fn two_messages_back_to_back() {
        let (mut tool, mut ecu) = pair();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        tool.send(&[1, 2, 3], Micros::ZERO).unwrap();
        tool.send(&[9, 8], Micros::from_millis(1)).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        assert_eq!(ecu.receive(), Some(vec![1, 2, 3]));
        assert_eq!(ecu.receive(), Some(vec![9, 8]));
    }

    #[test]
    fn decoder_strips_ecu_id_byte() {
        let mut dec = BmwStreamDecoder::new();
        dec.push(&[0x12, 3, 0x22, 0xDE]); // len 3, first two bytes
        assert!(dec.in_progress());
        dec.push(&[0x12, 0x9C]);
        assert_eq!(dec.pop(), Some(vec![0x22, 0xDE, 0x9C]));
    }

    #[test]
    fn decoder_ignores_runt_frames() {
        let mut dec = BmwStreamDecoder::new();
        dec.push(&[0x12]);
        dec.push(&[]);
        assert!(dec.pop().is_none());
        assert!(!dec.in_progress());
    }
}
