//! Property-based tests: any payload survives segmentation + reassembly on
//! every transport scheme, both through live endpoints and through the
//! offline stream decoders the sniffer pipeline uses.

use dpr_can::{CanBus, CanId, Micros};
use dpr_transport::bmw::{BmwRawEndpoint, BmwStreamDecoder};
use dpr_transport::isotp::{IsoTpConfig, IsoTpEndpoint, IsoTpStreamDecoder, StMin};
use dpr_transport::vwtp::{VwTpEndpoint, VwTpStreamDecoder};
use dpr_transport::{pump, Endpoint};
use proptest::prelude::*;

fn payload_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ISO-TP round trip + sniffer decode agree with the original payload
    /// for arbitrary payloads and arbitrary receiver flow-control tuning.
    #[test]
    fn isotp_round_trip(
        payload in payload_strategy(600),
        block_size in 0u8..=16,
        st_min_ms in 0u8..=3,
    ) {
        let req = CanId::standard(0x7E0).unwrap();
        let rsp = CanId::standard(0x7E8).unwrap();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let mut tool = IsoTpEndpoint::new(req, rsp);
        let mut ecu = IsoTpEndpoint::with_config(
            rsp,
            req,
            IsoTpConfig {
                block_size,
                st_min: StMin::from_millis(st_min_ms),
                ..IsoTpConfig::default()
            },
        );
        tool.send(&payload, Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        let got = ecu.receive(); prop_assert_eq!(got.as_deref(), Some(&payload[..]));

        // The sniffer decoder sees the same payload from the capture.
        let mut decoder = IsoTpStreamDecoder::new();
        for entry in bus.log().frames_with_id(req) {
            decoder.push(entry.frame.data());
        }
        let dec = decoder.pop(); prop_assert_eq!(dec.as_deref(), Some(&payload[..]));
    }

    /// VW TP 2.0 round trip + opcode-driven sniffer decode.
    #[test]
    fn vwtp_round_trip(payloads in proptest::collection::vec(payload_strategy(120), 1..4)) {
        let tool_tx = CanId::standard(0x740).unwrap();
        let ecu_tx = CanId::standard(0x300).unwrap();
        let mut tool = VwTpEndpoint::initiator(tool_tx, ecu_tx, 0x01);
        let mut ecu = VwTpEndpoint::responder(ecu_tx, tool_tx, 0x01);
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");

        for p in &payloads {
            tool.send(p, bus.now()).unwrap();
            pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
            let got = ecu.receive(); prop_assert_eq!(got.as_deref(), Some(&p[..]));
        }

        let mut decoder = VwTpStreamDecoder::new();
        for entry in bus.log().frames_with_id(tool_tx) {
            decoder.push(entry.frame.data());
        }
        let decoded = decoder.drain();
        prop_assert_eq!(decoded, payloads);
    }

    /// BMW raw round trip + strip-and-concatenate sniffer decode.
    #[test]
    fn bmw_round_trip(payloads in proptest::collection::vec(payload_strategy(255), 1..4)) {
        let tool_tx = CanId::standard(0x6F1).unwrap();
        let ecu_tx = CanId::standard(0x640).unwrap();
        let mut tool = BmwRawEndpoint::new(tool_tx, ecu_tx, 0x40, 0xF1);
        let mut ecu = BmwRawEndpoint::new(ecu_tx, tool_tx, 0xF1, 0x40);
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");

        for p in &payloads {
            tool.send(p, bus.now()).unwrap();
        }
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        for p in &payloads {
            let got = ecu.receive(); prop_assert_eq!(got.as_deref(), Some(&p[..]));
        }

        let mut decoder = BmwStreamDecoder::new();
        for entry in bus.log().frames_with_id(tool_tx) {
            decoder.push(entry.frame.data());
        }
        let decoded = decoder.drain();
        prop_assert_eq!(decoded, payloads);
    }

    /// The ISO-TP stream decoder never panics on arbitrary frame bytes.
    #[test]
    fn isotp_decoder_total(frames in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..=8), 0..64)
    ) {
        let mut decoder = IsoTpStreamDecoder::new();
        for f in &frames {
            decoder.push(f);
        }
        let _ = decoder.drain();
    }

    /// The VW TP and BMW stream decoders never panic on arbitrary bytes.
    #[test]
    fn other_decoders_total(frames in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..=8), 0..64)
    ) {
        let mut vw = VwTpStreamDecoder::new();
        let mut bmw = BmwStreamDecoder::new();
        for f in &frames {
            vw.push(f);
            bmw.push(f);
        }
        let _ = vw.drain();
        let _ = bmw.drain();
    }
}
