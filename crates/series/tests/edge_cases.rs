//! Windowed-quantile and ring-retention edge cases, driven through the
//! deterministic [`SeriesStore`] API (caller-supplied snapshots and
//! elapsed times — no sampler thread, no clock).

use dpr_series::{SeriesConfig, SeriesStore, SloStatus};
use dpr_telemetry::Registry;
use std::sync::Arc;
use std::time::Duration;

const TICK: Duration = Duration::from_millis(1000);

fn store(capacity: usize) -> SeriesStore {
    SeriesStore::new(
        SeriesConfig {
            interval: TICK,
            capacity,
        },
        Vec::new(),
    )
}

#[test]
fn empty_window_reports_zero_quantiles() {
    let registry = Registry::new();
    let mut store = store(16);
    let hist = registry.histogram_with("lat", vec![10.0, 100.0, 1000.0]);
    hist.record(50.0);
    store.tick(&registry.snapshot(), TICK);
    // No new observations: the tracked histogram still gets a point,
    // with an empty window.
    store.tick(&registry.snapshot(), TICK);
    let history = store.history();
    let series = &history.histograms["lat"];
    assert_eq!(series.len(), 2);
    let empty = &series[1];
    assert_eq!(empty.count, 0);
    assert_eq!((empty.p50, empty.p95, empty.p99), (0.0, 0.0, 0.0));
}

#[test]
fn all_observations_in_one_bucket_interpolate_within_it() {
    let registry = Registry::new();
    let mut store = store(16);
    let hist = registry.histogram_with("lat", vec![10.0, 100.0, 1000.0]);
    store.tick(&registry.snapshot(), TICK);
    // Everything lands in the (10, 100] bucket.
    for _ in 0..40 {
        hist.record(60.0);
    }
    store.tick(&registry.snapshot(), TICK);
    let history = store.history();
    let point = history.histograms["lat"].last().cloned().expect("point");
    assert_eq!(point.count, 40);
    for q in [point.p50, point.p95, point.p99] {
        assert!((10.0..=100.0).contains(&q), "{point:?}");
    }
    assert!(point.p50 <= point.p95 && point.p95 <= point.p99, "{point:?}");
}

#[test]
fn overflow_bucket_attributes_to_last_finite_bound() {
    let registry = Registry::new();
    let mut store = store(16);
    let hist = registry.histogram_with("lat", vec![10.0, 100.0]);
    store.tick(&registry.snapshot(), TICK);
    // Beyond every bound: the +inf bucket. Quantiles clamp to the last
    // finite bound instead of inventing an infinite latency.
    for _ in 0..10 {
        hist.record(1e9);
    }
    store.tick(&registry.snapshot(), TICK);
    let point = store.history().histograms["lat"]
        .last()
        .cloned()
        .expect("point");
    assert_eq!(point.count, 10);
    assert_eq!((point.p50, point.p95, point.p99), (100.0, 100.0, 100.0));
}

#[test]
fn zero_delta_tick_yields_zero_rate_point() {
    let registry = Registry::new();
    let mut store = store(16);
    registry.counter("jobs.submitted").inc(5);
    store.tick(&registry.snapshot(), TICK);
    // Nothing moved this tick.
    store.tick(&registry.snapshot(), TICK);
    registry.counter("jobs.submitted").inc(2);
    store.tick(&registry.snapshot(), Duration::from_millis(500));
    let history = store.history();
    let series = &history.counters["jobs.submitted"];
    assert_eq!(series.len(), 3);
    assert_eq!(series[0].delta, 5);
    assert_eq!(series[1].delta, 0);
    assert_eq!(series[1].rate, 0.0);
    assert_eq!(series[2].delta, 2);
    assert!((series[2].rate - 4.0).abs() < 1e-9, "{:?}", series[2]);
}

#[test]
fn ring_wraps_after_capacity_is_exceeded() {
    let registry = Registry::new();
    let mut store = store(4);
    let gauge = registry.gauge("jobs.queue_depth");
    let counter = registry.counter("jobs.submitted");
    let hist = registry.histogram_with("lat", vec![10.0, 100.0]);
    for i in 1..=10 {
        gauge.set(i);
        counter.inc(1);
        hist.record(50.0);
        store.tick(&registry.snapshot(), TICK);
    }
    let history = store.history();
    for (kind, len) in [
        ("counters", history.counters["jobs.submitted"].len()),
        ("gauges", history.gauges["jobs.queue_depth"].len()),
        ("histograms", history.histograms["lat"].len()),
    ] {
        assert_eq!(len, 4, "{kind} ring should hold exactly the capacity");
    }
    // Only the newest 4 ticks survive: values 7..=10, t_ms 7000..=10000.
    let gauges: Vec<i64> = history.gauges["jobs.queue_depth"]
        .iter()
        .map(|p| p.value)
        .collect();
    assert_eq!(gauges, vec![7, 8, 9, 10]);
    assert_eq!(history.gauges["jobs.queue_depth"][0].t_ms, 7000);
    assert_eq!(history.samples, 10);
}

#[test]
fn history_round_trips_through_json() {
    let registry = Registry::new();
    let mut store = SeriesStore::new(
        SeriesConfig {
            interval: TICK,
            capacity: 8,
        },
        dpr_series::service_slos(4),
    );
    registry.counter("http.jobs.status.202").inc(10);
    registry.gauge("jobs.queue_depth").set(2);
    registry.histogram("http.jobs.latency_us").record(1234.0);
    store.tick(&registry.snapshot(), TICK);
    let history = store.history();
    let text = dpr_telemetry::json::to_string(&history).expect("serialize");
    let parsed: dpr_series::History = dpr_telemetry::json::from_str(&text).expect("parse");
    assert_eq!(parsed, history);
    assert_eq!(parsed.slos.len(), 3);
    assert!(parsed.slos.iter().all(|s| s.state == "ok"), "{parsed:?}");
}

#[test]
fn error_burst_flips_http_errors_slo_to_burning_and_back() {
    let registry = Arc::new(Registry::new());
    let mut store = SeriesStore::new(
        SeriesConfig {
            interval: TICK,
            capacity: 64,
        },
        dpr_series::service_slos(4),
    );
    let ok = registry.counter("http.jobs.status.202");
    let rejected = registry.counter("http.jobs.status.429");
    // Healthy traffic.
    for _ in 0..12 {
        ok.inc(50);
        store.tick(&registry.snapshot(), TICK);
    }
    let grade = |statuses: &[SloStatus]| -> String {
        statuses
            .iter()
            .find(|s| s.slug == "http_errors")
            .map(|s| s.state.clone())
            .expect("http_errors slo")
    };
    assert_eq!(grade(&store.statuses()), "ok");
    // Burst: every response a 429 for six ticks.
    for _ in 0..6 {
        rejected.inc(50);
        store.tick(&registry.snapshot(), TICK);
    }
    assert_eq!(grade(&store.statuses()), "burning");
    // Recovery: healthy ticks age the burst out of the short window.
    for _ in 0..40 {
        ok.inc(50);
        store.tick(&registry.snapshot(), TICK);
    }
    assert_eq!(grade(&store.statuses()), "ok");
}
