//! Declarative service-level objectives over the sampled series,
//! evaluated as multi-window burn rates.
//!
//! Each objective defines, per sampler tick, a *bad* count and a
//! *total* count (requests that failed vs all requests; observations
//! over the latency limit vs all observations; saturated ticks vs all
//! ticks). The burn rate over a window is the bad fraction divided by
//! the error budget — burn 1.0 means the service is spending its budget
//! exactly as fast as the objective allows, burn 10 means ten times
//! faster. Following the multi-window pattern, a *short* window catches
//! incidents quickly while a *long* window keeps one noisy tick from
//! paging:
//!
//! * `burning` — short-window burn ≥ [`SloSpec::page_burn`] **and**
//!   long-window burn ≥ [`SloSpec::warn_burn`]: a sustained, fast burn.
//! * `warn` — either window ≥ [`SloSpec::warn_burn`]: budget is being
//!   spent faster than allowed, not yet catastrophically.
//! * `ok` — otherwise. Windows with no traffic burn nothing.

use crate::ring::Ring;
use serde::{Deserialize, Serialize};

/// What an objective measures each sampler tick.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Share of HTTP responses that are 5xx or 429, summed across every
    /// `http.<route>.status.<code>` counter delta.
    HttpErrorRatio,
    /// Share of the named histogram's window observations whose bucket
    /// lies entirely at or above `limit_us`.
    LatencyAbove {
        /// The histogram to watch (e.g. `http.jobs.latency_us`).
        histogram: String,
        /// Observations at or above this are bad, microseconds.
        limit_us: f64,
    },
    /// Share of ticks where the named gauge is at or above `limit`
    /// (e.g. queue depth at capacity — saturation).
    GaugeAtLeast {
        /// The gauge to watch (e.g. `jobs.queue_depth`).
        gauge: String,
        /// Gauge values at or above this count the tick as bad.
        limit: i64,
    },
}

/// One declarative objective: what to measure, how much failure the
/// budget allows, and the two burn-rate windows that grade it.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Dot-free identifier (`http_errors`); names the `slo.<slug>.state`
    /// gauge and the `/healthz` entry.
    pub slug: String,
    /// What bad/total mean for this objective.
    pub objective: Objective,
    /// Allowed bad fraction (the error budget), e.g. `0.01` for 99%.
    pub budget: f64,
    /// Ticks in the short (fast-detection) window.
    pub short_samples: usize,
    /// Ticks in the long (confirmation) window.
    pub long_samples: usize,
    /// Burn rate at which either window raises `warn`.
    pub warn_burn: f64,
    /// Short-window burn rate that (with a warm long window) means
    /// `burning`.
    pub page_burn: f64,
}

impl SloSpec {
    /// A spec with the default windows (6 short / 36 long ticks) and
    /// thresholds (warn at 2× budget spend, page at 10×).
    pub fn new(slug: &str, objective: Objective, budget: f64) -> SloSpec {
        SloSpec {
            slug: slug.to_string(),
            objective,
            budget: budget.clamp(1e-6, 1.0),
            short_samples: 6,
            long_samples: 36,
            warn_burn: 2.0,
            page_burn: 10.0,
        }
    }
}

/// One objective's current grade, as serialized into `/healthz`,
/// `/debug/snapshot`, and `/metrics/history`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// The spec's slug.
    pub slug: String,
    /// `ok`, `warn`, or `burning`.
    pub state: String,
    /// Burn rate over the short window (bad fraction / budget).
    pub short_burn: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
    /// The error budget the burn rates are relative to.
    pub budget: f64,
    /// Human summary: bad/total over the long window.
    pub detail: String,
}

impl SloStatus {
    /// The state as a gauge value: ok 0, warn 1, burning 2.
    pub fn state_code(&self) -> i64 {
        match self.state.as_str() {
            "burning" => 2,
            "warn" => 1,
            _ => 0,
        }
    }
}

/// A spec plus its per-tick (bad, total) window.
#[derive(Debug, Clone)]
pub(crate) struct SloTrack {
    pub(crate) spec: SloSpec,
    window: Ring<(f64, f64)>,
}

impl SloTrack {
    pub(crate) fn new(spec: SloSpec) -> SloTrack {
        let depth = spec.long_samples.max(spec.short_samples).max(1);
        SloTrack {
            spec,
            window: Ring::new(depth),
        }
    }

    /// Records one tick's measurement.
    pub(crate) fn record(&mut self, bad: f64, total: f64) {
        self.window.push((bad.max(0.0), total.max(0.0)));
    }

    fn burn_over(&self, ticks: usize) -> (f64, f64, f64) {
        let (mut bad, mut total) = (0.0, 0.0);
        for (b, t) in self.window.tail(ticks) {
            bad += b;
            total += t;
        }
        if total <= 0.0 {
            (0.0, bad, total)
        } else {
            ((bad / total) / self.spec.budget, bad, total)
        }
    }

    /// Grades the current windows.
    pub(crate) fn status(&self) -> SloStatus {
        let (short_burn, _, _) = self.burn_over(self.spec.short_samples);
        let (long_burn, bad, total) = self.burn_over(self.spec.long_samples);
        let state = if short_burn >= self.spec.page_burn && long_burn >= self.spec.warn_burn {
            "burning"
        } else if short_burn >= self.spec.warn_burn || long_burn >= self.spec.warn_burn {
            "warn"
        } else {
            "ok"
        };
        SloStatus {
            slug: self.spec.slug.clone(),
            state: state.to_string(),
            short_burn,
            long_burn,
            budget: self.spec.budget,
            detail: format!(
                "{bad:.0}/{total:.0} bad over the last {} tick(s)",
                self.window.len().min(self.spec.long_samples)
            ),
        }
    }
}

/// Reads `name` as an `f64`, falling back to `default` when unset or
/// unparsable.
fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Environment variable: allowed bad fraction for the HTTP error-ratio
/// objective (default 0.01 — 99% of responses neither 5xx nor 429).
pub const SLO_ERROR_BUDGET_ENV: &str = "DPR_SLO_ERROR_BUDGET";
/// Environment variable: submit-latency limit in microseconds for the
/// `http.jobs.latency_us` objective (default 250000).
pub const SLO_LATENCY_US_ENV: &str = "DPR_SLO_LATENCY_US";
/// Environment variable: allowed share of submits slower than the
/// latency limit (default 0.05).
pub const SLO_LATENCY_BUDGET_ENV: &str = "DPR_SLO_LATENCY_BUDGET";
/// Environment variable: allowed share of ticks with the job queue at
/// capacity (default 0.10).
pub const SLO_QUEUE_BUDGET_ENV: &str = "DPR_SLO_QUEUE_BUDGET";

/// The analysis service's default objectives, tunable through the
/// `DPR_SLO_*` environment variables:
///
/// * `http_errors` — 5xx/429 share of all HTTP responses.
/// * `jobs_latency` — share of `POST /jobs` requests slower than the
///   limit, measured server-side from `http.jobs.latency_us`.
/// * `queue_saturation` — share of ticks with `jobs.queue_depth` at the
///   queue capacity.
pub fn service_slos(queue_capacity: usize) -> Vec<SloSpec> {
    vec![
        SloSpec::new(
            "http_errors",
            Objective::HttpErrorRatio,
            env_f64(SLO_ERROR_BUDGET_ENV, 0.01),
        ),
        SloSpec::new(
            "jobs_latency",
            Objective::LatencyAbove {
                histogram: "http.jobs.latency_us".to_string(),
                limit_us: env_f64(SLO_LATENCY_US_ENV, 250_000.0),
            },
            env_f64(SLO_LATENCY_BUDGET_ENV, 0.05),
        ),
        SloSpec::new(
            "queue_saturation",
            Objective::GaugeAtLeast {
                gauge: "jobs.queue_depth".to_string(),
                limit: queue_capacity.max(1) as i64,
            },
            env_f64(SLO_QUEUE_BUDGET_ENV, 0.10),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::new("t", Objective::HttpErrorRatio, 0.01)
    }

    #[test]
    fn no_traffic_burns_nothing() {
        let mut track = SloTrack::new(spec());
        for _ in 0..10 {
            track.record(0.0, 0.0);
        }
        let status = track.status();
        assert_eq!(status.state, "ok");
        assert_eq!(status.short_burn, 0.0);
        assert_eq!(status.long_burn, 0.0);
    }

    #[test]
    fn sustained_errors_burn_then_recover() {
        let mut track = SloTrack::new(spec());
        // Healthy traffic first.
        for _ in 0..36 {
            track.record(0.0, 100.0);
        }
        assert_eq!(track.status().state, "ok");
        // A full-failure burst: short window saturates fast; budget 1%
        // means burn 100 in the burst ticks.
        for _ in 0..6 {
            track.record(100.0, 100.0);
        }
        let status = track.status();
        assert_eq!(status.state, "burning", "{status:?}");
        assert!(status.short_burn > 50.0, "{status:?}");
        assert_eq!(status.state_code(), 2);
        // Recovery: healthy ticks push the burst out of the short
        // window; the long window still warns until it ages out.
        for _ in 0..6 {
            track.record(0.0, 100.0);
        }
        let status = track.status();
        assert_ne!(status.state, "burning", "{status:?}");
        for _ in 0..36 {
            track.record(0.0, 100.0);
        }
        assert_eq!(track.status().state, "ok");
    }

    #[test]
    fn warn_needs_only_one_window() {
        let mut track = SloTrack::new(spec());
        for _ in 0..36 {
            track.record(0.0, 100.0);
        }
        // 3% bad in the short window: burn 3 ≥ warn 2, < page 10.
        for _ in 0..6 {
            track.record(3.0, 100.0);
        }
        let status = track.status();
        assert_eq!(status.state, "warn", "{status:?}");
    }

    #[test]
    fn service_slos_cover_the_three_objectives() {
        let slos = service_slos(8);
        let slugs: Vec<&str> = slos.iter().map(|s| s.slug.as_str()).collect();
        assert_eq!(slugs, ["http_errors", "jobs_latency", "queue_saturation"]);
        assert!(slos.iter().all(|s| s.budget > 0.0 && s.budget <= 1.0));
    }
}
