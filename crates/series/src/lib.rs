//! `dpr-series` — metrics history and SLO burn-rate health for the
//! DP-Reverser observability stack, std-only like the rest of the
//! workspace.
//!
//! The telemetry [`Registry`](dpr_telemetry::Registry) answers "what is
//! the total so far"; this crate answers "what happened in the last few
//! minutes". A [`Sampler`] thread snapshots the registry on a fixed
//! interval and diffs consecutive snapshots into fixed-capacity
//! ring-buffer time series:
//!
//! * counters → windowed **rates** ([`RatePoint`]),
//! * gauges → **last-value** series ([`GaugePoint`]),
//! * histograms → **sliding-window p50/p95/p99**, computed from the
//!   bucket-count delta between two snapshots ([`WindowPoint`]).
//!
//! On top of the series sits the SLO engine: declarative objectives
//! ([`SloSpec`]) graded each tick as multi-window burn rates
//! ([`SloStatus`] — `ok`/`warn`/`burning`). `dpr-obs` serves the whole
//! store as `GET /metrics/history`; `dpr-serve` starts a sampler per
//! service and folds the SLO grades into `/healthz` and
//! `/debug/snapshot`; `dpr-bench top` renders it all as a terminal
//! dashboard.
//!
//! Interval and retention come from `DPR_SERIES_INTERVAL_MS` /
//! `DPR_SERIES_CAPACITY` ([`SeriesConfig::from_env`]); the service
//! objectives honor the `DPR_SLO_*` variables ([`service_slos`]).
//! Memory is bounded independent of uptime, and sampling is
//! observation-only — pipeline output is byte-identical with the
//! sampler on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ring;
mod sampler;
mod slo;
mod store;

pub use ring::Ring;
pub use sampler::Sampler;
pub use slo::{
    service_slos, Objective, SloSpec, SloStatus, SLO_ERROR_BUDGET_ENV, SLO_LATENCY_BUDGET_ENV,
    SLO_LATENCY_US_ENV, SLO_QUEUE_BUDGET_ENV,
};
pub use store::{
    GaugePoint, History, RatePoint, SeriesConfig, SeriesStore, WindowPoint, SERIES_CAPACITY_ENV,
    SERIES_INTERVAL_ENV,
};
