//! A fixed-capacity ring buffer: push evicts the oldest entry once the
//! capacity is reached, so a series' memory is bounded no matter how
//! long the sampler runs.

use std::collections::VecDeque;

/// A bounded FIFO of series points. `push` beyond `capacity` drops the
/// oldest entry and counts it, so retention is exact and observable.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `capacity` entries (floored to 1).
    pub fn new(capacity: usize) -> Ring<T> {
        let capacity = capacity.max(1);
        Ring {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `value`, evicting the oldest entry when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many entries capacity eviction has discarded so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recently pushed entry.
    pub fn last(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// The newest `n` entries, oldest-first.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &T> {
        self.buf.iter().skip(self.buf.len().saturating_sub(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_beyond_capacity() {
        let mut ring = Ring::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.last(), Some(&4));
        assert_eq!(ring.tail(2).copied().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn capacity_floors_to_one() {
        let mut ring = Ring::new(0);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.last(), Some(&2));
    }
}
