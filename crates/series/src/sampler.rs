//! The sampler thread: snapshots a [`Registry`] every tick, feeds the
//! [`SeriesStore`], and publishes its own `series.*` / `slo.*` metrics
//! back into the registry it watches.
//!
//! Sampling is observation-only: the thread *reads* the registry
//! snapshot and writes nothing but its own bookkeeping metrics, so
//! pipeline output is byte-identical with the sampler on or off (pinned
//! by `tests/series_identity.rs`).

use crate::store::{History, SeriesConfig, SeriesStore};
use crate::slo::{SloSpec, SloStatus};
use dpr_telemetry::Registry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

struct Shared {
    registry: Arc<Registry>,
    store: Mutex<SeriesStore>,
    last_tick: Mutex<Instant>,
    stop: AtomicBool,
}

/// A running sampler: one named thread (`dpr-series-sample`) ticking at
/// the configured interval, plus the store it fills. Shareable behind
/// an `Arc` — routers read history/statuses while the thread samples.
pub struct Sampler {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Sampler {
    /// Starts sampling `registry`. The first tick happens synchronously
    /// before this returns, so `/metrics/history` and the SLO gauges
    /// answer immediately after startup.
    pub fn start(registry: Arc<Registry>, config: SeriesConfig, slos: Vec<SloSpec>) -> Arc<Sampler> {
        let interval = config.interval;
        let shared = Arc::new(Shared {
            store: Mutex::new(SeriesStore::new(config, slos)),
            last_tick: Mutex::new(Instant::now()),
            stop: AtomicBool::new(false),
            registry,
        });
        tick(&shared);
        let handle = std::thread::Builder::new()
            .name("dpr-series-sample".to_string())
            .spawn({
                let shared = Arc::clone(&shared);
                move || {
                    while !shared.stop.load(Ordering::SeqCst) {
                        std::thread::park_timeout(interval);
                        if shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        tick(&shared);
                    }
                }
            })
            .expect("spawn sampler thread");
        Arc::new(Sampler {
            shared,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// Takes one sample now, outside the timer — tests and benches use
    /// this to capture a window deterministically.
    pub fn force_tick(&self) {
        tick(&self.shared);
    }

    /// The current history document.
    pub fn history(&self) -> History {
        self.shared.store.lock().history()
    }

    /// The current SLO grades.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.shared.store.lock().statuses()
    }

    /// Ticks recorded so far.
    pub fn samples(&self) -> u64 {
        self.shared.store.lock().samples()
    }

    /// Stops the sampler thread and joins it. Idempotent; the store
    /// stays readable afterwards.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let handle = self.handle.lock().take();
        if let Some(handle) = handle {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let store = self.shared.store.lock();
        f.debug_struct("Sampler")
            .field("samples", &store.samples())
            .field("tracked", &store.tracked())
            .field("stopped", &self.shared.stop.load(Ordering::Relaxed))
            .finish()
    }
}

/// One tick: measure elapsed wall time, snapshot, record, then publish
/// the sampler's own metrics (which the *next* snapshot will see —
/// self-observation converges because the metric set is fixed).
fn tick(shared: &Shared) {
    let now = Instant::now();
    let elapsed = {
        let mut last = shared.last_tick.lock();
        let elapsed = now.duration_since(*last);
        *last = now;
        elapsed
    };
    let snapshot = shared.registry.snapshot();
    let started = Instant::now();
    let (tracked, statuses) = {
        let mut store = shared.store.lock();
        store.tick(&snapshot, elapsed);
        (store.tracked(), store.statuses())
    };
    let registry = &shared.registry;
    registry.counter("series.samples").inc(1);
    registry.gauge("series.tracked").set(tracked as i64);
    registry
        .histogram("series.sample_us")
        .record_duration(started.elapsed());
    registry.counter("slo.evaluations").inc(statuses.len() as u64);
    let mut burning = 0;
    for status in &statuses {
        if status.state == "burning" {
            burning += 1;
        }
        registry
            .gauge(&format!("slo.{}.state", status.slug))
            .set(status.state_code());
    }
    registry.gauge("slo.burning").set(burning);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sampler_ticks_and_publishes_self_metrics() {
        let registry = Arc::new(Registry::new());
        registry.counter("jobs.submitted").inc(3);
        let sampler = Sampler::start(
            Arc::clone(&registry),
            SeriesConfig {
                interval: Duration::from_millis(5),
                capacity: 8,
            },
            crate::slo::service_slos(4),
        );
        registry.counter("jobs.submitted").inc(2);
        sampler.force_tick();
        let history = sampler.history();
        assert!(history.samples >= 2, "{history:?}");
        let series = history.counters.get("jobs.submitted").expect("tracked");
        assert_eq!(series.last().map(|p| p.delta), Some(2));
        assert_eq!(history.slos.len(), 3);
        sampler.stop();
        let snapshot = registry.snapshot();
        assert!(snapshot.counters.get("series.samples").copied() >= Some(2));
        assert_eq!(snapshot.gauges.get("slo.http_errors.state"), Some(&0));
        // stop is idempotent and the store stays readable.
        sampler.stop();
        assert!(sampler.samples() >= 2);
    }
}
