//! The series store: ring-buffered windowed views of a metrics
//! registry, derived by diffing consecutive [`MetricsSnapshot`]s.
//!
//! * Counters become **rate series**: the delta between two snapshots
//!   divided by the tick's wall time ([`RatePoint`]).
//! * Gauges become **last-value series** ([`GaugePoint`]).
//! * Histograms become **sliding-window quantile series**: the bucket
//!   counts of the previous snapshot are subtracted from the current
//!   one ([`HistogramSnapshot::delta_since`]) and p50/p95/p99 are
//!   estimated over only the observations that landed in the window
//!   ([`WindowPoint`]).
//!
//! Memory is bounded independent of uptime: every series is a
//! fixed-capacity [`Ring`], and the number of series is bounded by the
//! metrics taxonomy (a fixed set of names — routes, status codes,
//! pipeline stages — not per-request data).

use crate::ring::Ring;
use crate::slo::{Objective, SloSpec, SloStatus, SloTrack};
use dpr_telemetry::{HistogramSnapshot, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Environment variable: sampler tick interval in milliseconds
/// (default 1000, floored to 10).
pub const SERIES_INTERVAL_ENV: &str = "DPR_SERIES_INTERVAL_MS";
/// Environment variable: points retained per series (default 120,
/// clamped to 2..=100000).
pub const SERIES_CAPACITY_ENV: &str = "DPR_SERIES_CAPACITY";

/// Sampler tuning: how often to snapshot and how much to retain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesConfig {
    /// Time between sampler ticks.
    pub interval: Duration,
    /// Points retained per series; with the default 1 s interval, 120
    /// points is two minutes of history.
    pub capacity: usize,
}

impl Default for SeriesConfig {
    fn default() -> SeriesConfig {
        SeriesConfig {
            interval: Duration::from_millis(1000),
            capacity: 120,
        }
    }
}

impl SeriesConfig {
    /// Reads `DPR_SERIES_INTERVAL_MS` / `DPR_SERIES_CAPACITY`, falling
    /// back to the defaults for unset or unparsable values.
    pub fn from_env() -> SeriesConfig {
        let defaults = SeriesConfig::default();
        let interval_ms: u64 = std::env::var(SERIES_INTERVAL_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(defaults.interval.as_millis() as u64);
        let capacity: usize = std::env::var(SERIES_CAPACITY_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(defaults.capacity);
        SeriesConfig {
            interval: Duration::from_millis(interval_ms.max(10)),
            capacity: capacity.clamp(2, 100_000),
        }
    }
}

/// One counter tick: how much the counter grew and the growth per
/// second over the tick's wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Milliseconds since the sampler started.
    pub t_ms: u64,
    /// Counter increase within this tick.
    pub delta: u64,
    /// `delta` per second of tick wall time.
    pub rate: f64,
}

/// One gauge tick: the value at sample time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugePoint {
    /// Milliseconds since the sampler started.
    pub t_ms: u64,
    /// The gauge's value when the snapshot was taken.
    pub value: i64,
}

/// One histogram tick: the window's observation count and estimated
/// percentiles. An empty window (zero observations) reports 0.0 for
/// every quantile, matching [`HistogramSnapshot::quantile`] on empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowPoint {
    /// Milliseconds since the sampler started.
    pub t_ms: u64,
    /// Observations recorded within this tick.
    pub count: u64,
    /// Estimated median over the window.
    pub p50: f64,
    /// Estimated 95th percentile over the window.
    pub p95: f64,
    /// Estimated 99th percentile over the window.
    pub p99: f64,
}

/// The full history document `GET /metrics/history` serves. The JSON
/// grammar is pinned by CI: top-level keys `interval_ms`, `capacity`,
/// `samples`, `counters`, `gauges`, `histograms`, `slos`; each series
/// is a name → array-of-points map, oldest point first.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// The configured tick interval, milliseconds.
    pub interval_ms: u64,
    /// Points retained per series.
    pub capacity: u64,
    /// Ticks recorded since the sampler started.
    pub samples: u64,
    /// Counter rate series by metric name.
    pub counters: BTreeMap<String, Vec<RatePoint>>,
    /// Gauge last-value series by metric name.
    pub gauges: BTreeMap<String, Vec<GaugePoint>>,
    /// Histogram window-quantile series by metric name.
    pub histograms: BTreeMap<String, Vec<WindowPoint>>,
    /// Current SLO grades, one per configured objective.
    pub slos: Vec<SloStatus>,
}

/// The ring-buffered series plus the SLO tracks, fed one snapshot per
/// tick. Deterministic and clock-free: the caller supplies both the
/// snapshot and the elapsed wall time, so tests drive it directly.
#[derive(Debug)]
pub struct SeriesStore {
    config: SeriesConfig,
    last: MetricsSnapshot,
    t_ms: u64,
    samples: u64,
    counters: BTreeMap<String, Ring<RatePoint>>,
    gauges: BTreeMap<String, Ring<GaugePoint>>,
    histograms: BTreeMap<String, Ring<WindowPoint>>,
    slos: Vec<SloTrack>,
}

impl SeriesStore {
    /// An empty store with the given retention and objectives.
    pub fn new(config: SeriesConfig, slos: Vec<SloSpec>) -> SeriesStore {
        SeriesStore {
            config,
            last: MetricsSnapshot::default(),
            t_ms: 0,
            samples: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            slos: slos.into_iter().map(SloTrack::new).collect(),
        }
    }

    /// The configured interval/retention.
    pub fn config(&self) -> &SeriesConfig {
        &self.config
    }

    /// Ticks recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Distinct series currently tracked, across all three kinds.
    pub fn tracked(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Records one tick: derives windowed points from the difference
    /// between `snapshot` and the previous tick's snapshot, then
    /// re-grades every SLO. `elapsed` is the tick's wall time (floored
    /// to 1 ms so a forced back-to-back tick cannot divide by zero).
    pub fn tick(&mut self, snapshot: &MetricsSnapshot, elapsed: Duration) {
        let elapsed = elapsed.max(Duration::from_millis(1));
        let secs = elapsed.as_secs_f64();
        self.t_ms += elapsed.as_millis() as u64;
        let t_ms = self.t_ms;
        let capacity = self.config.capacity;

        // Counters: a zero-delta tick still yields a point for every
        // already-tracked series (rate 0), so gaps read as silence, not
        // missing data. New counters start being tracked on their first
        // nonzero delta.
        let deltas = snapshot.counter_deltas_since(&self.last);
        for (name, ring) in &mut self.counters {
            if !deltas.contains_key(name) {
                ring.push(RatePoint {
                    t_ms,
                    delta: 0,
                    rate: 0.0,
                });
            }
        }
        for (name, delta) in &deltas {
            self.counters
                .entry(name.clone())
                .or_insert_with(|| Ring::new(capacity))
                .push(RatePoint {
                    t_ms,
                    delta: *delta,
                    rate: *delta as f64 / secs,
                });
        }

        // Gauges: last value, tracked from first appearance.
        for (name, value) in &snapshot.gauges {
            self.gauges
                .entry(name.clone())
                .or_insert_with(|| Ring::new(capacity))
                .push(GaugePoint {
                    t_ms,
                    value: *value,
                });
        }

        // Histograms: bucket-delta windows. Tracking starts with the
        // first window that actually observed something; from then on
        // every tick gets a point, including empty windows.
        for (name, hist) in &snapshot.histograms {
            let delta = window_delta(hist, self.last.histograms.get(name));
            if delta.count == 0 && !self.histograms.contains_key(name) {
                continue;
            }
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| Ring::new(capacity))
                .push(WindowPoint {
                    t_ms,
                    count: delta.count,
                    p50: delta.quantile(0.50),
                    p95: delta.quantile(0.95),
                    p99: delta.quantile(0.99),
                });
        }

        // SLOs measure the same window the series did.
        for track in &mut self.slos {
            let (bad, total) = measure(&track.spec.objective, snapshot, &self.last, &deltas);
            track.record(bad, total);
        }

        self.samples += 1;
        self.last = snapshot.clone();
    }

    /// Current grades, one per objective, in spec order.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.slos.iter().map(SloTrack::status).collect()
    }

    /// Freezes everything into the serializable history document.
    pub fn history(&self) -> History {
        History {
            interval_ms: self.config.interval.as_millis() as u64,
            capacity: self.config.capacity as u64,
            samples: self.samples,
            counters: self
                .counters
                .iter()
                .map(|(name, ring)| (name.clone(), ring.iter().cloned().collect()))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, ring)| (name.clone(), ring.iter().cloned().collect()))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, ring)| (name.clone(), ring.iter().cloned().collect()))
                .collect(),
            slos: self.statuses(),
        }
    }
}

/// The histogram's window since the previous snapshot (whole state when
/// the histogram is new).
fn window_delta(now: &HistogramSnapshot, before: Option<&HistogramSnapshot>) -> HistogramSnapshot {
    match before {
        Some(before) => now.delta_since(before),
        None => now.clone(),
    }
}

/// One tick's (bad, total) for an objective.
fn measure(
    objective: &Objective,
    snapshot: &MetricsSnapshot,
    last: &MetricsSnapshot,
    counter_deltas: &BTreeMap<String, u64>,
) -> (f64, f64) {
    match objective {
        Objective::HttpErrorRatio => {
            let (mut bad, mut total) = (0u64, 0u64);
            for (name, delta) in counter_deltas {
                let Some(code) = status_code(name) else {
                    continue;
                };
                total += delta;
                if code >= 500 || code == 429 {
                    bad += delta;
                }
            }
            (bad as f64, total as f64)
        }
        Objective::LatencyAbove { histogram, limit_us } => {
            let Some(now) = snapshot.histograms.get(histogram) else {
                return (0.0, 0.0);
            };
            let delta = window_delta(now, last.histograms.get(histogram));
            let mut bad = 0u64;
            for (idx, count) in delta.counts.iter().enumerate() {
                // Bucket idx covers (lower, bounds[idx]]; the overflow
                // bucket's lower bound is the last finite bound.
                let lower = match idx.checked_sub(1) {
                    Some(prev) => delta.bounds.get(prev).copied().unwrap_or(f64::MAX),
                    None => 0.0,
                };
                if lower >= *limit_us {
                    bad += count;
                }
            }
            (bad as f64, delta.count as f64)
        }
        Objective::GaugeAtLeast { gauge, limit } => {
            let value = snapshot.gauges.get(gauge).copied().unwrap_or(0);
            ((value >= *limit) as u64 as f64, 1.0)
        }
    }
}

/// Parses `http.<route>.status.<code>` names; `None` for everything
/// else.
fn status_code(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("http.")?;
    let (_route, code) = rest.split_once(".status.")?;
    code.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_code_parses_only_status_counters() {
        assert_eq!(status_code("http.jobs.status.202"), Some(202));
        assert_eq!(status_code("http.jobs.status.429"), Some(429));
        assert_eq!(status_code("http.jobs.requests"), None);
        assert_eq!(status_code("serve.http_503"), None);
    }

    #[test]
    fn config_from_env_clamps() {
        // No env mutation here (env tests live one-per-file); just the
        // default path.
        let config = SeriesConfig::default();
        assert_eq!(config.interval, Duration::from_millis(1000));
        assert_eq!(config.capacity, 120);
    }
}
