//! Baseline formula-inference algorithms the paper compares against (§4.4).
//!
//! * [`LinearRegression`] — ordinary least squares over `[1, X0, (X1)]`,
//!   as LibreCAN uses to relate CAN fields to OBD sensor values. It can
//!   only express `Y = β0·X0 + β1·X1 + β2` and therefore misses the
//!   nonlinear KWP formulas (the paper's engine-speed example `X0·X1/5`).
//! * [`PolynomialFit`] — degree-2 multivariate polynomial curve fitting
//!   over `[1, X0, X1, X0·X1, X0², X1²]`. It *can* express cross terms but
//!   is fragile to OCR outliers, which is why the paper measures only
//!   32.1% precision for it (Tab. 10).
//!
//! Both implement [`Regressor`], the same fit-and-predict surface the GP
//! engine's [`FittedModel`](dpr_gp::FittedModel) offers, so the Tab. 8 /
//! Tab. 10 benches can swap algorithms freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use dpr_gp::Dataset;

/// A fitted baseline model: coefficients over a fixed feature basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineModel {
    /// Human-readable name of the algorithm that produced the model.
    pub algorithm: &'static str,
    basis: Basis,
    coefficients: Vec<f64>,
    /// Mean absolute training error.
    pub train_error: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Basis {
    /// `[1, X0, …, Xn]`.
    Linear,
    /// `[1, X0, X1, X0·X1, X0², X1²]` (degree-2 terms for up to 2 vars).
    Quadratic,
}

impl Basis {
    fn features(self, x: &[f64]) -> Vec<f64> {
        match self {
            Basis::Linear => {
                let mut f = Vec::with_capacity(x.len() + 1);
                f.push(1.0);
                f.extend_from_slice(x);
                f
            }
            Basis::Quadratic => match x.len() {
                1 => vec![1.0, x[0], x[0] * x[0]],
                _ => vec![1.0, x[0], x[1], x[0] * x[1], x[0] * x[0], x[1] * x[1]],
            },
        }
    }
}

impl BaselineModel {
    /// Predicts the target for an input row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.basis
            .features(x)
            .iter()
            .zip(&self.coefficients)
            .map(|(f, c)| f * c)
            .sum()
    }

    /// Mean absolute error on a data set.
    pub fn error_on(&self, data: &Dataset) -> f64 {
        let mut acc = 0.0;
        for (row, y) in data.iter() {
            acc += (self.predict(row) - y).abs();
        }
        acc / data.len() as f64
    }

    /// The fitted coefficients in basis order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Numeric agreement with a reference function over a grid — the same
    /// correctness criterion used for GP models, so precision numbers are
    /// comparable.
    pub fn agrees_with<F>(&self, reference: F, ranges: &[(f64, f64)], tolerance: f64) -> bool
    where
        F: Fn(&[f64]) -> f64,
    {
        const STEPS: usize = 12;
        let mut row = vec![0.0; ranges.len()];
        let mut indices = vec![0usize; ranges.len()];
        loop {
            for (k, &(lo, hi)) in ranges.iter().enumerate() {
                let t = indices[k] as f64 / (STEPS - 1) as f64;
                // Raw message bytes are integers; judge on integer points.
                row[k] = (lo + (hi - lo) * t).round();
            }
            let want = reference(&row);
            let got = self.predict(&row);
            if (got - want).abs() > tolerance * want.abs().max(1.0) {
                return false;
            }
            let mut k = 0;
            loop {
                if k == ranges.len() {
                    return true;
                }
                indices[k] += 1;
                if indices[k] < STEPS {
                    break;
                }
                indices[k] = 0;
                k += 1;
            }
        }
    }
}

/// A baseline fitting algorithm.
pub trait Regressor {
    /// Fits the data set, returning the model, or `None` if the underlying
    /// linear system is singular.
    fn fit(&self, data: &Dataset) -> Option<BaselineModel>;

    /// The algorithm's display name.
    fn name(&self) -> &'static str;
}

/// Ordinary least-squares linear regression (`Y = β·[1, X…]`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearRegression;

/// Degree-2 polynomial curve fitting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolynomialFit;

fn fit_basis(basis: Basis, name: &'static str, data: &Dataset) -> Option<BaselineModel> {
    let features: Vec<Vec<f64>> = data.x().iter().map(|r| basis.features(r)).collect();
    let coefficients = ols(&features, data.y())?;
    let mut model = BaselineModel {
        algorithm: name,
        basis,
        coefficients,
        train_error: 0.0,
    };
    model.train_error = model.error_on(data);
    Some(model)
}

impl Regressor for LinearRegression {
    fn fit(&self, data: &Dataset) -> Option<BaselineModel> {
        fit_basis(Basis::Linear, self.name(), data)
    }

    fn name(&self) -> &'static str {
        "linear regression"
    }
}

impl Regressor for PolynomialFit {
    fn fit(&self, data: &Dataset) -> Option<BaselineModel> {
        fit_basis(Basis::Quadratic, self.name(), data)
    }

    fn name(&self) -> &'static str {
        "polynomial curve fitting"
    }
}

/// Least squares via normal equations with partial-pivot Gaussian
/// elimination and a tiny ridge term for stability.
#[allow(clippy::needless_range_loop)] // index arithmetic on two arrays at once
fn ols(features: &[Vec<f64>], targets: &[f64]) -> Option<Vec<f64>> {
    let n = features.len();
    if n == 0 || targets.len() != n {
        return None;
    }
    let k = features[0].len();
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (row, &t) in features.iter().zip(targets) {
        for i in 0..k {
            b[i] += row[i] * t;
            for j in 0..k {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..k {
        a[i][i] += 1e-9;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..k {
        let pivot = (col..k).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        for row in 0..k {
            if row == col {
                continue;
            }
            let factor = a[row][col] / diag;
            for j in col..k {
                let v = a[col][j];
                a[row][j] -= factor * v;
            }
            b[row] -= factor * b[col];
        }
    }
    Some((0..k).map(|i| b[i] / a[i][i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_2var_data() -> Dataset {
        Dataset::from_triples((0..40).map(|i| {
            let x0 = f64::from((i * 7) % 50);
            let x1 = f64::from((i * 13) % 30);
            ((x0, x1), 3.0 * x0 - 2.0 * x1 + 5.0)
        }))
        .unwrap()
    }

    #[test]
    fn linear_regression_recovers_affine_exactly() {
        let model = LinearRegression.fit(&linear_2var_data()).unwrap();
        assert!(model.train_error < 1e-6);
        assert!((model.coefficients()[0] - 5.0).abs() < 1e-6);
        assert!((model.coefficients()[1] - 3.0).abs() < 1e-6);
        assert!((model.coefficients()[2] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn linear_regression_fails_on_product_formula() {
        // The paper's engine-speed example: Y = X0·X1/5 cannot be expressed
        // linearly; the residual must stay large.
        let data = Dataset::from_triples((0..60).map(|i| {
            let x0 = f64::from(150 + (i * 7) % 100);
            let x1 = f64::from(10 + (i * 3) % 20);
            ((x0, x1), x0 * x1 / 5.0)
        }))
        .unwrap();
        let model = LinearRegression.fit(&data).unwrap();
        assert!(
            !model.agrees_with(|x| x[0] * x[1] / 5.0, &[(150.0, 249.0), (10.0, 29.0)], 0.03),
            "linear regression must not express a product formula"
        );
    }

    #[test]
    fn polynomial_fit_handles_product_formula() {
        let data = Dataset::from_triples((0..60).map(|i| {
            let x0 = f64::from(150 + (i * 7) % 100);
            let x1 = f64::from(10 + (i * 3) % 20);
            ((x0, x1), x0 * x1 / 5.0)
        }))
        .unwrap();
        let model = PolynomialFit.fit(&data).unwrap();
        assert!(model.train_error < 1e-6, "error {}", model.train_error);
    }

    #[test]
    fn polynomial_fit_handles_single_variable_square() {
        let data = Dataset::from_pairs((1..40).map(|i| {
            let x = f64::from(i * 5);
            (x, 0.01 * x * x - 3.0)
        }))
        .unwrap();
        let model = PolynomialFit.fit(&data).unwrap();
        assert!(model.train_error < 1e-6);
    }

    #[test]
    fn outliers_skew_both_baselines() {
        // A clean linear relation with one wild OCR-style outlier ("25.00"
        // read as "2500"). The fitted slope must move noticeably — this is
        // the fragility Tab. 10 attributes the baselines' low precision to.
        let mut pairs: Vec<(f64, f64)> = (0..30).map(|i| {
            let x = f64::from(i + 10);
            (x, 2.0 * x)
        }).collect();
        pairs.push((40.0, 8000.0));
        let data = Dataset::from_pairs(pairs).unwrap();
        let model = LinearRegression.fit(&data).unwrap();
        assert!(
            !model.agrees_with(|x| 2.0 * x[0], &[(10.0, 40.0)], 0.05),
            "one outlier should break the unprotected baseline"
        );
    }

    #[test]
    fn name_and_trait_objects() {
        let algorithms: Vec<Box<dyn Regressor>> =
            vec![Box::new(LinearRegression), Box::new(PolynomialFit)];
        let names: Vec<_> = algorithms.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["linear regression", "polynomial curve fitting"]);
        for a in &algorithms {
            assert!(a.fit(&linear_2var_data()).is_some());
        }
    }

    #[test]
    fn predict_matches_manual_evaluation() {
        let model = LinearRegression.fit(&linear_2var_data()).unwrap();
        let x = [7.0, 3.0];
        let c = model.coefficients();
        let manual = c[0] + c[1] * x[0] + c[2] * x[1];
        assert!((model.predict(&x) - manual).abs() < 1e-12);
    }
}
