//! The synthetic 160-app corpus reproducing the population of Tab. 12.
//!
//! The paper analyzes 38 Google-Play apps plus the 122 apps of the
//! CANHunter data set. The corpus generator builds one synthetic program
//! per app with exactly the per-app formula counts the paper reports:
//! three apps carrying UDS/KWP 2000 formulas (the Carly family), the
//! OBD-II-formula apps of the table, thirteen apps whose formulas resist
//! extraction (taint-opaque helper calls — the paper's "request message
//! is sent by subclass and the response message is parsed by the parent
//! class" case), and the remainder reading only DTCs.

use serde::{Deserialize, Serialize};

use crate::ir::{ArithOp, Operand, Program, ProgramBuilder};

/// What a synthetic app contains (the generation ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppKind {
    /// Professional-grade app with proprietary UDS and KWP formulas.
    UdsKwp {
        /// Number of UDS formulas.
        uds: usize,
        /// Number of KWP 2000 formulas.
        kwp: usize,
    },
    /// Ordinary OBD-II telematics app.
    Obd {
        /// Number of OBD-II formulas.
        count: usize,
    },
    /// Contains formulas, but behind taint-opaque indirection.
    ExtractionResistant,
    /// Only reads/clears trouble codes — no decode formulas at all.
    DtcOnly,
}

/// One synthetic app.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticApp {
    /// Display name (Tab. 12 names where applicable).
    pub name: String,
    /// Generation ground truth.
    pub kind: AppKind,
    /// The app's IR.
    pub program: Program,
}

/// Total apps in the corpus (38 Google Play + 122 CANHunter).
pub const CORPUS_SIZE: usize = 160;

/// The OBD-II rows of Tab. 12: `(app name, #formulas)`.
pub const OBD_APPS: [(&str, usize); 25] = [
    ("inCarDoc", 82),
    ("Car Computer - Olivia Drive", 74),
    ("CarSys Scan", 64),
    ("Easy OBD", 55),
    ("inCarDoc Pro", 49),
    ("OBD Boy(OBD2-ELM327)", 45),
    ("FordSys Scan Free", 42),
    ("ChevroSys Scan Free", 40),
    ("ToyoSys Scan Free", 40),
    ("Obd Mary", 34),
    ("OBD2 Boost", 34),
    ("Obd Harry Scan", 28),
    ("Obd Arny", 27),
    ("MOSX", 24),
    ("Dr Prius Dr Hybrid", 22),
    ("Dacar Pro OBD2", 21),
    ("OBD2 Scanner Fault Codes Desc", 16),
    ("Dacar Pro OBD2 II", 14),
    ("Engie Easy Car Repair", 8),
    ("PHEV Watchdog", 8),
    ("Torque Lite(OBD2&Car)", 5),
    ("Kiwi OBD", 3),
    ("OBDclick", 2),
    ("Dr Prius Dr Hybrid II", 1),
    ("Fuel Economy for Torque Pro", 1),
];

/// The UDS/KWP rows of Tab. 12: `(app name, #UDS, #KWP)`.
pub const UDS_KWP_APPS: [(&str, usize, usize); 3] = [
    ("Carly for VAG", 90, 137),
    ("Carly for Mercedes", 1624, 468),
    ("Carly for Toyota", 0, 7),
];

/// Number of apps whose formulas resist extraction (paper: "the formulas
/// in 13 apps cannot be extracted").
pub const RESISTANT_APPS: usize = 13;

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Emits one guarded decode-formula block.
fn formula_block(b: &mut ProgramBuilder, response_var: &str, prefix: &str, idx: usize, seed: u64) {
    let h = mix(seed, 7, idx as u64);
    let a = 0.1 + (h % 100) as f64 / 25.0;
    let c = ((h >> 8) % 80) as f64 - 40.0;
    let two_vars = h.is_multiple_of(3);
    b.if_starts_with(response_var, prefix, |b| {
        let v0 = format!("s{idx}_0");
        let p0 = format!("p{idx}_0");
        b.str_op(&v0, "split:0", response_var);
        b.parse_int(&p0, &v0);
        let y = format!("y{idx}");
        if two_vars {
            let v1 = format!("s{idx}_1");
            let p1 = format!("p{idx}_1");
            b.str_op(&v1, "split:1", response_var);
            b.parse_int(&p1, &v1);
            let t0 = format!("t{idx}_0");
            let t1 = format!("t{idx}_1");
            b.arith(&t0, ArithOp::Mul, Operand::Const(a), Operand::var(&p0));
            b.arith(&t1, ArithOp::Mul, Operand::Const(0.25), Operand::var(&p1));
            b.arith(&y, ArithOp::Add, Operand::var(&t0), Operand::var(&t1));
        } else {
            let t0 = format!("t{idx}_0");
            b.arith(&t0, ArithOp::Mul, Operand::Const(a), Operand::var(&p0));
            b.arith(&y, ArithOp::Add, Operand::var(&t0), Operand::Const(c));
        }
        b.display(&y);
    });
}

fn obd_prefix(idx: usize) -> String {
    format!("41 {:02X}", (idx * 7 + 4) % 0x60)
}

fn uds_prefix(idx: usize) -> String {
    format!("62 {:02X} {:02X}", 0xF4 - (idx % 16) as u8, idx % 256)
}

fn kwp_prefix(idx: usize) -> String {
    format!("61 {:02X}", (idx * 3 + 1) % 0xF0)
}

/// Builds one app program of the given kind.
pub fn build_app(kind: AppKind, seed: u64) -> Program {
    let mut b = ProgramBuilder::new();
    b.api_call("resp", "InputStream.read");
    match kind {
        AppKind::Obd { count } => {
            for i in 0..count {
                formula_block(&mut b, "resp", &obd_prefix(i), i, seed);
            }
        }
        AppKind::UdsKwp { uds, kwp } => {
            for i in 0..uds {
                formula_block(&mut b, "resp", &uds_prefix(i), i, seed);
            }
            for i in 0..kwp {
                formula_block(&mut b, "resp", &kwp_prefix(i), uds + i, seed);
            }
        }
        AppKind::ExtractionResistant => {
            // The response crosses an opaque helper before parsing, so the
            // taint chain breaks (subclass/parent split, partial-byte
            // checks — the paper's failure modes).
            b.opaque("helper", "resp");
            b.parse_int("v", "helper");
            b.arith("y", ArithOp::Mul, Operand::var("v"), Operand::Const(0.25));
            b.display("y");
        }
        AppKind::DtcOnly => {
            // Reads and string-matches trouble codes; no arithmetic at all.
            b.str_op("code", "trim", "resp");
            b.if_starts_with("code", "43", |b| {
                b.str_op("dtc", "substring", "code");
                b.display("dtc");
            });
        }
    }
    b.build()
}

/// Generates the full 160-app corpus with Tab. 12's population.
pub fn table12_corpus(seed: u64) -> Vec<SyntheticApp> {
    let mut apps = Vec::with_capacity(CORPUS_SIZE);
    for (i, (name, uds, kwp)) in UDS_KWP_APPS.iter().enumerate() {
        let kind = AppKind::UdsKwp {
            uds: *uds,
            kwp: *kwp,
        };
        apps.push(SyntheticApp {
            name: (*name).to_string(),
            kind,
            program: build_app(kind, mix(seed, 1, i as u64)),
        });
    }
    for (i, (name, count)) in OBD_APPS.iter().enumerate() {
        let kind = AppKind::Obd { count: *count };
        apps.push(SyntheticApp {
            name: (*name).to_string(),
            kind,
            program: build_app(kind, mix(seed, 2, i as u64)),
        });
    }
    for i in 0..RESISTANT_APPS {
        apps.push(SyntheticApp {
            name: format!("Hardened Scanner {}", i + 1),
            kind: AppKind::ExtractionResistant,
            program: build_app(AppKind::ExtractionResistant, mix(seed, 3, i as u64)),
        });
    }
    let remaining = CORPUS_SIZE - apps.len();
    for i in 0..remaining {
        apps.push(SyntheticApp {
            name: format!("DTC Reader {}", i + 1),
            kind: AppKind::DtcOnly,
            program: build_app(AppKind::DtcOnly, mix(seed, 4, i as u64)),
        });
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_formulas, ProtocolClass, DEFAULT_SOURCE_APIS};

    #[test]
    fn corpus_has_exactly_160_apps() {
        let corpus = table12_corpus(5);
        assert_eq!(corpus.len(), CORPUS_SIZE);
        let uds_kwp = corpus
            .iter()
            .filter(|a| matches!(a.kind, AppKind::UdsKwp { .. }))
            .count();
        assert_eq!(uds_kwp, 3);
        let obd = corpus
            .iter()
            .filter(|a| matches!(a.kind, AppKind::Obd { .. }))
            .count();
        assert_eq!(obd, OBD_APPS.len());
    }

    #[test]
    fn carly_vag_extraction_matches_tab12() {
        let program = build_app(AppKind::UdsKwp { uds: 90, kwp: 137 }, 3);
        let formulas = extract_formulas(&program, &DEFAULT_SOURCE_APIS);
        let uds = formulas
            .iter()
            .filter(|f| f.protocol == ProtocolClass::Uds)
            .count();
        let kwp = formulas
            .iter()
            .filter(|f| f.protocol == ProtocolClass::Kwp2000)
            .count();
        assert_eq!(uds, 90);
        assert_eq!(kwp, 137);
    }

    #[test]
    fn obd_app_extraction_counts() {
        let program = build_app(AppKind::Obd { count: 40 }, 9);
        let formulas = extract_formulas(&program, &DEFAULT_SOURCE_APIS);
        assert_eq!(formulas.len(), 40);
        assert!(formulas
            .iter()
            .all(|f| f.protocol == ProtocolClass::ObdII));
    }

    #[test]
    fn resistant_and_dtc_apps_yield_nothing() {
        for kind in [AppKind::ExtractionResistant, AppKind::DtcOnly] {
            let program = build_app(kind, 1);
            assert!(
                extract_formulas(&program, &DEFAULT_SOURCE_APIS).is_empty(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = table12_corpus(42);
        let b = table12_corpus(42);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_formulas_evaluate_sanely() {
        let program = build_app(AppKind::Obd { count: 5 }, 77);
        let formulas = extract_formulas(&program, &DEFAULT_SOURCE_APIS);
        for f in &formulas {
            let y = f.formula.eval(&[100.0, 50.0]);
            assert!(y.is_finite());
            assert!(f.formula.leaf_count() >= 1);
        }
    }
}
