//! Telematics-app formula extraction — the paper's Alg. 1 and §9.2.
//!
//! The paper analyzes 160 Android OBD apps: it taints the buffer returned
//! by response-reading framework APIs (`InputStream.read(byte[])` …),
//! forward-propagates the taint, finds the tainted statements containing
//! mathematical operators, reconstructs each formula from its
//! data-dependency chain, and recovers the *condition* under which the
//! formula applies from the control-dependency chain (e.g. "the response
//! starts with `41 0C`", Fig. 9).
//!
//! Android bytecode is not available here, so the analysis runs over a
//! miniature structured three-address IR ([`ir`]) whose shape mirrors the
//! Jimple listing of the paper's Fig. 9 — string preprocessing
//! (`startsWith` / `replace` / `trim` / `split`), `parseInt` extraction,
//! arithmetic, and display sinks. [`extract_formulas`] implements Alg. 1
//! over it, and [`corpus`] generates a synthetic 160-app population with
//! the exact per-app formula counts of Tab. 12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod ir;

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use ir::{ArithOp, Cond, Operand, Program, Stmt};

/// The response-reading framework APIs Alg. 1 treats as taint sources.
pub const DEFAULT_SOURCE_APIS: [&str; 4] = [
    "InputStream.read",
    "BluetoothSocket.read",
    "Socket.getInputStream",
    "BufferedReader.readLine",
];

/// An extracted formula's expression tree. Leaves are the integers parsed
/// out of the response buffer, numbered in order of first use (`v1`, `v2`
/// … in the paper's notation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FormulaExpr {
    /// A numeric constant.
    Const(f64),
    /// The `n`-th value parsed from the response (1-based).
    Leaf(usize),
    /// An arithmetic combination.
    Bin(ArithOp, Box<FormulaExpr>, Box<FormulaExpr>),
}

impl FormulaExpr {
    /// Evaluates the formula given leaf values (`leaves[0]` is `v1`).
    pub fn eval(&self, leaves: &[f64]) -> f64 {
        match self {
            FormulaExpr::Const(c) => *c,
            FormulaExpr::Leaf(n) => leaves.get(n - 1).copied().unwrap_or(0.0),
            FormulaExpr::Bin(op, a, b) => op.apply(a.eval(leaves), b.eval(leaves)),
        }
    }

    /// Number of distinct leaves used.
    pub fn leaf_count(&self) -> usize {
        fn collect(e: &FormulaExpr, out: &mut BTreeSet<usize>) {
            match e {
                FormulaExpr::Const(_) => {}
                FormulaExpr::Leaf(n) => {
                    out.insert(*n);
                }
                FormulaExpr::Bin(_, a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
            }
        }
        let mut set = BTreeSet::new();
        collect(self, &mut set);
        set.len()
    }
}

impl std::fmt::Display for FormulaExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormulaExpr::Const(c) => write!(f, "{c}"),
            FormulaExpr::Leaf(n) => write!(f, "v{n}"),
            FormulaExpr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

/// Which diagnostic protocol a formula's guarding condition indicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolClass {
    /// Guard matches an OBD-II mode-01 positive response (`41 …`).
    ObdII,
    /// Guard matches a UDS read-data positive response (`62 …`).
    Uds,
    /// Guard matches a KWP 2000 positive response (`61 …`).
    Kwp2000,
    /// No recognizable guard.
    Unknown,
}

/// Classifies a guard prefix string (hex bytes, e.g. `"41 0C"`).
pub fn classify_condition(prefix: &str) -> ProtocolClass {
    let first = prefix.split_whitespace().next().unwrap_or("");
    match u8::from_str_radix(first, 16) {
        Ok(0x41) => ProtocolClass::ObdII,
        Ok(0x62) => ProtocolClass::Uds,
        Ok(0x61) => ProtocolClass::Kwp2000,
        _ => ProtocolClass::Unknown,
    }
}

/// One formula recovered from an app by Alg. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedFormula {
    /// The formula over the parsed response values.
    pub formula: FormulaExpr,
    /// The guarding conditions (innermost last) — the paper's
    /// "condition of using the formula".
    pub conditions: Vec<String>,
    /// Protocol classification of the outermost recognizable guard.
    pub protocol: ProtocolClass,
}

/// How a variable was defined (for the backward data-dependency walk).
#[derive(Debug, Clone, PartialEq)]
enum Def {
    /// Read from a source API (tainted root).
    Api,
    /// A string transformation of another variable.
    Str(String),
    /// An integer parsed from a (string) variable — a formula leaf.
    Parse(String),
    /// Arithmetic over operands.
    Arith(ArithOp, Operand, Operand),
    /// Copy of another variable.
    Copy(String),
    /// A constant.
    Const(f64),
}

struct Walker<'a> {
    apis: &'a [&'a str],
    tainted: BTreeSet<String>,
    defs: BTreeMap<String, Def>,
    /// Variables consumed by later arithmetic (to find chain heads).
    used_in_arith: BTreeSet<String>,
    displayed: BTreeSet<String>,
    /// (dest var, conditions in scope) of every tainted arithmetic stmt.
    arith_sites: Vec<(String, Vec<String>)>,
}

impl Walker<'_> {
    fn operand_tainted(&self, op: &Operand) -> bool {
        match op {
            Operand::Var(v) => self.tainted.contains(v),
            Operand::Const(_) => false,
        }
    }

    fn walk(&mut self, stmts: &[Stmt], conds: &mut Vec<String>) {
        for stmt in stmts {
            match stmt {
                Stmt::ApiCall { dest, api } => {
                    self.defs.insert(dest.clone(), Def::Api);
                    if self.apis.iter().any(|a| api.starts_with(a)) {
                        self.tainted.insert(dest.clone());
                    }
                }
                Stmt::StrOp { dest, src, .. } => {
                    self.defs.insert(dest.clone(), Def::Str(src.clone()));
                    if self.tainted.contains(src) {
                        self.tainted.insert(dest.clone());
                    }
                }
                Stmt::ParseInt { dest, src } => {
                    self.defs.insert(dest.clone(), Def::Parse(src.clone()));
                    if self.tainted.contains(src) {
                        self.tainted.insert(dest.clone());
                    }
                }
                Stmt::Assign { dest, src } => {
                    match src {
                        Operand::Var(v) => {
                            self.defs.insert(dest.clone(), Def::Copy(v.clone()));
                            if self.tainted.contains(v) {
                                self.tainted.insert(dest.clone());
                            }
                        }
                        Operand::Const(c) => {
                            self.defs.insert(dest.clone(), Def::Const(*c));
                        }
                    }
                }
                Stmt::Arith { dest, op, lhs, rhs } => {
                    self.defs
                        .insert(dest.clone(), Def::Arith(*op, lhs.clone(), rhs.clone()));
                    if let Operand::Var(v) = lhs {
                        self.used_in_arith.insert(v.clone());
                    }
                    if let Operand::Var(v) = rhs {
                        self.used_in_arith.insert(v.clone());
                    }
                    if self.operand_tainted(lhs) || self.operand_tainted(rhs) {
                        self.tainted.insert(dest.clone());
                        self.arith_sites.push((dest.clone(), conds.clone()));
                    }
                }
                Stmt::If { cond, then } => {
                    let label = match cond {
                        Cond::StartsWith { var, prefix } => {
                            if self.tainted.contains(var) {
                                prefix.clone()
                            } else {
                                String::new()
                            }
                        }
                    };
                    if label.is_empty() {
                        self.walk(then, conds);
                    } else {
                        conds.push(label);
                        self.walk(then, conds);
                        conds.pop();
                    }
                }
                Stmt::Display { src } => {
                    self.displayed.insert(src.clone());
                }
                Stmt::Opaque { dest, src } => {
                    // Models calls the taint analysis cannot see through
                    // (the paper's "complex apps" failure mode): the
                    // result is NOT tainted even if the input was.
                    self.defs.insert(dest.clone(), Def::Str(src.clone()));
                }
            }
        }
    }

    /// Reconstructs the expression rooted at `var`, assigning leaf numbers
    /// to parse sites in first-use order.
    fn build_expr(
        &self,
        var: &str,
        leaves: &mut BTreeMap<String, usize>,
        depth: usize,
    ) -> FormulaExpr {
        if depth > 64 {
            return FormulaExpr::Const(0.0);
        }
        match self.defs.get(var) {
            Some(Def::Arith(op, lhs, rhs)) => FormulaExpr::Bin(
                *op,
                Box::new(self.build_operand(lhs, leaves, depth + 1)),
                Box::new(self.build_operand(rhs, leaves, depth + 1)),
            ),
            Some(Def::Parse(_)) => {
                let next = leaves.len() + 1;
                let n = *leaves.entry(var.to_string()).or_insert(next);
                FormulaExpr::Leaf(n)
            }
            Some(Def::Copy(v)) => self.build_expr(v, leaves, depth + 1),
            Some(Def::Const(c)) => FormulaExpr::Const(*c),
            // The chain stops at string/API defs (paper: "the data
            // dependency relation analysis stops at lines 7 and 9").
            _ => FormulaExpr::Const(0.0),
        }
    }

    fn build_operand(
        &self,
        op: &Operand,
        leaves: &mut BTreeMap<String, usize>,
        depth: usize,
    ) -> FormulaExpr {
        match op {
            Operand::Const(c) => FormulaExpr::Const(*c),
            Operand::Var(v) => self.build_expr(v, leaves, depth),
        }
    }
}

/// Runs Alg. 1 over a program: returns the formulas used to process
/// response messages, with their guarding conditions.
pub fn extract_formulas(program: &Program, apis: &[&str]) -> Vec<ExtractedFormula> {
    let mut walker = Walker {
        apis,
        tainted: BTreeSet::new(),
        defs: BTreeMap::new(),
        used_in_arith: BTreeSet::new(),
        displayed: BTreeSet::new(),
        arith_sites: Vec::new(),
    };
    let mut conds = Vec::new();
    walker.walk(program.stmts(), &mut conds);

    // Chain heads: tainted arithmetic whose destination is displayed or
    // never consumed by further arithmetic (the paper focuses on the last
    // statement of the dependency chain, Fig. 9 line 14).
    let mut out = Vec::new();
    for (dest, conditions) in &walker.arith_sites {
        let is_head =
            walker.displayed.contains(dest) || !walker.used_in_arith.contains(dest);
        if !is_head {
            continue;
        }
        let mut leaves = BTreeMap::new();
        let formula = walker.build_expr(dest, &mut leaves, 0);
        if leaves.is_empty() {
            continue; // no response bytes involved: not a decode formula
        }
        let protocol = conditions
            .iter()
            .map(|c| classify_condition(c))
            .find(|p| *p != ProtocolClass::Unknown)
            .unwrap_or(ProtocolClass::Unknown);
        out.push(ExtractedFormula {
            formula,
            conditions: conditions.clone(),
            protocol,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::ProgramBuilder;

    /// The exact program of the paper's Fig. 9: the `41 0C` engine-speed
    /// formula `v1 * 0.25 + 64 * v2` (with v1/v2 as parsed there).
    fn fig9_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.api_call("r7", "InputStream.read");
        b.if_starts_with("r7", "41 0C", |b| {
            b.str_op("r7a", "replace", "r7");
            b.str_op("r7b", "trim", "r7a");
            b.str_op("r9_0", "split:0", "r7b");
            b.str_op("r9_1", "split:1", "r7b");
            b.parse_int("i2", "r9_0");
            b.parse_int("i7", "r9_1");
            b.arith("d0", ArithOp::Mul, Operand::Const(64.0), Operand::var("i2"));
            b.arith("d1", ArithOp::Mul, Operand::var("i7"), Operand::Const(0.25));
            b.arith("d2", ArithOp::Add, Operand::var("d1"), Operand::var("d0"));
            b.display("d2");
        });
        b.build()
    }

    #[test]
    fn fig9_formula_extracted_with_condition() {
        let formulas = extract_formulas(&fig9_program(), &DEFAULT_SOURCE_APIS);
        assert_eq!(formulas.len(), 1);
        let f = &formulas[0];
        assert_eq!(f.conditions, vec!["41 0C".to_string()]);
        assert_eq!(f.protocol, ProtocolClass::ObdII);
        // v1 = i2 (first leaf reached in backtrace), v2 = i7.
        // Check semantics rather than the print: 64*a + 0.25*b.
        for (a, b) in [(26.0, 240.0), (10.0, 3.0)] {
            // The leaf order depends on the backtrace; test both slots.
            let got = f.formula.eval(&[a, b]);
            let want1 = 64.0 * b + 0.25 * a;
            let want2 = 64.0 * a + 0.25 * b;
            assert!(
                (got - want1).abs() < 1e-9 || (got - want2).abs() < 1e-9,
                "{} evaluated to {got}",
                f.formula
            );
        }
        assert_eq!(f.formula.leaf_count(), 2);
    }

    #[test]
    fn untainted_arithmetic_ignored() {
        let mut b = ProgramBuilder::new();
        b.assign("x", Operand::Const(3.0));
        b.arith("y", ArithOp::Mul, Operand::var("x"), Operand::Const(2.0));
        b.display("y");
        let formulas = extract_formulas(&b.build(), &DEFAULT_SOURCE_APIS);
        assert!(formulas.is_empty());
    }

    #[test]
    fn opaque_call_breaks_taint() {
        // The paper's uncooperative apps: response flows through a helper
        // the analysis cannot see through.
        let mut b = ProgramBuilder::new();
        b.api_call("r", "InputStream.read");
        b.opaque("h", "r");
        b.parse_int("v", "h");
        b.arith("y", ArithOp::Mul, Operand::var("v"), Operand::Const(0.5));
        b.display("y");
        let formulas = extract_formulas(&b.build(), &DEFAULT_SOURCE_APIS);
        assert!(formulas.is_empty(), "taint must not cross opaque calls");
    }

    #[test]
    fn dtc_only_app_yields_no_formulas() {
        // Reads the response but only string-compares it (read/clear DTC).
        let mut b = ProgramBuilder::new();
        b.api_call("r", "InputStream.read");
        b.str_op("code", "trim", "r");
        b.display("code");
        let formulas = extract_formulas(&b.build(), &DEFAULT_SOURCE_APIS);
        assert!(formulas.is_empty());
    }

    #[test]
    fn nested_conditions_accumulate() {
        let mut b = ProgramBuilder::new();
        b.api_call("r", "InputStream.read");
        b.if_starts_with("r", "62 F4", |b| {
            b.if_starts_with("r", "62 F4 0D", |b| {
                b.parse_int("v", "r");
                b.arith("y", ArithOp::Mul, Operand::var("v"), Operand::Const(1.0));
                b.display("y");
            });
        });
        let formulas = extract_formulas(&b.build(), &DEFAULT_SOURCE_APIS);
        assert_eq!(formulas.len(), 1);
        assert_eq!(formulas[0].conditions.len(), 2);
        assert_eq!(formulas[0].protocol, ProtocolClass::Uds);
    }

    #[test]
    fn condition_classification() {
        assert_eq!(classify_condition("41 0C"), ProtocolClass::ObdII);
        assert_eq!(classify_condition("62 F4 0D"), ProtocolClass::Uds);
        assert_eq!(classify_condition("61 07"), ProtocolClass::Kwp2000);
        assert_eq!(classify_condition("7F 22"), ProtocolClass::Unknown);
        assert_eq!(classify_condition(""), ProtocolClass::Unknown);
    }

    #[test]
    fn intermediate_arithmetic_not_reported_separately() {
        // Only the chain head (d2) counts, not d0/d1.
        let formulas = extract_formulas(&fig9_program(), &DEFAULT_SOURCE_APIS);
        assert_eq!(formulas.len(), 1);
    }

    #[test]
    fn formula_display_is_readable() {
        let f = FormulaExpr::Bin(
            ArithOp::Add,
            Box::new(FormulaExpr::Bin(
                ArithOp::Mul,
                Box::new(FormulaExpr::Leaf(1)),
                Box::new(FormulaExpr::Const(0.25)),
            )),
            Box::new(FormulaExpr::Const(64.0)),
        );
        assert_eq!(f.to_string(), "((v1 * 0.25) + 64)");
    }
}
