//! The miniature structured three-address IR the analysis runs over.
//!
//! The shape deliberately mirrors the Jimple listing of the paper's
//! Fig. 9: framework-API calls produce buffers, string operations
//! preprocess them, `parseInt` extracts integers, arithmetic combines
//! them, branches guard on response prefixes, and display sinks show the
//! result.

use serde::{Deserialize, Serialize};

/// Arithmetic operators appearing in decode formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (total: divide-by-zero yields 0, as Java doubles would
    /// yield infinity that the apps clamp anyway).
    Div,
}

impl ArithOp {
    /// Applies the operator.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
        }
    }

    /// The operator's symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A right-hand-side operand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A variable reference.
    Var(String),
    /// A numeric constant.
    Const(f64),
}

impl Operand {
    /// Shorthand for a variable operand.
    pub fn var(name: impl Into<String>) -> Self {
        Operand::Var(name.into())
    }
}

/// Branch conditions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// `var.startsWith(prefix)` — the guard shape of Fig. 9.
    StartsWith {
        /// The tested variable.
        var: String,
        /// The hex prefix, e.g. `"41 0C"`.
        prefix: String,
    },
}

/// One IR statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `dest = api(...)` — possibly a taint source.
    ApiCall {
        /// Destination variable.
        dest: String,
        /// Fully qualified API name.
        api: String,
    },
    /// `dest = <strop>(src)` — replace/trim/split/substring.
    StrOp {
        /// Destination variable.
        dest: String,
        /// The operation name (informational).
        op: String,
        /// Source variable.
        src: String,
    },
    /// `dest = Integer.parseInt(src, 16)` — a formula leaf.
    ParseInt {
        /// Destination variable.
        dest: String,
        /// Source (string) variable.
        src: String,
    },
    /// `dest = src`.
    Assign {
        /// Destination variable.
        dest: String,
        /// Source operand.
        src: Operand,
    },
    /// `dest = lhs op rhs`.
    Arith {
        /// Destination variable.
        dest: String,
        /// The operator.
        op: ArithOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `if cond { then }` — structured control flow.
    If {
        /// The guard.
        cond: Cond,
        /// The guarded block.
        then: Vec<Stmt>,
    },
    /// The value reaches the UI.
    Display {
        /// The displayed variable.
        src: String,
    },
    /// A call the analysis cannot see through (kills taint).
    Opaque {
        /// Destination variable.
        dest: String,
        /// Input variable (taint does not propagate).
        src: String,
    },
}

/// A program: a statement list.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    stmts: Vec<Stmt>,
}

impl Program {
    /// The statements.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Total statement count, including nested blocks.
    pub fn len(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then, .. } => 1 + count(then),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

/// A convenient builder for programs (and nested blocks).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    stmts: Vec<Stmt>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an API call.
    pub fn api_call(&mut self, dest: &str, api: &str) -> &mut Self {
        self.stmts.push(Stmt::ApiCall {
            dest: dest.into(),
            api: api.into(),
        });
        self
    }

    /// Appends a string operation.
    pub fn str_op(&mut self, dest: &str, op: &str, src: &str) -> &mut Self {
        self.stmts.push(Stmt::StrOp {
            dest: dest.into(),
            op: op.into(),
            src: src.into(),
        });
        self
    }

    /// Appends a parse-int.
    pub fn parse_int(&mut self, dest: &str, src: &str) -> &mut Self {
        self.stmts.push(Stmt::ParseInt {
            dest: dest.into(),
            src: src.into(),
        });
        self
    }

    /// Appends an assignment.
    pub fn assign(&mut self, dest: &str, src: Operand) -> &mut Self {
        self.stmts.push(Stmt::Assign {
            dest: dest.into(),
            src,
        });
        self
    }

    /// Appends an arithmetic statement.
    pub fn arith(&mut self, dest: &str, op: ArithOp, lhs: Operand, rhs: Operand) -> &mut Self {
        self.stmts.push(Stmt::Arith {
            dest: dest.into(),
            op,
            lhs,
            rhs,
        });
        self
    }

    /// Appends a guarded block built by the closure.
    pub fn if_starts_with(
        &mut self,
        var: &str,
        prefix: &str,
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> &mut Self {
        let mut inner = ProgramBuilder::new();
        build(&mut inner);
        self.stmts.push(Stmt::If {
            cond: Cond::StartsWith {
                var: var.into(),
                prefix: prefix.into(),
            },
            then: inner.stmts,
        });
        self
    }

    /// Appends a display sink.
    pub fn display(&mut self, src: &str) -> &mut Self {
        self.stmts.push(Stmt::Display { src: src.into() });
        self
    }

    /// Appends an opaque (taint-killing) call.
    pub fn opaque(&mut self, dest: &str, src: &str) -> &mut Self {
        self.stmts.push(Stmt::Opaque {
            dest: dest.into(),
            src: src.into(),
        });
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program { stmts: self.stmts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_op_semantics() {
        assert_eq!(ArithOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(ArithOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(ArithOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(ArithOp::Div.apply(6.0, 3.0), 2.0);
        assert_eq!(ArithOp::Div.apply(6.0, 0.0), 0.0);
    }

    #[test]
    fn builder_produces_nested_structure() {
        let mut b = ProgramBuilder::new();
        b.api_call("r", "InputStream.read");
        b.if_starts_with("r", "41 05", |b| {
            b.parse_int("v", "r");
            b.display("v");
        });
        let p = b.build();
        assert_eq!(p.stmts().len(), 2);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        match &p.stmts()[1] {
            Stmt::If { cond, then } => {
                assert_eq!(
                    cond,
                    &Cond::StartsWith {
                        var: "r".into(),
                        prefix: "41 05".into()
                    }
                );
                assert_eq!(then.len(), 2);
            }
            other => panic!("expected If, got {other:?}"),
        }
    }
}
