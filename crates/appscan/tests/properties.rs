//! Property-based tests for the app-analysis taint engine.

use dpr_appscan::corpus::{build_app, AppKind};
use dpr_appscan::ir::{ArithOp, Operand, ProgramBuilder};
use dpr_appscan::{extract_formulas, FormulaExpr, ProtocolClass, DEFAULT_SOURCE_APIS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A generated app of any size yields exactly its ground-truth number
    /// of formulas, with the right protocol classes.
    #[test]
    fn obd_app_counts_exact(count in 0usize..40, seed in any::<u64>()) {
        let program = build_app(AppKind::Obd { count }, seed);
        let formulas = extract_formulas(&program, &DEFAULT_SOURCE_APIS);
        prop_assert_eq!(formulas.len(), count);
        prop_assert!(formulas.iter().all(|f| f.protocol == ProtocolClass::ObdII));
    }

    /// UDS/KWP apps partition their formulas exactly.
    #[test]
    fn uds_kwp_app_counts_exact(uds in 0usize..25, kwp in 0usize..25, seed in any::<u64>()) {
        let program = build_app(AppKind::UdsKwp { uds, kwp }, seed);
        let formulas = extract_formulas(&program, &DEFAULT_SOURCE_APIS);
        let got_uds = formulas.iter().filter(|f| f.protocol == ProtocolClass::Uds).count();
        let got_kwp = formulas.iter().filter(|f| f.protocol == ProtocolClass::Kwp2000).count();
        prop_assert_eq!(got_uds, uds);
        prop_assert_eq!(got_kwp, kwp);
    }

    /// A hand-built guarded affine formula is recovered with exact
    /// semantics for arbitrary coefficients.
    #[test]
    fn affine_formula_semantics_recovered(
        a in -100.0f64..100.0,
        c in -100.0f64..100.0,
        v in 0.0f64..255.0,
    ) {
        let mut b = ProgramBuilder::new();
        b.api_call("r", "InputStream.read");
        b.if_starts_with("r", "41 0D", |b| {
            b.parse_int("p", "r");
            b.arith("t", ArithOp::Mul, Operand::Const(a), Operand::var("p"));
            b.arith("y", ArithOp::Add, Operand::var("t"), Operand::Const(c));
            b.display("y");
        });
        let formulas = extract_formulas(&b.build(), &DEFAULT_SOURCE_APIS);
        prop_assert_eq!(formulas.len(), 1);
        let got = formulas[0].formula.eval(&[v]);
        let want = a * v + c;
        prop_assert!((got - want).abs() < 1e-9, "{} -> {got} vs {want}", formulas[0].formula);
    }

    /// Extraction is total over random builder programs (no panics) and
    /// every reported formula uses at least one response leaf.
    #[test]
    fn extraction_total_over_random_programs(ops in proptest::collection::vec((0u8..6, any::<u64>()), 0..40)) {
        let mut b = ProgramBuilder::new();
        b.api_call("r", "InputStream.read");
        b.parse_int("p0", "r");
        for (ctr, (op, h)) in ops.into_iter().enumerate() {
            let dest = format!("v{ctr}");
            match op {
                0 => { b.str_op(&dest, "trim", "r"); }
                1 => { b.parse_int(&dest, "r"); }
                2 => {
                    b.arith(
                        &dest,
                        ArithOp::Mul,
                        Operand::var("p0"),
                        Operand::Const((h % 100) as f64 / 10.0),
                    );
                }
                3 => { b.assign(&dest, Operand::Const((h % 50) as f64)); }
                4 => { b.display("p0"); }
                _ => { b.opaque(&dest, "r"); }
            }
        }
        let formulas = extract_formulas(&b.build(), &DEFAULT_SOURCE_APIS);
        for f in &formulas {
            prop_assert!(f.formula.leaf_count() >= 1);
            let v = f.formula.eval(&[7.0, 3.0]);
            prop_assert!(v.is_finite());
        }
    }
}

/// The formula expression printer and evaluator agree structurally.
#[test]
fn formula_display_eval_consistency() {
    let f = FormulaExpr::Bin(
        ArithOp::Add,
        Box::new(FormulaExpr::Bin(
            ArithOp::Mul,
            Box::new(FormulaExpr::Const(64.0)),
            Box::new(FormulaExpr::Leaf(1)),
        )),
        Box::new(FormulaExpr::Bin(
            ArithOp::Div,
            Box::new(FormulaExpr::Leaf(2)),
            Box::new(FormulaExpr::Const(4.0)),
        )),
    );
    assert_eq!(f.to_string(), "((64 * v1) + (v2 / 4))");
    assert_eq!(f.eval(&[2.0, 8.0]), 130.0);
    assert_eq!(f.leaf_count(), 2);
}
