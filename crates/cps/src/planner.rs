//! Click-route planning — the travelling-salesman instance of §3.1.
//!
//! "Given a set of ESVs on UI and the distance between each pair of ESVs,
//! the planner looks for the shortest route that visits each ESV exactly
//! once and returns to the origin ESV." The paper approximates the
//! NP-hard problem with the nearest-neighbour heuristic and reports a
//! 7.3% movement-time saving over random ordering for 14 targets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Manhattan distance (the stylus moves axis-aligned).
fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Route-planning strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanStrategy {
    /// Nearest neighbour from the start point (the paper's choice).
    NearestNeighbor,
    /// Visit in the given order (a naive baseline).
    InOrder,
    /// A random permutation (the paper's comparison baseline).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Exhaustive search — optimal, but only for small target sets.
    BruteForce,
}

/// Plans a visiting order over `targets`, starting from `start`. Returns
/// target indices in visit order.
///
/// # Panics
///
/// Panics if `BruteForce` is asked to order more than 10 targets
/// (10! ≈ 3.6 M routes is the practical limit).
pub fn plan_route(start: (f64, f64), targets: &[(f64, f64)], strategy: PlanStrategy) -> Vec<usize> {
    match strategy {
        PlanStrategy::InOrder => (0..targets.len()).collect(),
        PlanStrategy::Random { seed } => {
            let mut order: Vec<usize> = (0..targets.len()).collect();
            order.shuffle(&mut StdRng::seed_from_u64(seed));
            order
        }
        PlanStrategy::NearestNeighbor => {
            let mut remaining: Vec<usize> = (0..targets.len()).collect();
            let mut order = Vec::with_capacity(targets.len());
            let mut here = start;
            while !remaining.is_empty() {
                let (pick, _) = remaining
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        dist(here, targets[a]).total_cmp(&dist(here, targets[b]))
                    })
                    .expect("remaining is non-empty");
                let idx = remaining.swap_remove(pick);
                here = targets[idx];
                order.push(idx);
            }
            order
        }
        PlanStrategy::BruteForce => {
            assert!(
                targets.len() <= 10,
                "brute force is limited to 10 targets"
            );
            let mut best: Option<(f64, Vec<usize>)> = None;
            let mut order: Vec<usize> = (0..targets.len()).collect();
            permute(&mut order, 0, &mut |candidate| {
                let len = route_length(start, targets, candidate);
                if best.as_ref().is_none_or(|(b, _)| len < *b) {
                    best = Some((len, candidate.to_vec()));
                }
            });
            best.map(|(_, o)| o).unwrap_or_default()
        }
    }
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Total Manhattan length of a route: start → each target in order →
/// back to the start (the paper's tour closes on the origin).
pub fn route_length(start: (f64, f64), targets: &[(f64, f64)], order: &[usize]) -> f64 {
    let mut here = start;
    let mut total = 0.0;
    for &i in order {
        total += dist(here, targets[i]);
        here = targets[i];
    }
    total + dist(here, start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_targets(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| (((i * 13) % 40) as f64, ((i * 29) % 16) as f64))
            .collect()
    }

    #[test]
    fn routes_visit_every_target_once() {
        let targets = grid_targets(9);
        for strategy in [
            PlanStrategy::NearestNeighbor,
            PlanStrategy::InOrder,
            PlanStrategy::Random { seed: 5 },
            PlanStrategy::BruteForce,
        ] {
            let mut order = plan_route((0.0, 0.0), &targets, strategy);
            assert_eq!(order.len(), targets.len(), "{strategy:?}");
            order.sort_unstable();
            assert_eq!(order, (0..targets.len()).collect::<Vec<_>>(), "{strategy:?}");
        }
    }

    #[test]
    fn nearest_neighbor_beats_or_ties_random_on_average() {
        let targets = grid_targets(14);
        let start = (0.0, 0.0);
        let nn = route_length(start, &targets, &plan_route(start, &targets, PlanStrategy::NearestNeighbor));
        let avg_random: f64 = (0..50)
            .map(|seed| {
                route_length(
                    start,
                    &targets,
                    &plan_route(start, &targets, PlanStrategy::Random { seed }),
                )
            })
            .sum::<f64>()
            / 50.0;
        assert!(
            nn < avg_random,
            "nearest neighbour ({nn:.1}) must beat average random ({avg_random:.1})"
        );
    }

    #[test]
    fn brute_force_is_optimal_lower_bound() {
        let targets = grid_targets(7);
        let start = (0.0, 0.0);
        let opt = route_length(start, &targets, &plan_route(start, &targets, PlanStrategy::BruteForce));
        let nn = route_length(start, &targets, &plan_route(start, &targets, PlanStrategy::NearestNeighbor));
        assert!(opt <= nn + 1e-9);
    }

    #[test]
    fn empty_and_single_target_routes() {
        assert!(plan_route((0.0, 0.0), &[], PlanStrategy::NearestNeighbor).is_empty());
        let one = [(5.0, 5.0)];
        let order = plan_route((0.0, 0.0), &one, PlanStrategy::BruteForce);
        assert_eq!(order, vec![0]);
        assert_eq!(route_length((0.0, 0.0), &one, &order), 20.0);
    }

    #[test]
    fn nearest_neighbor_picks_closest_first() {
        let targets = [(100.0, 0.0), (1.0, 0.0), (50.0, 0.0)];
        let order = plan_route((0.0, 0.0), &targets, PlanStrategy::NearestNeighbor);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "brute force is limited")]
    fn brute_force_guard() {
        let targets = grid_targets(11);
        let _ = plan_route((0.0, 0.0), &targets, PlanStrategy::BruteForce);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let targets = grid_targets(8);
        let a = plan_route((0.0, 0.0), &targets, PlanStrategy::Random { seed: 3 });
        let b = plan_route((0.0, 0.0), &targets, PlanStrategy::Random { seed: 3 });
        assert_eq!(a, b);
    }
}
