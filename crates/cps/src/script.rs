//! Click scripts: generation, execution, and the timestamped log.
//!
//! The paper's script generator maps each planned target to a click
//! statement followed by a wait "to ensure that the diagnostic tool has
//! enough time to react", with long waits where the tool reads data; the
//! executor logs the timestamp of every click so the capture and the video
//! can be split per action.

use dpr_can::Micros;
use dpr_tool::ToolSession;
use dpr_vehicle::SessionError;
use serde::{Deserialize, Serialize};

use crate::analyzer::ClickTarget;
use crate::clicker::RoboticClicker;

/// One statement of a click script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptStep {
    /// Move to the target and tap it.
    Click {
        /// The target to tap.
        target: ClickTarget,
    },
    /// Hold still for a fixed period.
    Wait {
        /// How long to wait.
        duration: Micros,
    },
}

/// A generated script.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClickScript {
    /// The statements in execution order.
    pub steps: Vec<ScriptStep>,
}

impl ClickScript {
    /// Generates the paper's canonical script shape: click each target in
    /// order, waiting `wait_after` after each click.
    pub fn clicks_with_waits(targets: Vec<ClickTarget>, wait_after: Micros) -> Self {
        let mut steps = Vec::with_capacity(targets.len() * 2);
        for target in targets {
            steps.push(ScriptStep::Click { target });
            steps.push(ScriptStep::Wait {
                duration: wait_after,
            });
        }
        ClickScript { steps }
    }

    /// Appends a click.
    pub fn click(&mut self, target: ClickTarget) -> &mut Self {
        self.steps.push(ScriptStep::Click { target });
        self
    }

    /// Appends a wait.
    pub fn wait(&mut self, duration: Micros) -> &mut Self {
        self.steps.push(ScriptStep::Wait { duration });
        self
    }
}

/// One executed action, with the time it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Logical time of the action.
    pub at: Micros,
    /// What was done (the clicked text, or "wait").
    pub action: String,
    /// Stylus position after the action.
    pub position: (usize, usize),
}

/// The executor's timestamped record (the paper's "script executor and
/// logger"), used to split the capture and video into per-action parts.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionLog {
    /// Entries in execution order.
    pub entries: Vec<LogEntry>,
}

impl ExecutionLog {
    /// Records an action.
    pub fn record(&mut self, at: Micros, action: impl Into<String>, position: (usize, usize)) {
        self.entries.push(LogEntry {
            at,
            action: action.into(),
            position,
        });
    }

    /// The time window between one action and the next (half-open), for
    /// splitting captures. The final action's window extends to `end`.
    pub fn window_of(&self, index: usize, end: Micros) -> Option<(Micros, Micros)> {
        let start = self.entries.get(index)?.at;
        let stop = self
            .entries
            .get(index + 1)
            .map(|e| e.at)
            .unwrap_or(end);
        Some((start, stop))
    }
}

/// Executes a script against a live session: moves the stylus (consuming
/// real session time), taps, and logs every action.
///
/// # Errors
///
/// Propagates transport errors raised while the session reacts to clicks.
pub fn execute(
    script: &ClickScript,
    session: &mut ToolSession,
    clicker: &mut RoboticClicker,
    log: &mut ExecutionLog,
) -> Result<(), SessionError> {
    for step in &script.steps {
        match step {
            ScriptStep::Click { target } => {
                let travel = clicker.click_at(target.x as f64, target.y as f64);
                session.wait(travel)?;
                let pressed_at = session.now();
                session.click(target.x, target.y)?;
                log.record(pressed_at, target.text.clone(), (target.x, target.y));
            }
            ScriptStep::Wait { duration } => {
                session.wait(*duration)?;
                let (x, y) = clicker.position();
                log.record(session.now(), "wait", (x as usize, y as usize));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(text: &str, x: usize, y: usize) -> ClickTarget {
        ClickTarget {
            text: text.to_string(),
            x,
            y,
        }
    }

    #[test]
    fn generation_interleaves_clicks_and_waits() {
        let script = ClickScript::clicks_with_waits(
            vec![target("a", 1, 1), target("b", 2, 2)],
            Micros::from_secs(30),
        );
        assert_eq!(script.steps.len(), 4);
        assert!(matches!(script.steps[0], ScriptStep::Click { .. }));
        assert!(matches!(
            script.steps[1],
            ScriptStep::Wait { duration } if duration == Micros::from_secs(30)
        ));
    }

    #[test]
    fn builder_methods_chain() {
        let mut script = ClickScript::default();
        script
            .click(target("x", 0, 0))
            .wait(Micros::from_secs(1))
            .click(target("y", 5, 5));
        assert_eq!(script.steps.len(), 3);
    }

    #[test]
    fn log_windows_split_the_timeline() {
        let mut log = ExecutionLog::default();
        log.record(Micros::from_secs(1), "a", (0, 0));
        log.record(Micros::from_secs(5), "b", (1, 1));
        assert_eq!(
            log.window_of(0, Micros::from_secs(100)),
            Some((Micros::from_secs(1), Micros::from_secs(5)))
        );
        assert_eq!(
            log.window_of(1, Micros::from_secs(100)),
            Some((Micros::from_secs(5), Micros::from_secs(100)))
        );
        assert_eq!(log.window_of(2, Micros::from_secs(100)), None);
    }

    #[test]
    fn execute_clicks_navigate_a_real_session() {
        use dpr_tool::{ToolProfile, ToolSession};
        use dpr_vehicle::profiles::{self, CarId};

        let car = profiles::build(CarId::A, 8);
        let mut session = ToolSession::new(car, ToolProfile::autel_919());
        let shot = session.screenshot();
        let engine = shot
            .widgets_of(dpr_tool::WidgetKind::Button)
            .find(|w| w.text == "Engine")
            .unwrap();
        let (x, y) = engine.center();

        let mut script = ClickScript::default();
        script.click(target("Engine", x, y));
        let mut clicker = RoboticClicker::new();
        let mut log = ExecutionLog::default();
        execute(&script, &mut session, &mut clicker, &mut log).unwrap();

        assert_eq!(clicker.clicks(), 1);
        assert_eq!(log.entries.len(), 1);
        assert_eq!(log.entries[0].action, "Engine");
        // The tool reacted: we are on the function menu now.
        let after = session.screenshot();
        assert!(after
            .widgets_of(dpr_tool::WidgetKind::Button)
            .any(|w| w.text == "Read Data Stream"));
    }
}
