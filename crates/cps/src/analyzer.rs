//! The UI analyzer: deciding what to click from a screenshot.
//!
//! The paper's analyzer runs EAST text detection plus Tesseract OCR over
//! camera a's picture, keeps regions whose text matches target keywords
//! (filtering out, e.g., "clear trouble codes"), and recognizes text-less
//! buttons by visual similarity against template pictures. Our screenshots
//! already carry widget rectangles, so detection reduces to widget
//! filtering; template matching is modelled with normalized Levenshtein
//! similarity, which plays the role of the paper's image-similarity score.

use dpr_tool::{Screenshot, Widget, WidgetKind};
use serde::{Deserialize, Serialize};

/// Buttons that must never be clicked during data collection (mirrors the
/// paper's keyword blacklist, e.g. "clear trouble codes").
pub const DEFAULT_BLACKLIST: [&str; 4] = [
    "Clear Trouble Codes",
    "ECU Coding",
    "Reset Adaptation",
    "Format",
];

/// A clickable target the analyzer selected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClickTarget {
    /// The widget's text.
    pub text: String,
    /// Click coordinates (widget center).
    pub x: usize,
    /// Click row.
    pub y: usize,
}

impl From<&Widget> for ClickTarget {
    fn from(w: &Widget) -> Self {
        let (x, y) = w.center();
        ClickTarget {
            text: w.text.clone(),
            x,
            y,
        }
    }
}

/// All safe-to-click buttons on a screen: button widgets minus the
/// blacklist.
pub fn clickable_buttons(shot: &Screenshot, blacklist: &[&str]) -> Vec<ClickTarget> {
    shot.widgets_of(WidgetKind::Button)
        .filter(|w| !blacklist.iter().any(|b| similarity(&w.text, b) > 0.8))
        .map(ClickTarget::from)
        .collect()
}

/// The buttons whose text contains one of the wanted keywords
/// (case-insensitive) — the paper clicks regions containing e.g.
/// "Read Data Stream".
pub fn buttons_matching(shot: &Screenshot, keywords: &[&str]) -> Vec<ClickTarget> {
    shot.widgets_of(WidgetKind::Button)
        .filter(|w| {
            let lower = w.text.to_lowercase();
            keywords.iter().any(|k| lower.contains(&k.to_lowercase()))
        })
        .map(ClickTarget::from)
        .collect()
}

/// Normalized similarity in `0..=1` between a widget's text and a
/// template (1.0 = identical). Stands in for the paper's image-similarity
/// matching of text-less buttons against pre-defined button pictures.
pub fn similarity(a: &str, b: &str) -> f64 {
    let a_low = a.to_lowercase();
    let b_low = b.to_lowercase();
    let max_len = a_low.chars().count().max(b_low.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&a_low, &b_low) as f64 / max_len as f64
}

/// Finds the best button for a template if its similarity exceeds the
/// threshold — the analyzer's tolerant lookup (OCR may have slightly
/// mangled the button's text).
pub fn match_button<'a>(
    shot: &'a Screenshot,
    template: &str,
    threshold: f64,
) -> Option<&'a Widget> {
    shot.widgets_of(WidgetKind::Button)
        .map(|w| (w, similarity(&w.text, template)))
        .filter(|(_, s)| *s >= threshold)
        .max_by(|(_, s1), (_, s2)| s1.total_cmp(s2))
        .map(|(w, _)| w)
}

/// Classic dynamic-programming Levenshtein distance.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_can::Micros;

    fn shot() -> Screenshot {
        let mut s = Screenshot::new(Micros::ZERO, 60, 12);
        s.push(WidgetKind::Title, 1, 0, "Engine - Functions");
        s.push(WidgetKind::Button, 2, 2, "Read Data Stream");
        s.push(WidgetKind::Button, 2, 4, "Active Test");
        s.push(WidgetKind::Button, 2, 6, "Clear Trouble Codes");
        s.push(WidgetKind::Button, 2, 10, "[Back]");
        s.push(WidgetKind::Label, 2, 8, "Not a button");
        s
    }

    #[test]
    fn blacklist_filters_dangerous_buttons() {
        let targets = clickable_buttons(&shot(), &DEFAULT_BLACKLIST);
        let texts: Vec<&str> = targets.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"Read Data Stream"));
        assert!(texts.contains(&"Active Test"));
        assert!(!texts.contains(&"Clear Trouble Codes"));
        assert!(!texts.contains(&"Not a button"));
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let hits = buttons_matching(&shot(), &["read data"]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text, "Read Data Stream");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn similarity_tolerates_ocr_mangling() {
        assert!(similarity("Read Data Stream", "Read Data Stream") == 1.0);
        assert!(similarity("Read Dala Stream", "Read Data Stream") > 0.9);
        assert!(similarity("Active Test", "Read Data Stream") < 0.5);
    }

    #[test]
    fn match_button_with_threshold() {
        let s = shot();
        let w = match_button(&s, "Aktive Test", 0.7).expect("close enough");
        assert_eq!(w.text, "Active Test");
        assert!(match_button(&s, "Service Reset", 0.7).is_none());
    }

    #[test]
    fn click_targets_use_widget_centers() {
        let s = shot();
        let targets = buttons_matching(&s, &["back"]);
        assert_eq!(targets[0].x, 2 + "[Back]".len() / 2);
        assert_eq!(targets[0].y, 10);
    }
}
