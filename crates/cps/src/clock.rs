//! Clock skew and the two alignment methods of §9.4.
//!
//! The phone filming the screen and the PC capturing CAN frames keep
//! different clocks; inferring formulas from misaligned (X, Y) pairs is
//! the paper's stated source of residual coefficient error. The paper
//! aligns them two ways: NTP synchronization beforehand, and — because
//! OBD-II is publicly decodable — matching decoded OBD values against the
//! values seen on screen to estimate the offset ([`align_by_obd`]).

use dpr_can::{BusLog, Micros};
use dpr_ocr::OcrReading;
use dpr_protocol::obd;
use serde::{Deserialize, Serialize};

/// A clock that runs at bus rate but offset by a fixed amount — the
/// camera phone's clock. Positive offset = camera clock ahead of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewedClock {
    /// Offset in microseconds (camera time − bus time).
    pub offset_us: i64,
}

impl SkewedClock {
    /// A perfectly synchronized clock.
    pub const ALIGNED: SkewedClock = SkewedClock { offset_us: 0 };

    /// Creates a clock with the given offset.
    pub fn with_offset_us(offset_us: i64) -> Self {
        SkewedClock { offset_us }
    }

    /// Converts bus time to this clock's local time (saturating at zero).
    pub fn to_local(&self, bus_time: Micros) -> Micros {
        bus_time
            .checked_add_signed(self.offset_us)
            .unwrap_or(Micros::ZERO)
    }

    /// Converts local time back to bus time (saturating at zero).
    pub fn to_bus(&self, local_time: Micros) -> Micros {
        local_time
            .checked_add_signed(-self.offset_us)
            .unwrap_or(Micros::ZERO)
    }
}

/// Simulates one NTP exchange: the estimate equals the true offset plus
/// the unknowable path asymmetry, bounded by half the round-trip time.
/// Deterministic in `seed`.
pub fn ntp_sync(true_offset_us: i64, rtt: Micros, seed: u64) -> SkewedClock {
    // Asymmetry in [-rtt/4, rtt/4], a typical LAN bound.
    let h = {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    let quarter = (rtt.as_micros() / 4) as i64;
    let asymmetry = if quarter == 0 {
        0
    } else {
        (h % (2 * quarter as u64 + 1)) as i64 - quarter
    };
    SkewedClock {
        offset_us: true_offset_us + asymmetry,
    }
}

/// Retimes camera-clock OCR readings onto the bus clock given an
/// estimated offset.
pub fn retime_readings(readings: &[OcrReading], estimated_offset_us: i64) -> Vec<OcrReading> {
    readings
        .iter()
        .map(|r| OcrReading {
            at: r
                .at
                .checked_add_signed(-estimated_offset_us)
                .unwrap_or(Micros::ZERO),
            ..r.clone()
        })
        .collect()
}

/// §9.4 method 2: estimate the camera-vs-bus offset from OBD-II traffic.
///
/// OBD-II responses are publicly decodable, so every response frame gives
/// a `(bus time, true displayed value)` pair. For each such pair we find
/// OCR readings showing (nearly) the same value and collect the candidate
/// offsets `ui time − bus time`; the median over all candidates is robust
/// to coincidental value matches. Returns `None` when no OBD response
/// matches any reading.
pub fn align_by_obd(log: &BusLog, readings: &[OcrReading]) -> Option<i64> {
    let mut candidate_offsets: Vec<i64> = Vec::new();
    for entry in log.iter() {
        // OBD single frames: ISO-TP SF PCI then "41 pid data…".
        let data = entry.frame.data();
        if data.len() < 4 || data[0] >> 4 != 0 {
            continue;
        }
        let len = usize::from(data[0] & 0x0F);
        if len < 3 || data.len() < 1 + len {
            continue;
        }
        let Ok((pid, bytes)) = obd::parse_response(&data[1..=len]) else {
            continue;
        };
        let Some(spec) = obd::pid_spec(pid) else {
            continue;
        };
        if bytes.len() < spec.bytes {
            continue;
        }
        let value = spec.decode(bytes);
        // Match readings displaying this value (within one raw-byte step).
        for reading in readings {
            let Some(shown) = reading.value else { continue };
            if (shown - value).abs() <= 1.0 {
                // Ignore wild pairings more than 30 s apart.
                let delta = reading.at.as_micros() as i64 - entry.at.as_micros() as i64;
                if delta.abs() < 30_000_000 {
                    candidate_offsets.push(delta);
                }
            }
        }
    }
    if candidate_offsets.is_empty() {
        return None;
    }
    candidate_offsets.sort_unstable();
    let offset = candidate_offsets[candidate_offsets.len() / 2];
    dpr_telemetry::counter("cps.alignment_estimates").inc(1);
    dpr_telemetry::counter("cps.alignment_pairs").inc(candidate_offsets.len() as u64);
    dpr_telemetry::gauge("cps.alignment_offset_us").set(offset);
    Some(offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_can::{CanFrame, CanId};

    #[test]
    fn skewed_clock_round_trips() {
        let clock = SkewedClock::with_offset_us(1_500_000);
        let bus = Micros::from_secs(10);
        let local = clock.to_local(bus);
        assert_eq!(local, Micros::from_millis(11_500));
        assert_eq!(clock.to_bus(local), bus);
    }

    #[test]
    fn negative_offset_saturates_at_zero() {
        let clock = SkewedClock::with_offset_us(-5_000_000);
        assert_eq!(clock.to_local(Micros::from_secs(1)), Micros::ZERO);
    }

    #[test]
    fn ntp_error_bounded_by_rtt() {
        for seed in 0..50 {
            let estimated = ntp_sync(2_000_000, Micros::from_millis(8), seed);
            let error = (estimated.offset_us - 2_000_000).abs();
            assert!(error <= 2_000, "error {error} exceeds rtt/4");
        }
    }

    #[test]
    fn obd_alignment_recovers_offset() {
        // Build a capture: coolant PID 0x05 responses at known bus times.
        let mut log = BusLog::new();
        let rsp_id = CanId::standard(0x7E8).unwrap();
        let true_offset: i64 = 700_000; // camera 0.7 s ahead
        let mut readings = Vec::new();
        for i in 0..20u64 {
            let bus_t = Micros::from_millis(500 * i);
            let raw = 130 + (i % 8) as u8; // decoded: raw - 40
            let frame =
                CanFrame::new_padded(rsp_id, &[0x03, 0x41, 0x05, raw], 0x55).unwrap();
            log.record(bus_t, frame);
            readings.push(OcrReading {
                at: bus_t.checked_add_signed(true_offset).unwrap(),
                screen: "Engine (OBD-II) - Data Stream p1".into(),
                label: "Engine Coolant Temperature".into(),
                text: format!("{}", i32::from(raw) - 40),
                value: Some(f64::from(raw) - 40.0),
            });
        }
        let estimated = align_by_obd(&log, &readings).expect("matches exist");
        assert!(
            (estimated - true_offset).abs() < 50_000,
            "estimated {estimated} vs true {true_offset}"
        );

        // Retiming brings readings back onto the bus clock.
        let retimed = retime_readings(&readings, estimated);
        assert!(retimed[0].at.abs_diff(Micros::ZERO) < Micros::from_millis(100));
    }

    #[test]
    fn obd_alignment_returns_none_without_matches() {
        let log = BusLog::new();
        assert_eq!(align_by_obd(&log, &[]), None);
    }

    #[test]
    fn alignment_ignores_non_obd_traffic() {
        let mut log = BusLog::new();
        let id = CanId::standard(0x7E8).unwrap();
        // UDS response, not OBD.
        log.record(
            Micros::from_secs(1),
            CanFrame::new_padded(id, &[0x04, 0x62, 0xF4, 0x0D, 0x21], 0x55).unwrap(),
        );
        let readings = vec![OcrReading {
            at: Micros::from_secs(2),
            screen: "Engine - Data Stream p1".into(),
            label: "Speed".into(),
            text: "33".into(),
            value: Some(33.0),
        }];
        assert_eq!(align_by_obd(&log, &readings), None);
    }
}
