//! The full automated data-collection loop (paper Fig. 6b).
//!
//! Starting from the tool's ECU list, the collector repeatedly:
//! screenshots the UI (camera a), picks the clickable targets (UI
//! analyzer), orders them (planner), and drives the robotic clicker
//! through them (script executor) — opening every ECU, dwelling on every
//! data-stream page long enough "to get enough data for reverse
//! engineering", and starting every active test. The output is the
//! OBD-port capture, camera b's frames, and the click log.

use dpr_can::{BusLog, Micros};
use dpr_tool::{ToolSession, UiFrame};
use dpr_vehicle::{AttachedVehicle, SessionError};
use serde::{Deserialize, Serialize};

use crate::analyzer::{self, ClickTarget, DEFAULT_BLACKLIST};
use crate::clicker::RoboticClicker;
use crate::planner::{plan_route, PlanStrategy};
use crate::script::ExecutionLog;

/// Collector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectConfig {
    /// Dwell per data-stream page (paper: ~30 s per reading).
    pub read_wait: Micros,
    /// Route-planning strategy for click ordering.
    pub strategy: PlanStrategy,
    /// Safety cap on pages visited per ECU function.
    pub max_pages: usize,
    /// Whether to run active tests.
    pub run_tests: bool,
    /// Whether to read stored trouble codes per ECU (never clears them).
    pub read_dtcs: bool,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            read_wait: Micros::from_secs(30),
            strategy: PlanStrategy::NearestNeighbor,
            max_pages: 16,
            run_tests: true,
            read_dtcs: true,
        }
    }
}

/// Everything the data-collection module hands to the analysis pipeline.
#[derive(Debug)]
pub struct CollectionReport {
    /// The OBD-port capture.
    pub log: BusLog,
    /// Camera b's timestamped frames.
    pub frames: Vec<UiFrame>,
    /// The vehicle (ground truth for evaluation only).
    pub vehicle: AttachedVehicle,
    /// The executor's click log.
    pub execution: ExecutionLog,
    /// The clicker, with its usage accounting.
    pub clicker: RoboticClicker,
}

fn click(
    session: &mut ToolSession,
    clicker: &mut RoboticClicker,
    log: &mut ExecutionLog,
    target: &ClickTarget,
) -> Result<(), SessionError> {
    let travel = clicker.click_at(target.x as f64, target.y as f64);
    session.wait(travel)?;
    // Stamp the click at press time: any traffic the click triggers (an
    // active test's three messages) happens after this instant, which is
    // what lets the analysis attribute traffic to the click.
    let pressed_at = session.now();
    session.click(target.x, target.y)?;
    log.record(pressed_at, target.text.clone(), (target.x, target.y));
    Ok(())
}

fn click_named(
    session: &mut ToolSession,
    clicker: &mut RoboticClicker,
    log: &mut ExecutionLog,
    name: &str,
) -> Result<bool, SessionError> {
    let shot = session.screenshot();
    let Some(widget) = analyzer::match_button(&shot, name, 0.85) else {
        return Ok(false);
    };
    let target = ClickTarget::from(widget);
    click(session, clicker, log, &target)?;
    Ok(true)
}

/// Pages through the currently open list screen: dwell on each page, then
/// follow "[Next Page]" until it disappears, then "[Back]".
fn walk_pages(
    session: &mut ToolSession,
    clicker: &mut RoboticClicker,
    log: &mut ExecutionLog,
    config: &CollectConfig,
) -> Result<(), SessionError> {
    for _ in 0..config.max_pages {
        session.wait(config.read_wait)?;
        if !click_named(session, clicker, log, "[Next Page]")? {
            break;
        }
    }
    click_named(session, clicker, log, "[Back]")?;
    Ok(())
}

/// Runs every active test on the current active-test screen, page by
/// page, in planned order.
fn walk_tests(
    session: &mut ToolSession,
    clicker: &mut RoboticClicker,
    log: &mut ExecutionLog,
    config: &CollectConfig,
) -> Result<(), SessionError> {
    for _ in 0..config.max_pages {
        let shot = session.screenshot();
        let nav = ["[Back]", "[Next Page]", "[Prev Page]"];
        let tests: Vec<ClickTarget> = analyzer::clickable_buttons(&shot, &DEFAULT_BLACKLIST)
            .into_iter()
            .filter(|t| !nav.contains(&t.text.as_str()))
            .collect();
        let points: Vec<(f64, f64)> = tests.iter().map(|t| (t.x as f64, t.y as f64)).collect();
        let order = plan_route(clicker.position(), &points, config.strategy);
        for idx in order {
            click(session, clicker, log, &tests[idx])?;
            // Let the test settle before the next one.
            session.wait(Micros::from_millis(500))?;
        }
        if !click_named(session, clicker, log, "[Next Page]")? {
            break;
        }
    }
    click_named(session, clicker, log, "[Back]")?;
    Ok(())
}

/// The full collection run over one vehicle session. Returns the capture,
/// frames, and logs the analysis pipeline consumes.
///
/// # Errors
///
/// Propagates transport errors from the session.
pub fn collect_vehicle(
    mut session: ToolSession,
    config: &CollectConfig,
) -> Result<CollectionReport, SessionError> {
    let mut clicker = RoboticClicker::new();
    let mut log = ExecutionLog::default();

    // The ECU list is the root screen.
    let shot = session.screenshot();
    let ecu_buttons = analyzer::clickable_buttons(&shot, &DEFAULT_BLACKLIST);
    let points: Vec<(f64, f64)> = ecu_buttons
        .iter()
        .map(|t| (t.x as f64, t.y as f64))
        .collect();
    let order = plan_route(clicker.position(), &points, config.strategy);

    for idx in order {
        let ecu_button = &ecu_buttons[idx];
        click(&mut session, &mut clicker, &mut log, ecu_button)?;

        if click_named(&mut session, &mut clicker, &mut log, "Read Data Stream")? {
            walk_pages(&mut session, &mut clicker, &mut log, config)?;
        }
        if config.run_tests
            && click_named(&mut session, &mut clicker, &mut log, "Active Test")?
        {
            walk_tests(&mut session, &mut clicker, &mut log, config)?;
        }
        if config.read_dtcs
            && click_named(&mut session, &mut clicker, &mut log, "Read Trouble Codes")?
        {
            session.wait(Micros::from_millis(500))?;
            click_named(&mut session, &mut clicker, &mut log, "[Back]")?;
        }
        click_named(&mut session, &mut clicker, &mut log, "[Back]")?;
    }

    let (bus_log, frames, vehicle) = session.into_artifacts();
    Ok(CollectionReport {
        log: bus_log,
        frames,
        vehicle,
        execution: log,
        clicker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_tool::ToolProfile;
    use dpr_vehicle::profiles::{self, CarId};

    fn quick_config() -> CollectConfig {
        CollectConfig {
            read_wait: Micros::from_secs(2),
            ..CollectConfig::default()
        }
    }

    use dpr_tool::WidgetKind;

    #[test]
    fn collects_a_full_uds_car() {
        let car = profiles::build(CarId::P, 21);
        let session = ToolSession::new(car, ToolProfile::autel_919());
        let report = collect_vehicle(session, &quick_config()).unwrap();

        // Traffic for every ECU was captured.
        assert!(report.log.len() > 50, "capture has {} frames", report.log.len());
        // Camera b saw frames with values.
        assert!(report.frames.len() > 10);
        let any_value = report.frames.iter().any(|f| {
            f.screenshot
                .widgets_of(WidgetKind::Value)
                .any(|w| w.text != "---")
        });
        assert!(any_value, "some displayed values must be captured");
        // The clicker actually worked.
        assert!(report.clicker.clicks() > 5);
        assert!(!report.execution.entries.is_empty());
    }

    #[test]
    fn active_tests_get_driven() {
        // Car O: 4 ECRs over UDS 0x2F.
        let car = profiles::build(CarId::O, 13);
        let session = ToolSession::new(car, ToolProfile::autel_919());
        let report = collect_vehicle(session, &quick_config()).unwrap();
        let adjusted: usize = report
            .vehicle
            .ecus()
            .map(|e| {
                e.component_keys()
                    .filter(|&k| e.component(k).is_some_and(|c| c.was_adjusted()))
                    .count()
            })
            .sum();
        assert_eq!(adjusted, 4, "all four Car O components must be driven");
    }

    #[test]
    fn kwp_car_collection_works() {
        let car = profiles::build(CarId::C, 17);
        let session = ToolSession::new(car, ToolProfile::launch_x431());
        let report = collect_vehicle(session, &quick_config()).unwrap();
        assert!(report.log.len() > 20);
    }

    #[test]
    fn collector_never_clears_trouble_codes() {
        // The blacklist must keep the robot away from destructive buttons:
        // after a full collection, every stored DTC is still there.
        let car = profiles::build(CarId::P, 55);
        let before: usize = car.ecus().iter().map(|e| e.dtcs().len()).sum();
        assert!(before > 0, "profile cars store DTCs");
        let session = ToolSession::new(car, ToolProfile::autel_919());
        let report = collect_vehicle(session, &quick_config()).unwrap();
        let after: usize = report.vehicle.ecus().map(|e| e.dtcs().len()).sum();
        assert_eq!(after, before, "collection must not clear DTCs");
    }

    #[test]
    fn tests_can_be_disabled() {
        let car = profiles::build(CarId::O, 13);
        let session = ToolSession::new(car, ToolProfile::autel_919());
        let config = CollectConfig {
            run_tests: false,
            ..quick_config()
        };
        let report = collect_vehicle(session, &config).unwrap();
        let adjusted: usize = report
            .vehicle
            .ecus()
            .map(|e| {
                e.component_keys()
                    .filter(|&k| e.component(k).is_some_and(|c| c.was_adjusted()))
                    .count()
            })
            .sum();
        assert_eq!(adjusted, 0);
    }
}
