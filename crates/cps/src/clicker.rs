//! Robotic clicker kinematics.
//!
//! The paper's stylus "can only move straight along the coordinate axis
//! with fixed speed" — i.e. travel time is the Manhattan distance divided
//! by the axis speed — which is exactly why click ordering matters and a
//! TSP planner pays off.

use dpr_can::Micros;
use serde::{Deserialize, Serialize};

/// The robotic clicker: position, speed, and usage accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoboticClicker {
    position: (f64, f64),
    /// Axis speed in grid cells per second.
    pub speed: f64,
    /// Time the stylus dwells for one tap.
    pub click_dwell: Micros,
    total_distance: f64,
    total_moving: Micros,
    clicks: usize,
}

impl RoboticClicker {
    /// A clicker parked at the origin moving 40 cells/s with an 80 ms tap.
    pub fn new() -> Self {
        Self::with_speed(40.0)
    }

    /// A clicker with a custom axis speed.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    pub fn with_speed(speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        RoboticClicker {
            position: (0.0, 0.0),
            speed,
            click_dwell: Micros::from_millis(80),
            total_distance: 0.0,
            total_moving: Micros::ZERO,
            clicks: 0,
        }
    }

    /// Current stylus position.
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// Total Manhattan distance travelled.
    pub fn total_distance(&self) -> f64 {
        self.total_distance
    }

    /// Total time spent moving (excludes click dwells).
    pub fn total_moving_time(&self) -> Micros {
        self.total_moving
    }

    /// Number of taps performed.
    pub fn clicks(&self) -> usize {
        self.clicks
    }

    /// The travel time from the current position to a target, without
    /// moving.
    pub fn travel_time_to(&self, x: f64, y: f64) -> Micros {
        let d = (x - self.position.0).abs() + (y - self.position.1).abs();
        Micros::from_secs_f64(d / self.speed)
    }

    /// Moves the stylus to `(x, y)`; returns the travel time.
    pub fn move_to(&mut self, x: f64, y: f64) -> Micros {
        let d = (x - self.position.0).abs() + (y - self.position.1).abs();
        let t = Micros::from_secs_f64(d / self.speed);
        self.position = (x, y);
        self.total_distance += d;
        self.total_moving += t;
        t
    }

    /// Moves to `(x, y)` and taps; returns total time consumed.
    pub fn click_at(&mut self, x: f64, y: f64) -> Micros {
        let travel = self.move_to(x, y);
        self.clicks += 1;
        dpr_telemetry::counter("cps.clicks").inc(1);
        travel + self.click_dwell
    }
}

impl Default for RoboticClicker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_travel_time() {
        let mut c = RoboticClicker::with_speed(10.0);
        // 30 cells at 10 cells/s = 3 s.
        assert_eq!(c.travel_time_to(10.0, 20.0), Micros::from_secs(3));
        let t = c.move_to(10.0, 20.0);
        assert_eq!(t, Micros::from_secs(3));
        assert_eq!(c.position(), (10.0, 20.0));
        assert_eq!(c.total_distance(), 30.0);
    }

    #[test]
    fn click_includes_dwell_and_counts() {
        let mut c = RoboticClicker::with_speed(10.0);
        let t = c.click_at(5.0, 0.0);
        assert_eq!(t, Micros::from_millis(500) + c.click_dwell);
        assert_eq!(c.clicks(), 1);
    }

    #[test]
    fn accounting_accumulates() {
        let mut c = RoboticClicker::with_speed(20.0);
        c.click_at(10.0, 0.0);
        c.click_at(10.0, 10.0);
        c.click_at(0.0, 0.0);
        assert_eq!(c.total_distance(), 40.0);
        assert_eq!(c.clicks(), 3);
        assert_eq!(c.total_moving_time(), Micros::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = RoboticClicker::with_speed(0.0);
    }
}
