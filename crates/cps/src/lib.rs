//! The cyber-physical data-collection system (paper §3.1 and Fig. 6b).
//!
//! The paper cannot instrument the hardened diagnostic tools, so it builds
//! a robot: *camera a* photographs the screen, a **UI analyzer** finds the
//! clickable targets, a **planner** orders them into the shortest stylus
//! route (a travelling-salesman instance solved with nearest neighbour), a
//! **script generator** turns the route into clicks-plus-waits, and a
//! **script executor** drives the robotic clicker while logging the
//! timestamp of every action. Meanwhile the OBD-port sniffer records CAN
//! frames and *camera b* films the screen.
//!
//! This crate implements all of those parts over the simulated tool:
//!
//! * [`clicker`] — stylus kinematics (axis-aligned movement at fixed
//!   speed, the constraint that motivates route planning);
//! * [`planner`] — nearest-neighbour, brute-force, and random-order
//!   planners plus route-length accounting (reproduces the §3.1 claim
//!   that NN saves ≈7.3% of movement time over random on 14 targets);
//! * [`analyzer`] — text-region filtering by keyword (the EAST+Tesseract
//!   stage) and Levenshtein-based button-template matching (the
//!   Canny-edge widget-similarity stage for text-less buttons);
//! * [`script`] — click scripts with inserted waits, executor, and the
//!   timestamped execution log;
//! * [`collect`] — the full closed loop: navigate every ECU, read every
//!   data-stream page, run every active test; produces the capture and
//!   video the analysis pipeline consumes;
//! * [`clock`] — skewed clocks, NTP synchronization, and the OBD-II-based
//!   alignment of §9.4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod clicker;
pub mod clock;
pub mod collect;
pub mod planner;
pub mod script;

pub use clicker::RoboticClicker;
pub use collect::{collect_vehicle, CollectConfig, CollectionReport};
pub use planner::{plan_route, route_length, PlanStrategy};
