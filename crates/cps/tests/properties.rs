//! Property-based tests for the CPS substrate: planner optimality
//! relations, clicker accounting, clock algebra.

use dpr_can::Micros;
use dpr_cps::clock::SkewedClock;
use dpr_cps::{plan_route, route_length, PlanStrategy, RoboticClicker};
use proptest::prelude::*;

fn arb_targets(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..80.0, 0.0f64..24.0), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every strategy yields a permutation of all targets.
    #[test]
    fn plans_are_permutations(targets in arb_targets(0..12), seed in any::<u64>()) {
        for strategy in [
            PlanStrategy::NearestNeighbor,
            PlanStrategy::InOrder,
            PlanStrategy::Random { seed },
        ] {
            let mut order = plan_route((0.0, 0.0), &targets, strategy);
            prop_assert_eq!(order.len(), targets.len());
            order.sort_unstable();
            prop_assert_eq!(order, (0..targets.len()).collect::<Vec<_>>());
        }
    }

    /// Brute force is a lower bound on every other strategy.
    #[test]
    fn brute_force_is_optimal(targets in arb_targets(1..8), seed in any::<u64>()) {
        let start = (0.0, 0.0);
        let opt = route_length(start, &targets, &plan_route(start, &targets, PlanStrategy::BruteForce));
        for strategy in [
            PlanStrategy::NearestNeighbor,
            PlanStrategy::InOrder,
            PlanStrategy::Random { seed },
        ] {
            let len = route_length(start, &targets, &plan_route(start, &targets, strategy));
            prop_assert!(opt <= len + 1e-9, "{strategy:?} beat brute force: {len} < {opt}");
        }
    }

    /// Route length is invariant under cyclic rotation of a closed tour's
    /// start? No — the tour is anchored at the start point. Instead:
    /// the length is always ≥ the distance to the farthest target's round
    /// trip (a simple lower bound).
    #[test]
    fn route_length_lower_bound(targets in arb_targets(1..10)) {
        let start = (0.0, 0.0);
        let order = plan_route(start, &targets, PlanStrategy::NearestNeighbor);
        let len = route_length(start, &targets, &order);
        let farthest = targets
            .iter()
            .map(|t| (t.0 - start.0).abs() + (t.1 - start.1).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(len + 1e-9 >= 2.0 * farthest);
    }

    /// Clicker accounting: total distance equals the route length of the
    /// clicks performed, and travel time is distance / speed.
    #[test]
    fn clicker_accounting(targets in arb_targets(1..10), speed in 5.0f64..100.0) {
        let mut clicker = RoboticClicker::with_speed(speed);
        let mut manual = 0.0;
        let mut here = (0.0, 0.0);
        for &(x, y) in &targets {
            manual += (x - here.0).abs() + (y - here.1).abs();
            here = (x, y);
            clicker.click_at(x, y);
        }
        prop_assert!((clicker.total_distance() - manual).abs() < 1e-9);
        prop_assert_eq!(clicker.clicks(), targets.len());
        let expected_time = Micros::from_secs_f64(manual / speed);
        // Per-move rounding to whole microseconds accumulates.
        prop_assert!(
            clicker.total_moving_time().abs_diff(expected_time)
                <= Micros::from_micros(targets.len() as u64),
        );
    }

    /// Clock conversions invert each other for representable times.
    #[test]
    fn clock_round_trip(offset in -1_000_000i64..1_000_000, t_ms in 2_000u64..1_000_000) {
        let clock = SkewedClock::with_offset_us(offset);
        let bus = Micros::from_millis(t_ms);
        prop_assert_eq!(clock.to_bus(clock.to_local(bus)), bus);
    }
}
