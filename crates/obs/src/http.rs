//! Bounded HTTP/1.1 request parsing and response writing, std only.
//!
//! The parser is written for a server that must stay alive under
//! hostile input: every read is capped, every length is checked before
//! any allocation proportional to it, and a malformed request is a
//! *value* ([`HeadError`]) the caller maps to a 4xx response — never a
//! panic. The request head is parsed from a caller-owned scratch buffer
//! so a handler thread serves any number of requests with zero
//! steady-state head allocations beyond the header strings themselves.
//!
//! Bodies are not buffered here. [`BodyReader`] adapts the connection
//! into a [`Read`] bounded by the declared `Content-Length`, so callers
//! stream a body straight into its consumer (the capture replayer feeds
//! it to `CaptureReader`) without ever holding the whole body in memory.

use std::io::{self, Read, Write};

/// Hard cap on the request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Why a request head could not be produced.
#[derive(Debug)]
pub enum HeadError {
    /// The peer closed (or had already closed) before a full head
    /// arrived. Not worth a response.
    Closed,
    /// The read deadline expired before a full head arrived.
    Timeout,
    /// The head ran past [`MAX_HEAD_BYTES`] — respond 413.
    TooLarge,
    /// The bytes are not an HTTP/1.x request head — respond 400.
    Malformed(&'static str),
    /// The socket failed outright.
    Io(io::Error),
}

impl std::fmt::Display for HeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeadError::Closed => write!(f, "connection closed before request head"),
            HeadError::Timeout => write!(f, "read deadline expired before request head"),
            HeadError::TooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HeadError::Malformed(why) => write!(f, "malformed request head: {why}"),
            HeadError::Io(e) => write!(f, "request i/o: {e}"),
        }
    }
}

/// A parsed request head plus whatever bytes were read past it (the
/// start of the body, or a pipelined second request this server will
/// not serve — each connection gets exactly one response).
#[derive(Debug)]
pub struct RequestHead {
    /// The request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target (path plus optional query).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Bytes read past the head terminator.
    pub leftover: Vec<u8>,
}

impl RequestHead {
    /// The target's path component (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length: `Ok(None)` when absent, `Err` when
    /// unparsable (overflow, junk, or multiple conflicting values).
    pub fn content_length(&self) -> Result<Option<u64>, &'static str> {
        let mut found: Option<u64> = None;
        for (name, value) in &self.headers {
            if !name.eq_ignore_ascii_case("content-length") {
                continue;
            }
            let parsed: u64 = value
                .trim()
                .parse()
                .map_err(|_| "unparsable content-length")?;
            match found {
                Some(prev) if prev != parsed => return Err("conflicting content-length"),
                _ => found = Some(parsed),
            }
        }
        Ok(found)
    }
}

/// Reads one request head from `stream` into `scratch` (reused across
/// requests; cleared here) and parses it. Bytes past the `\r\n\r\n`
/// terminator land in [`RequestHead::leftover`].
pub fn read_head(stream: &mut impl Read, scratch: &mut Vec<u8>) -> Result<RequestHead, HeadError> {
    scratch.clear();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        // Scan only the tail that could complete a terminator split
        // across reads.
        if let Some(end) = find_terminator(scratch) {
            break end;
        }
        if scratch.len() > MAX_HEAD_BYTES {
            return Err(HeadError::TooLarge);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if scratch.is_empty() {
                    HeadError::Closed
                } else {
                    HeadError::Malformed("connection closed mid-head")
                });
            }
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Err(HeadError::Timeout);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                ) =>
            {
                return Err(HeadError::Closed);
            }
            Err(e) => return Err(HeadError::Io(e)),
        };
        scratch.extend_from_slice(&chunk[..n]);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HeadError::TooLarge);
    }
    let leftover = scratch[head_end..].to_vec();
    parse_head(&scratch[..head_end - 4], leftover)
}

/// Index one past the `\r\n\r\n` terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parses the head bytes (terminator already stripped).
fn parse_head(bytes: &[u8], leftover: Vec<u8>) -> Result<RequestHead, HeadError> {
    let text = std::str::from_utf8(bytes).map_err(|_| HeadError::Malformed("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HeadError::Malformed("request line is not `METHOD target HTTP/1.x`"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HeadError::Malformed("request line is not `METHOD target HTTP/1.x`"));
    }
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_uppercase())
        || target.is_empty()
        || !target.starts_with('/')
    {
        return Err(HeadError::Malformed("bad method or target"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HeadError::Malformed("header line without a colon"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HeadError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(RequestHead {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        leftover,
    })
}

/// A [`Read`] over one request body: first the head's leftover bytes,
/// then the connection, stopping at the declared `Content-Length`.
///
/// If the peer closes before delivering the declared length, reads
/// return `Ok(0)` early and [`BodyReader::complete`] stays `false` — the
/// caller distinguishes a whole body from a torn one without this
/// adapter buffering anything.
pub struct BodyReader<'a, R: Read> {
    leftover: &'a [u8],
    stream: &'a mut R,
    remaining: u64,
    torn: bool,
}

impl<'a, R: Read> BodyReader<'a, R> {
    /// A body reader for `declared` bytes, draining `leftover` first.
    pub fn new(leftover: &'a [u8], stream: &'a mut R, declared: u64) -> Self {
        let take = (leftover.len() as u64).min(declared) as usize;
        BodyReader {
            leftover: &leftover[..take],
            stream,
            remaining: declared,
            torn: false,
        }
    }

    /// Whether the full declared length was delivered (meaningful once
    /// reads have returned `Ok(0)`).
    pub fn complete(&self) -> bool {
        self.remaining == 0 && !self.torn
    }

    /// Body bytes not yet read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<R: Read> Read for BodyReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 || buf.is_empty() {
            return Ok(0);
        }
        if !self.leftover.is_empty() {
            let n = self.leftover.len().min(buf.len()).min(self.remaining as usize);
            buf[..n].copy_from_slice(&self.leftover[..n]);
            self.leftover = &self.leftover[n..];
            self.remaining -= n as u64;
            return Ok(n);
        }
        let cap = buf.len().min(self.remaining.min(usize::MAX as u64) as usize);
        match self.stream.read(&mut buf[..cap]) {
            Ok(0) => {
                self.torn = true;
                Ok(0)
            }
            Ok(n) => {
                self.remaining -= n as u64;
                Ok(n)
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                self.torn = true;
                Ok(0)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                ) =>
            {
                self.torn = true;
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }
}

/// Writes a complete response with the standard connection-close
/// framing. `extra_headers` lines are verbatim (no trailing `\r\n`).
/// Returns the total bytes written (head + body) for egress accounting.
pub fn respond_with(
    stream: &mut impl Write,
    status: &str,
    content_type: &str,
    extra_headers: &[&str],
    body: &str,
) -> io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for line in extra_headers {
        head.push_str(line);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok((head.len() + body.len()) as u64)
}

/// [`respond_with`] without extra headers.
pub fn respond(
    stream: &mut impl Write,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<u64> {
    respond_with(stream, status, content_type, &[], body)
}

/// Starts a `Transfer-Encoding: chunked` response: status line and
/// headers only — the body follows through [`write_chunk`] and ends
/// with [`finish_chunked`]. Returns the bytes written.
pub fn start_chunked(
    stream: &mut impl Write,
    status: &str,
    content_type: &str,
    extra_headers: &[&str],
) -> io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n"
    );
    for line in extra_headers {
        head.push_str(line);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    Ok(head.len() as u64)
}

/// Writes one non-empty chunk (hex size line, data, CRLF) and flushes,
/// so live streams deliver each event as it happens. Empty data is a
/// no-op returning 0 — an empty chunk would terminate the stream.
pub fn write_chunk(stream: &mut impl Write, data: &[u8]) -> io::Result<u64> {
    if data.is_empty() {
        return Ok(0);
    }
    let size = format!("{:x}\r\n", data.len());
    stream.write_all(size.as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()?;
    Ok((size.len() + data.len() + 2) as u64)
}

/// Terminates a chunked response (the zero-length chunk).
pub fn finish_chunked(stream: &mut impl Write) -> io::Result<u64> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()?;
    Ok(5)
}

/// The numeric status code of a `"429 Too Many Requests"`-style status
/// line, for metric names like `serve.http_429`.
pub fn status_code(status: &str) -> &str {
    status.split(' ').next().unwrap_or("0")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<RequestHead, HeadError> {
        let mut scratch = Vec::new();
        read_head(&mut &raw[..], &mut scratch)
    }

    #[test]
    fn parses_a_plain_get() {
        let head = parse(b"GET /metrics?x=1 HTTP/1.1\r\nHost: dpr\r\nAccept: */*\r\n\r\n").unwrap();
        assert_eq!(head.method, "GET");
        assert_eq!(head.path(), "/metrics");
        assert_eq!(head.header("host"), Some("dpr"));
        assert_eq!(head.header("ACCEPT"), Some("*/*"));
        assert_eq!(head.content_length(), Ok(None));
        assert!(head.leftover.is_empty());
    }

    #[test]
    fn keeps_body_bytes_as_leftover() {
        let head = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY").unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.content_length(), Ok(Some(4)));
        assert_eq!(head.leftover, b"BODY");
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"\x00\x01\x02\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x FTP/1.0\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HeadError::Malformed(_))),
                "{:?} should be malformed",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn torn_head_is_closed_not_malformed_garbage() {
        assert!(matches!(parse(b""), Err(HeadError::Closed)));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: d"),
            Err(HeadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_is_too_large() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        raw.extend_from_slice(b": v\r\n\r\n");
        assert!(matches!(parse(&raw), Err(HeadError::TooLarge)));
    }

    #[test]
    fn content_length_overflow_and_conflict_are_errors() {
        let huge = parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n").unwrap();
        assert!(huge.content_length().is_err());
        let twice =
            parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n").unwrap();
        assert!(twice.content_length().is_err());
        let same =
            parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\n").unwrap();
        assert_eq!(same.content_length(), Ok(Some(3)));
    }

    #[test]
    fn body_reader_tracks_completion() {
        // Full body, split between leftover and the stream.
        let mut rest: &[u8] = b"DEF";
        let mut body = BodyReader::new(b"ABC", &mut rest, 6);
        let mut out = Vec::new();
        body.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"ABCDEF");
        assert!(body.complete());

        // Peer closes mid-body: read ends early, complete() is false.
        let mut rest: &[u8] = b"DE";
        let mut body = BodyReader::new(b"", &mut rest, 10);
        let mut out = Vec::new();
        body.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"DE");
        assert!(!body.complete());

        // Leftover longer than the declared length is clipped.
        let mut rest: &[u8] = b"XYZ";
        let mut body = BodyReader::new(b"ABC", &mut rest, 2);
        let mut out = Vec::new();
        body.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"AB");
        assert!(body.complete());
    }

    #[test]
    fn respond_with_writes_extra_headers() {
        let mut out = Vec::new();
        respond_with(&mut out, "429 Too Many Requests", "text/plain", &["Retry-After: 1"], "busy\n")
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("busy\n"));
        assert_eq!(status_code("429 Too Many Requests"), "429");
    }
}
