//! Bench regression gating: compares two `BENCH_*.json` snapshots metric
//! by metric.
//!
//! A snapshot is a flat (or nested — keys are flattened with dots) JSON
//! object of numbers plus a few configuration fields. Each numeric
//! metric gets a *direction* inferred from its name — `..._per_sec` and
//! `..._speedup` style metrics regress when they drop, `..._us` /
//! `..._time` style metrics regress when they grow, everything else is
//! informational — and the comparison flags any change beyond the
//! tolerance in the bad direction. Thread-scaling speedups additionally
//! carry an *absolute* floor: any `threads_N.speedup` below
//! [`SPEEDUP_FLOOR`] regresses even if the baseline was just as bad,
//! so negative scaling can never be locked in by regenerating the
//! baseline. Non-numeric fields (the benchmark
//! configuration) are compared for equality: a mismatch is surfaced as
//! [`Verdict::ConfigChanged`] so a "regression" caused by comparing
//! different setups is visible, but it does not gate.

use dpr_telemetry::json::Value;
use std::fmt::Write as _;

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style: a drop is a regression.
    HigherIsBetter,
    /// Latency-style: a rise is a regression.
    LowerIsBetter,
    /// Descriptive only (row counts, seeds): reported, never gated.
    Informational,
}

/// Absolute floor for thread-scaling speedups: a `threads_N.speedup`
/// below 1.0 means the pool ran the workload slower than the inline
/// 1-thread pass, which is a regression no matter what the baseline
/// recorded (a baseline captured on a bad day must not grandfather
/// negative scaling in).
pub const SPEEDUP_FLOOR: f64 = 1.0;

/// Measurement-noise allowance under [`SPEEDUP_FLOOR`]. On hosts where
/// the adaptive dispatcher drains inline (no second core), the N-thread
/// point runs the same code as the 1-thread point and the true ratio is
/// exactly 1.0 — two separately timed windows still jitter a few percent
/// around it. The floor exists to catch real negative scaling (the seed
/// regressed to 0.80×), not that jitter.
pub const SPEEDUP_FLOOR_SLACK: f64 = 0.05;

fn below_speedup_floor(key: &str, current: f64) -> bool {
    key.to_ascii_lowercase().ends_with(".speedup") && current < SPEEDUP_FLOOR - SPEEDUP_FLOOR_SLACK
}

/// Classifies a metric name. Names win in this order: throughput markers,
/// then time/latency markers, then informational.
pub fn direction_for(name: &str) -> Direction {
    let lower = name.to_ascii_lowercase();
    const HIGHER: &[&str] = &[
        "per_sec",
        "speedup",
        "throughput",
        "ops",
        "rate",
        "hit",
        "utilization",
    ];
    const LOWER: &[&str] = &[
        "_us",
        "_ms",
        "_ns",
        "time",
        "latency",
        "duration",
        "wall",
        "imbalance",
        "allocs",
    ];
    if HIGHER.iter().any(|m| lower.contains(m)) {
        Direction::HigherIsBetter
    } else if LOWER.iter().any(|m| lower.contains(m)) {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// The outcome of comparing one field.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (or informational).
    Pass,
    /// Moved the *good* way by more than the tolerance.
    Improved,
    /// Moved the bad way by more than the tolerance. Gates.
    Regressed,
    /// Present in the baseline only.
    MissingInCurrent,
    /// Present in the current snapshot only.
    NewInCurrent,
    /// Non-numeric configuration field whose value changed.
    ConfigChanged,
}

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Flattened metric name.
    pub metric: String,
    /// Baseline rendering (number or config string).
    pub baseline: String,
    /// Current rendering.
    pub current: String,
    /// Relative change for numeric metrics (`+0.10` = 10% higher).
    pub change: Option<f64>,
    /// The metric's inferred direction.
    pub direction: Direction,
    /// The comparison outcome.
    pub verdict: Verdict,
}

/// A full snapshot comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Per-metric rows, in baseline key order (new keys last).
    pub rows: Vec<Row>,
    /// The tolerance the comparison ran with.
    pub max_regress: f64,
}

impl Comparison {
    /// Rows that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed)
    }

    /// Whether any gated metric regressed beyond tolerance.
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }
}

/// Parses a tolerance argument: `15%` and `15` mean fifteen percent,
/// `0.15` means the same as a plain ratio.
pub fn parse_threshold(arg: &str) -> Option<f64> {
    let arg = arg.trim();
    let (text, percent) = match arg.strip_suffix('%') {
        Some(text) => (text, true),
        None => (arg, false),
    };
    let v: f64 = text.trim().parse().ok()?;
    if !v.is_finite() || v < 0.0 {
        return None;
    }
    Some(if percent || v > 1.0 { v / 100.0 } else { v })
}

/// Flattens a parsed JSON document into `(dotted-key, value)` leaves.
fn flatten(value: &Value, prefix: &str, out: &mut Vec<(String, Value)>) {
    match value {
        Value::Object(entries) => {
            for (key, value) in entries {
                let key = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(value, &key, out);
            }
        }
        other => out.push((prefix.to_string(), other.clone())),
    }
}

fn as_number(value: &Value) -> Option<f64> {
    match value {
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn render_value(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        other => other.to_json(),
    }
}

/// Compares two parsed snapshots with the given tolerance (a ratio:
/// `0.15` = 15%).
pub fn compare(baseline: &Value, current: &Value, max_regress: f64) -> Comparison {
    let mut base_leaves = Vec::new();
    let mut cur_leaves = Vec::new();
    flatten(baseline, "", &mut base_leaves);
    flatten(current, "", &mut cur_leaves);

    let mut rows = Vec::new();
    for (key, base_value) in &base_leaves {
        let cur_value = cur_leaves.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        rows.push(match cur_value {
            None => Row {
                metric: key.clone(),
                baseline: render_value(base_value),
                current: "—".to_string(),
                change: None,
                direction: direction_for(key),
                verdict: Verdict::MissingInCurrent,
            },
            Some(cur_value) => compare_leaf(key, base_value, cur_value, max_regress),
        });
    }
    for (key, cur_value) in &cur_leaves {
        if !base_leaves.iter().any(|(k, _)| k == key) {
            rows.push(Row {
                metric: key.clone(),
                baseline: "—".to_string(),
                current: render_value(cur_value),
                change: None,
                direction: direction_for(key),
                verdict: Verdict::NewInCurrent,
            });
        }
    }
    Comparison { rows, max_regress }
}

fn compare_leaf(key: &str, base: &Value, cur: &Value, max_regress: f64) -> Row {
    let direction = direction_for(key);
    match (as_number(base), as_number(cur)) {
        (Some(b), Some(c)) => {
            let change = if b == 0.0 { None } else { Some((c - b) / b) };
            let verdict = if below_speedup_floor(key, c) {
                Verdict::Regressed
            } else {
                match (direction, change) {
                (Direction::Informational, _) | (_, None) => Verdict::Pass,
                (Direction::HigherIsBetter, Some(delta)) if delta < -max_regress => {
                    Verdict::Regressed
                }
                (Direction::HigherIsBetter, Some(delta)) if delta > max_regress => {
                    Verdict::Improved
                }
                (Direction::LowerIsBetter, Some(delta)) if delta > max_regress => {
                    Verdict::Regressed
                }
                (Direction::LowerIsBetter, Some(delta)) if delta < -max_regress => {
                    Verdict::Improved
                }
                _ => Verdict::Pass,
                }
            };
            Row {
                metric: key.to_string(),
                baseline: render_value(base),
                current: render_value(cur),
                change,
                direction,
                verdict,
            }
        }
        _ => Row {
            metric: key.to_string(),
            baseline: render_value(base),
            current: render_value(cur),
            change: None,
            direction,
            verdict: if base == cur {
                Verdict::Pass
            } else {
                Verdict::ConfigChanged
            },
        },
    }
}

/// Renders the comparison as an aligned diff table plus a verdict line.
pub fn render(cmp: &Comparison) -> String {
    let metric_width = cmp
        .rows
        .iter()
        .map(|r| r.metric.len())
        .max()
        .unwrap_or(6)
        .max(6);
    let value_width = cmp
        .rows
        .iter()
        .flat_map(|r| [r.baseline.len(), r.current.len()])
        .max()
        .unwrap_or(8)
        .max(8);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<metric_width$}  {:>value_width$}  {:>value_width$}  {:>8}  verdict",
        "metric", "baseline", "current", "change"
    );
    for row in &cmp.rows {
        let change = row
            .change
            .map(|c| format!("{:+.1}%", c * 100.0))
            .unwrap_or_else(|| "—".to_string());
        let verdict = match row.verdict {
            Verdict::Pass => "ok",
            Verdict::Improved => "IMPROVED",
            Verdict::Regressed => "REGRESSED",
            Verdict::MissingInCurrent => "missing in current",
            Verdict::NewInCurrent => "new in current",
            Verdict::ConfigChanged => "CONFIG CHANGED",
        };
        let _ = writeln!(
            out,
            "{:<metric_width$}  {:>value_width$}  {:>value_width$}  {:>8}  {}",
            row.metric, row.baseline, row.current, change, verdict
        );
    }
    let regressed: Vec<&str> = cmp.regressions().map(|r| r.metric.as_str()).collect();
    if regressed.is_empty() {
        let _ = writeln!(
            out,
            "verdict: no regressions beyond {:.0}%",
            cmp.max_regress * 100.0
        );
    } else {
        let _ = writeln!(
            out,
            "verdict: {} metric(s) regressed beyond {:.0}%: {}",
            regressed.len(),
            cmp.max_regress * 100.0,
            regressed.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_telemetry::json;

    fn snapshot(evals_per_sec: u64, wall_us: u64) -> Value {
        json::parse(&format!(
            "{{\"bench\":\"gp\",\"threads\":2,\"compiled_evals_per_sec\":{evals_per_sec},\
             \"scoring_wall_us\":{wall_us},\"compiled_speedup\":2.9}}"
        ))
        .expect("valid test json")
    }

    #[test]
    fn scaling_metrics_have_directions() {
        assert_eq!(
            direction_for("threads_2.utilization"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_for("threads_2.speedup"), Direction::HigherIsBetter);
        assert_eq!(
            direction_for("threads_2.imbalance"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_for("threads_2.rows"), Direction::Informational);
        assert_eq!(
            direction_for("threads_2.allocs_per_pass"),
            Direction::LowerIsBetter
        );
    }

    #[test]
    fn speedup_below_floor_regresses_even_against_an_equal_baseline() {
        let bad = json::parse(
            "{\"threads_2\":{\"speedup\":0.92,\"evals_per_sec\":50000},\
             \"threads_1\":{\"speedup\":1.0,\"evals_per_sec\":54000}}",
        )
        .expect("valid");
        // Baseline is identically bad — the relative gate would pass,
        // but the absolute floor must still fire.
        let cmp = compare(&bad, &bad, 0.15);
        assert!(cmp.has_regressions());
        let regressed: Vec<&str> = cmp.regressions().map(|r| r.metric.as_str()).collect();
        assert_eq!(regressed, vec!["threads_2.speedup"]);
    }

    #[test]
    fn speedup_within_noise_of_the_floor_does_not_trip_it() {
        let ok = json::parse(
            "{\"threads_2\":{\"speedup\":0.97},\"threads_1\":{\"speedup\":1.0}}",
        )
        .expect("valid");
        let cmp = compare(&ok, &ok, 0.15);
        assert!(!cmp.has_regressions(), "{}", render(&cmp));
        // Micro-bench keys like compiled_speedup use the relative gate
        // only; the floor is scoped to the thread-scaling sweep.
        let micro = json::parse("{\"compiled_speedup\":0.9}").expect("valid");
        assert!(!compare(&micro, &micro, 0.15).has_regressions());
    }

    #[test]
    fn alloc_growth_regresses() {
        let base = json::parse("{\"threads_2\":{\"allocs_per_pass\":41}}").expect("valid");
        let grown = json::parse("{\"threads_2\":{\"allocs_per_pass\":96}}").expect("valid");
        let cmp = compare(&base, &grown, 0.15);
        assert!(cmp.has_regressions());
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = snapshot(50_000, 1_000);
        let cmp = compare(&a, &a, 0.15);
        assert!(!cmp.has_regressions());
        assert!(cmp.rows.iter().all(|r| r.verdict == Verdict::Pass));
    }

    #[test]
    fn synthetic_2x_slowdown_regresses_both_directions() {
        let base = snapshot(50_000, 1_000);
        let slow = snapshot(25_000, 2_000);
        let cmp = compare(&base, &slow, 0.15);
        let verdict = |metric: &str| {
            cmp.rows
                .iter()
                .find(|r| r.metric == metric)
                .map(|r| r.verdict.clone())
        };
        assert_eq!(
            verdict("compiled_evals_per_sec"),
            Some(Verdict::Regressed),
            "throughput halved"
        );
        assert_eq!(
            verdict("scoring_wall_us"),
            Some(Verdict::Regressed),
            "wall time doubled"
        );
        assert!(cmp.has_regressions());
    }

    #[test]
    fn improvements_and_informational_changes_do_not_gate() {
        let base = snapshot(50_000, 1_000);
        let fast = json::parse(
            "{\"bench\":\"gp\",\"threads\":2,\"compiled_evals_per_sec\":90000,\
             \"scoring_wall_us\":500,\"compiled_speedup\":2.9,\"rows\":100}",
        )
        .expect("valid");
        let cmp = compare(&base, &fast, 0.15);
        assert!(!cmp.has_regressions());
        assert!(cmp
            .rows
            .iter()
            .any(|r| r.verdict == Verdict::Improved && r.metric == "compiled_evals_per_sec"));
        assert!(cmp.rows.iter().any(|r| r.verdict == Verdict::NewInCurrent));
    }

    #[test]
    fn config_changes_are_flagged_but_not_gated() {
        let base = snapshot(50_000, 1_000);
        let other = json::parse(
            "{\"bench\":\"gp_v2\",\"threads\":2,\"compiled_evals_per_sec\":50000,\
             \"scoring_wall_us\":1000,\"compiled_speedup\":2.9}",
        )
        .expect("valid");
        let cmp = compare(&base, &other, 0.15);
        assert!(!cmp.has_regressions());
        assert!(cmp.rows.iter().any(|r| r.verdict == Verdict::ConfigChanged));
    }

    #[test]
    fn threshold_parsing_accepts_percent_and_ratio() {
        assert_eq!(parse_threshold("15%"), Some(0.15));
        assert_eq!(parse_threshold("15"), Some(0.15));
        assert_eq!(parse_threshold("0.15"), Some(0.15));
        assert_eq!(parse_threshold(" 50% "), Some(0.5));
        assert_eq!(parse_threshold("-3"), None);
        assert_eq!(parse_threshold("abc"), None);
    }

    #[test]
    fn just_inside_tolerance_passes() {
        let base = snapshot(100_000, 1_000);
        let near = snapshot(86_000, 1_140);
        let cmp = compare(&base, &near, 0.15);
        assert!(!cmp.has_regressions(), "{}", render(&cmp));
    }

    #[test]
    fn renders_a_readable_table() {
        let base = snapshot(50_000, 1_000);
        let slow = snapshot(20_000, 3_000);
        let text = render(&compare(&base, &slow, 0.15));
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("compiled_evals_per_sec"));
        assert!(text.contains("verdict: 2 metric(s) regressed"));
    }
}
