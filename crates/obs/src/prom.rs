//! Prometheus text exposition (format version 0.0.4) rendering of a
//! [`MetricsSnapshot`].
//!
//! Mapping choices:
//!
//! * Metric names are sanitized to the exposition grammar
//!   (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other separators become `_`,
//!   and a leading digit gains a `_` prefix. `gp.evals_per_sec` thus
//!   scrapes as `gp_evals_per_sec`.
//! * Telemetry counters render as `counter`, gauges as `gauge`.
//! * Histograms render in the native Prometheus shape: cumulative
//!   `_bucket{le="..."}` samples (including the implicit overflow bucket
//!   as `le="+Inf"`), then `_sum` and `_count`.
//!
//! Every sample line is `name{labels} value` — the integration tests
//! round-trip the output through a line-grammar checker.

use dpr_telemetry::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Rewrites an internal metric name (`gp.evals_per_sec`) into a valid
/// Prometheus metric name (`gp_evals_per_sec`).
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a sample value (or `le` bound) the way Prometheus expects:
/// integral floats without a fraction, `+Inf` for the overflow bound.
fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders one histogram in exposition format.
fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (idx, bound) in h.bounds.iter().enumerate() {
        cumulative += h.counts.get(idx).copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", number(*bound));
    }
    // The trailing overflow bucket: by construction the +Inf cumulative
    // count equals the total observation count.
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", number(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders a whole snapshot as Prometheus text exposition.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snapshot.histograms {
        render_histogram(&mut out, &sanitize(name), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_telemetry::Registry;

    #[test]
    fn sanitize_rewrites_to_exposition_grammar() {
        assert_eq!(sanitize("gp.evals_per_sec"), "gp_evals_per_sec");
        assert_eq!(sanitize("span.pipeline.ocr"), "span_pipeline_ocr");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn counters_and_gauges_render_typed_samples() {
        let reg = Registry::new();
        reg.counter("frames.seen").inc(7);
        reg.gauge("clock.offset_us").set(-120);
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE frames_seen counter\nframes_seen 7\n"));
        assert!(text.contains("# TYPE clock_offset_us gauge\nclock_offset_us -120\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_count() {
        let reg = Registry::new();
        let h = reg.histogram_with("sdu.bytes", vec![1.0, 10.0]);
        for v in [0.5, 5.0, 500.0] {
            h.record(v);
        }
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE sdu_bytes histogram"));
        assert!(text.contains("sdu_bytes_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("sdu_bytes_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("sdu_bytes_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("sdu_bytes_sum 505.5\n"));
        assert!(text.contains("sdu_bytes_count 3\n"));
    }

    #[test]
    fn fractional_bounds_keep_their_fraction() {
        let reg = Registry::new();
        reg.histogram_with("ratio", vec![0.5]).record(0.1);
        let text = render(&reg.snapshot());
        assert!(text.contains("ratio_bucket{le=\"0.5\"} 1\n"));
    }
}
