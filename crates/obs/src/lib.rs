//! Consumption layer for `dpr-telemetry`: the exporters, profilers, and
//! gates that make the pipeline's spans and metrics usable *outside* the
//! process.
//!
//! Four pieces, layered strictly on top of the telemetry facade:
//!
//! * [`trace_event`] — a [`Sink`](dpr_telemetry::Sink) that turns closed
//!   spans into Chrome Trace Event Format JSON loadable in Perfetto or
//!   `chrome://tracing`, one row per thread (`dpr-par` workers appear as
//!   `gp-worker-N`) plus a `pool utilization %` counter track built from
//!   the `dpr_prof` profile store. Opt in with
//!   `DPR_TRACE_EVENTS=<path.json>`.
//! * [`flame`] — aggregates span records into inferno-compatible folded
//!   stack lines and a self-time/total-time text profile.
//! * [`server`] + [`prom`] — a std-only HTTP scrape endpoint
//!   (`std::net::TcpListener`, no external deps) serving `GET /metrics`
//!   in Prometheus text exposition format, `GET /trace` (the latest
//!   [`PipelineTrace`](dpr_telemetry::PipelineTrace) as JSON),
//!   `GET /profile` (the pool-profile snapshot), and `GET /healthz`
//!   (liveness JSON: version, uptime, runs published). Opt in with
//!   `DPR_METRICS_ADDR=127.0.0.1:0`.
//! * [`regress`] — compares two `BENCH_*.json` snapshots metric by
//!   metric and reports regressions beyond a tolerance, so CI can gate
//!   on the perf trajectory.
//!
//! [`ObsSession`] bundles the environment-driven pieces for a run: it
//! attaches the trace exporter to a registry, starts the metrics server,
//! and tears both down cleanly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flame;
pub mod http;
pub mod prom;
pub mod regress;
pub mod server;
pub mod table;
pub mod trace_event;

pub use flame::Profile;
pub use regress::{Comparison, Direction, Verdict};
pub use server::{
    route_slug, shared_runs, shared_trace, Conn, HealthStatus, HttpHandler, HttpServer,
    MetricsServer, ObsRouter, RunListing, RunRecord, RunStore, ServerConfig, SharedRuns,
    SharedTrace, METRICS_ADDR_ENV, OBS_ROUTES, RUNS_KEPT,
};
pub use table::{SessionTable, SessionToken};
pub use trace_event::{TraceExport, TRACE_EVENTS_ENV};

use dpr_telemetry::{PipelineTrace, Registry};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Environment variable naming the JSON-lines evidence export file: when
/// set, every [`ObsSession::publish_run`] appends one JSON line per
/// recovered sensor's [`EvidenceChain`](dpr_evidence::EvidenceChain).
/// The file is truncated when the session starts.
pub const EVIDENCE_JSON_ENV: &str = "DPR_EVIDENCE_JSON";

/// The environment-driven observability hookup for one run: an optional
/// [`TraceExport`] sink (from `DPR_TRACE_EVENTS`) attached to the run's
/// registry, an optional [`MetricsServer`] (from `DPR_METRICS_ADDR`), and
/// the shared latest-trace cell the server reads.
///
/// Construct it right after the run's [`Registry`], publish traces as
/// they complete, and call [`finish`](ObsSession::finish) when the run
/// ends — that writes the trace-event file and stops the server.
pub struct ObsSession {
    export: Option<Arc<TraceExport>>,
    server: Option<MetricsServer>,
    trace: SharedTrace,
    runs: SharedRuns,
    evidence_path: Option<PathBuf>,
}

impl ObsSession {
    /// Reads `DPR_TRACE_EVENTS`, `DPR_METRICS_ADDR`, and
    /// `DPR_EVIDENCE_JSON` and wires whatever is enabled onto `registry`.
    /// A server that fails to bind is reported to stderr and skipped
    /// rather than failing the run.
    pub fn from_env(registry: &Arc<Registry>) -> ObsSession {
        let export = TraceExport::from_env();
        if let Some(sink) = &export {
            registry.add_sink(Arc::clone(sink) as _);
        }
        let trace = shared_trace();
        let runs = shared_runs();
        let server = match MetricsServer::from_env(
            Arc::clone(registry),
            Arc::clone(&trace),
            Arc::clone(&runs),
        ) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("dpr-obs: metrics server disabled ({e})");
                None
            }
        };
        let evidence_path = match std::env::var(EVIDENCE_JSON_ENV) {
            Ok(path) if !path.trim().is_empty() => {
                let path = PathBuf::from(path.trim());
                // Truncate at session start so the file holds exactly
                // this session's runs.
                if let Err(e) = std::fs::write(&path, b"") {
                    eprintln!(
                        "dpr-obs: evidence export to {} disabled ({e})",
                        path.display()
                    );
                    None
                } else {
                    Some(path)
                }
            }
            _ => None,
        };
        ObsSession {
            export,
            server,
            trace,
            runs,
            evidence_path,
        }
    }

    /// A session with nothing enabled (useful as a default).
    pub fn disabled() -> ObsSession {
        ObsSession {
            export: None,
            server: None,
            trace: shared_trace(),
            runs: shared_runs(),
            evidence_path: None,
        }
    }

    /// Publishes `trace` as the latest run trace served at `GET /trace`.
    pub fn publish_trace(&self, trace: &PipelineTrace) {
        *self.trace.lock() = Some(trace.clone());
    }

    /// Publishes a completed pipeline run: the trace lands on `GET
    /// /trace`, the run is listed at `GET /runs`, each chain is served
    /// at `GET /evidence/<sensor>`, and — when `DPR_EVIDENCE_JSON` is
    /// set — appended to the JSON-lines export. Returns the run id.
    pub fn publish_run(
        &self,
        trace: &PipelineTrace,
        ledger: &dpr_evidence::EvidenceLedger,
    ) -> String {
        self.publish_trace(trace);
        let at_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let id = self.runs.lock().publish(at_ms, ledger.clone());
        if let Some(path) = &self.evidence_path {
            if let Err(e) = append_chains(path, ledger) {
                eprintln!(
                    "dpr-obs: writing evidence to {} failed: {e}",
                    path.display()
                );
            }
        }
        id
    }

    /// The published-runs store the metrics server serves from.
    pub fn runs(&self) -> &SharedRuns {
        &self.runs
    }

    /// The JSON-lines evidence export path, when enabled.
    pub fn evidence_path(&self) -> Option<&Path> {
        self.evidence_path.as_deref()
    }

    /// The bound scrape address, when the metrics server is running.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(MetricsServer::addr)
    }

    /// The trace-event output path, when the exporter is enabled.
    pub fn trace_events_path(&self) -> Option<&Path> {
        self.export.as_deref().map(TraceExport::path)
    }

    /// Writes the trace-event file (if exporting) and stops the metrics
    /// server (if running). Export I/O errors go to stderr; a run should
    /// not fail because its observability tap did.
    pub fn finish(self) {
        if let Some(export) = &self.export {
            if let Err(e) = export.finish() {
                eprintln!(
                    "dpr-obs: writing trace events to {} failed: {e}",
                    export.path().display()
                );
            }
        }
        if let Some(server) = self.server {
            server.stop();
        }
    }
}

/// Appends one JSON line per chain of `ledger` to `path`.
fn append_chains(path: &Path, ledger: &dpr_evidence::EvidenceLedger) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    for chain in &ledger.chains {
        let line = dpr_telemetry::json::to_string(chain)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(file, "{line}")?;
    }
    file.flush()
}

impl std::fmt::Debug for ObsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSession")
            .field("trace_events", &self.trace_events_path())
            .field("metrics_addr", &self.metrics_addr())
            .finish()
    }
}
