//! A std-only concurrent HTTP server core plus the metrics scrape
//! endpoint built on it: `std::net::TcpListener`, a fixed handler pool,
//! no external dependencies.
//!
//! Layering:
//!
//! * [`HttpServer`] — the generic machinery: an acceptor thread claims a
//!   [`SessionTable`](crate::table::SessionTable) slot per connection
//!   (503 when full), hands it to a bounded pool of handler threads
//!   (each with a reused head-scratch buffer), and a sweeper thread
//!   shuts down connections idle past their deadline. One slow or
//!   stalled client occupies one slot and one handler at most — it can
//!   no longer wedge every other caller, which is the regression the
//!   old single-threaded serve loop had.
//! * [`ObsRouter`] — the observability routes, usable standalone as the
//!   server's handler or delegated to from a larger router (`dpr-serve`
//!   mounts it behind its `/jobs` routes):
//!
//!   * `GET /metrics` — the registry's current snapshot in Prometheus
//!     text exposition format ([`crate::prom::render`]).
//!   * `GET /trace` — the most recently published
//!     [`PipelineTrace`](dpr_telemetry::PipelineTrace) as JSON (404
//!     until one is published).
//!   * `GET /runs` — the recent published runs (id, wall-clock publish
//!     time, recovered sensor slugs) as a JSON array, newest last.
//!   * `GET /evidence/<sensor>` — the named sensor's
//!     [`EvidenceChain`](dpr_evidence::EvidenceChain) from the most
//!     recent run that recovered it, as JSON; 404s list known slugs.
//!   * `GET /profile` — the process-wide `dpr_prof` pool-profile
//!     snapshot as JSON.
//!   * `GET /healthz` — liveness as JSON: status, crate version, server
//!     uptime in seconds, and how many runs this process has published.
//! * [`MetricsServer`] — the two glued together with default
//!   [`ServerConfig`], preserving the original start/from_env/stop API.
//!
//! The server binds eagerly (so `127.0.0.1:0` callers can read the
//! ephemeral port from [`MetricsServer::addr`]). [`stop`]
//! (MetricsServer::stop) flips a flag, pokes the listener with a
//! loopback connection so a blocked `accept` wakes immediately, drains
//! already-accepted connections, and joins every thread.

use crate::http::{self, HeadError, RequestHead};
use crate::prom;
use crate::table::SessionTable;
use dpr_telemetry::{PipelineTrace, Registry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable holding the scrape bind address
/// (e.g. `127.0.0.1:9464`, or `127.0.0.1:0` for an ephemeral port).
pub const METRICS_ADDR_ENV: &str = "DPR_METRICS_ADDR";

/// The latest published pipeline trace, shared between the run that
/// produces traces and the server that serves them.
pub type SharedTrace = Arc<Mutex<Option<PipelineTrace>>>;

/// An empty [`SharedTrace`] cell.
pub fn shared_trace() -> SharedTrace {
    Arc::new(Mutex::new(None))
}

/// One published pipeline run, as listed by `GET /runs`.
///
/// The wall-clock timestamp lives only here, on the serving side — the
/// evidence ledger itself carries nothing but simulation time, so
/// attaching a publish time does not perturb live/replay identity.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Monotonic run id within this process (`run-1`, `run-2`, …).
    pub id: String,
    /// Publish wall-clock time, milliseconds since the UNIX epoch.
    pub at_ms: u64,
    /// The service job that produced this run (`job-000001`), `None`
    /// for runs published outside the job pipeline.
    pub job: Option<String>,
    /// Slugs of the sensors the run recovered.
    pub sensors: Vec<String>,
    /// The run's full evidence ledger (served per sensor, not in the
    /// `/runs` listing).
    pub ledger: dpr_evidence::EvidenceLedger,
}

/// What `GET /runs` serializes per run: everything but the ledger.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunListing {
    /// Monotonic run id within this process.
    pub id: String,
    /// Publish wall-clock time, milliseconds since the UNIX epoch.
    pub at_ms: u64,
    /// The service job that produced this run, if any.
    pub job: Option<String>,
    /// Slugs of the sensors the run recovered.
    pub sensors: Vec<String>,
}

/// The recent published runs, oldest first, bounded to a fixed capacity
/// (default [`RUNS_KEPT`]) so a long-running service cannot grow its run
/// history without limit. Every eviction bumps the `runs.evicted`
/// counter on the calling thread's telemetry registry.
#[derive(Debug)]
pub struct RunStore {
    runs: VecDeque<RunRecord>,
    next_id: u64,
    capacity: usize,
    evicted: u64,
}

/// How many published runs `GET /runs` retains by default.
pub const RUNS_KEPT: usize = 32;

impl Default for RunStore {
    fn default() -> Self {
        RunStore::with_capacity(RUNS_KEPT)
    }
}

impl RunStore {
    /// A store retaining at most `capacity` runs (floored to 1).
    pub fn with_capacity(capacity: usize) -> RunStore {
        RunStore {
            runs: VecDeque::new(),
            next_id: 0,
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a run, assigns its id, and evicts the oldest beyond the
    /// capacity. Returns the assigned id.
    pub fn publish(&mut self, at_ms: u64, ledger: dpr_evidence::EvidenceLedger) -> String {
        self.publish_for(at_ms, None, ledger)
    }

    /// [`publish`](RunStore::publish) with the originating service job
    /// attached, so `GET /runs` correlates runs back to `job-NNNNNN`.
    pub fn publish_for(
        &mut self,
        at_ms: u64,
        job: Option<String>,
        ledger: dpr_evidence::EvidenceLedger,
    ) -> String {
        self.next_id += 1;
        let id = format!("run-{}", self.next_id);
        self.runs.push_back(RunRecord {
            id: id.clone(),
            at_ms,
            job,
            sensors: ledger.chains.iter().map(|c| c.slug.clone()).collect(),
            ledger,
        });
        let mut dropped = 0;
        while self.runs.len() > self.capacity {
            self.runs.pop_front();
            dropped += 1;
        }
        if dropped > 0 {
            self.evicted += dropped;
            dpr_telemetry::counter("runs.evicted").inc(dropped);
        }
        id
    }

    /// The retained runs, oldest first.
    pub fn runs(&self) -> impl Iterator<Item = &RunRecord> {
        self.runs.iter()
    }

    /// How many runs are currently retained.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs are retained.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total runs ever published through this store (eviction does not
    /// decrease it). This is what `/healthz` reports as `runs_published`.
    pub fn published(&self) -> u64 {
        self.next_id
    }

    /// How many runs the capacity bound has evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The named sensor's chain from the most recent run that has it.
    pub fn chain(&self, slug: &str) -> Option<&dpr_evidence::EvidenceChain> {
        self.runs.iter().rev().find_map(|r| r.ledger.chain(slug))
    }

    /// Every sensor slug any retained run recovered, deduplicated.
    pub fn known_sensors(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .runs
            .iter()
            .flat_map(|r| r.sensors.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// What `GET /healthz` serializes: liveness plus enough identity to
/// tell *which* process and how long it has been up.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthStatus {
    /// Always `"ok"` while the server is answering.
    pub status: String,
    /// The `dpr-obs` crate version compiled into this binary.
    pub version: String,
    /// Whole seconds since this server started.
    pub uptime_secs: u64,
    /// Runs published through the shared [`RunStore`] so far.
    pub runs_published: u64,
}

/// The run history shared between publishers and the server.
pub type SharedRuns = Arc<Mutex<RunStore>>;

/// An empty [`SharedRuns`] store.
pub fn shared_runs() -> SharedRuns {
    Arc::new(Mutex::new(RunStore::default()))
}

/// Tuning for an [`HttpServer`]: pool width, session-table size, and
/// the three deadlines that keep hostile clients from wedging it.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Handler threads draining accepted connections.
    pub handler_threads: usize,
    /// Session-table slots; connection 65 of 64 gets an immediate 503.
    pub max_sessions: usize,
    /// Idle deadline before the sweeper shuts a connection down.
    pub idle_timeout: Duration,
    /// Socket read deadline (one blocked `read` at most this long).
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            handler_threads: 4,
            max_sessions: 64,
            idle_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// Maps a request path to its dot-free metric segment, so per-route
/// counters stay one taxonomy segment wide: `http.<route>.requests`.
/// Unknown paths collapse into `other`; requests whose head never
/// parsed are accounted under `invalid` by the server itself.
pub fn route_slug(path: &str) -> &'static str {
    match path {
        "/metrics" => "metrics",
        "/metrics/history" => "metrics_history",
        "/trace" => "trace",
        "/runs" => "runs",
        "/profile" => "profile",
        "/healthz" => "healthz",
        "/debug/snapshot" => "debug_snapshot",
        "/jobs" => "jobs",
        _ if path.starts_with("/evidence/") => "evidence",
        _ if path.starts_with("/jobs/") => {
            if path.ends_with("/events") {
                "job_events"
            } else if path.ends_with("/result") {
                "job_result"
            } else {
                "job_status"
            }
        }
        _ => "other",
    }
}

/// One connection being answered: the stream, the registry that counts
/// responses, and the request's identity (route slug + `req-NNNNNN`
/// correlation id). Every response written through [`Conn::respond`] /
/// [`Conn::respond_with`] bumps `serve.http_<status>` and the
/// per-route `http.<route>.status.<code>` counter, and accumulates
/// egress bytes into `http.bytes_out`.
pub struct Conn<'a> {
    stream: &'a mut TcpStream,
    registry: &'a Registry,
    route: &'static str,
    req_id: String,
    bytes_out: u64,
    last_status: u16,
    keepalive: Option<(&'a SessionTable, crate::table::SessionToken)>,
}

impl<'a> Conn<'a> {
    fn new(
        stream: &'a mut TcpStream,
        registry: &'a Registry,
        route: &'static str,
        req_id: String,
        keepalive: Option<(&'a SessionTable, crate::table::SessionToken)>,
    ) -> Conn<'a> {
        Conn {
            stream,
            registry,
            route,
            req_id,
            bytes_out: 0,
            last_status: 0,
            keepalive,
        }
    }

    fn count_status(&mut self, status: &str) {
        let code = http::status_code(status);
        self.registry
            .counter(&format!("serve.http_{code}"))
            .inc(1);
        self.registry
            .counter(&format!("http.{}.status.{code}", self.route))
            .inc(1);
        self.last_status = code.parse().unwrap_or(0);
    }

    /// Writes a complete response and counts its status code.
    pub fn respond(&mut self, status: &str, content_type: &str, body: &str) -> io::Result<()> {
        self.respond_with(status, content_type, &[], body)
    }

    /// [`Conn::respond`] with verbatim extra header lines
    /// (e.g. `Retry-After: 1`).
    pub fn respond_with(
        &mut self,
        status: &str,
        content_type: &str,
        extra_headers: &[&str],
        body: &str,
    ) -> io::Result<()> {
        self.count_status(status);
        let n = http::respond_with(self.stream, status, content_type, extra_headers, body)?;
        self.bytes_out += n;
        Ok(())
    }

    /// Starts a chunked response; the body follows through
    /// [`Conn::write_chunk`] and ends with [`Conn::finish_chunked`].
    pub fn start_chunked(
        &mut self,
        status: &str,
        content_type: &str,
        extra_headers: &[&str],
    ) -> io::Result<()> {
        self.count_status(status);
        let n = http::start_chunked(self.stream, status, content_type, extra_headers)?;
        self.bytes_out += n;
        Ok(())
    }

    /// Writes one chunk, counts its bytes, and refreshes the session's
    /// idle deadline so a healthy live stream is never swept.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        let n = http::write_chunk(self.stream, data)?;
        self.bytes_out += n;
        self.touch();
        Ok(())
    }

    /// Terminates a chunked response.
    pub fn finish_chunked(&mut self) -> io::Result<()> {
        let n = http::finish_chunked(self.stream)?;
        self.bytes_out += n;
        Ok(())
    }

    /// Refreshes this connection's idle deadline (no-op for
    /// connections served outside a session table).
    pub fn touch(&self) {
        if let Some((table, token)) = self.keepalive {
            table.touch(token);
        }
    }

    /// This request's correlation id (`req-NNNNNN`), for echoing into
    /// response bodies so clients can quote it back.
    pub fn req_id(&self) -> &str {
        &self.req_id
    }

    /// The metric segment this request was routed under.
    pub fn route(&self) -> &'static str {
        self.route
    }

    /// The underlying stream, for handlers that read a request body
    /// (wrap it in [`http::BodyReader`]).
    pub fn stream(&mut self) -> &mut TcpStream {
        self.stream
    }

    /// The registry this server records `serve.*` metrics into.
    pub fn registry(&self) -> &Registry {
        self.registry
    }
}

/// A request handler behind an [`HttpServer`]. Called once per parsed
/// request head; the handler writes exactly one response through the
/// [`Conn`] and may stream the body from [`Conn::stream`].
pub trait HttpHandler: Send + Sync {
    /// Answer one request. I/O errors are logged as `serve.io_errors`
    /// and close the connection; they must not panic.
    fn handle(&self, head: &RequestHead, conn: &mut Conn<'_>) -> io::Result<()>;
}

struct ServerShared {
    config: ServerConfig,
    table: SessionTable,
    queue: StdMutex<VecDeque<(crate::table::SessionToken, TcpStream)>>,
    ready: Condvar,
    stop: AtomicBool,
    registry: Arc<Registry>,
    handler: Arc<dyn HttpHandler>,
    next_req: AtomicU64,
}

/// Recover from a poisoned std mutex: the protected state (a queue of
/// connections) stays valid even if a handler thread panicked.
fn lock<'a, T>(mutex: &'a StdMutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A concurrent, bounded HTTP/1.1 server: acceptor thread, fixed
/// handler pool, idle sweeper, one response per connection.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` and starts serving `handler`. `name` prefixes the
    /// thread names (`<name>-accept`, `<name>-worker-N`, `<name>-sweep`);
    /// `registry` receives the `serve.*` metrics.
    pub fn start(
        addr: &str,
        name: &str,
        config: ServerConfig,
        handler: Arc<dyn HttpHandler>,
        registry: Arc<Registry>,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            table: SessionTable::new(config.max_sessions, config.idle_timeout),
            config,
            queue: StdMutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            registry,
            handler,
            next_req: AtomicU64::new(0),
        });
        let acceptor = std::thread::Builder::new()
            .name(format!("{name}-accept"))
            .spawn({
                let shared = Arc::clone(&shared);
                move || accept_loop(&listener, &shared)
            })?;
        let mut workers = Vec::with_capacity(shared.config.handler_threads.max(1));
        for i in 0..shared.config.handler_threads.max(1) {
            workers.push(
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn({
                        let shared = Arc::clone(&shared);
                        move || worker_loop(&shared)
                    })?,
            );
        }
        let sweeper = std::thread::Builder::new()
            .name(format!("{name}-sweep"))
            .spawn({
                let shared = Arc::clone(&shared);
                move || sweep_loop(&shared)
            })?;
        Ok(HttpServer {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            workers,
            sweeper: Some(sweeper),
        })
    }

    /// The bound address — with an `:0` bind, this is where the
    /// ephemeral port landed.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry `serve.*` metrics land in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Stops accepting, drains already-accepted connections, and joins
    /// every thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.acceptor.is_none() && self.workers.is_empty() && self.sweeper.is_none() {
            return;
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; an error just means the listener
        // already noticed the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Workers drain whatever the acceptor already queued, then see
        // the flag on the emptied queue and exit.
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            self.shared.ready.notify_all();
            let _ = handle.join();
        }
        if let Some(handle) = self.sweeper.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("table", &self.shared.table)
            .field("stopped", &self.shared.stop.load(Ordering::Relaxed))
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &ServerShared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        shared.registry.counter("serve.connections_accepted").inc(1);
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        match shared.table.claim(&stream) {
            Some(token) => {
                shared
                    .registry
                    .gauge("serve.sessions_open")
                    .set(shared.table.open() as i64);
                let depth = {
                    let mut queue = lock(&shared.queue);
                    queue.push_back((token, stream));
                    queue.len()
                };
                shared.registry.gauge("serve.queue_depth").set(depth as i64);
                shared.ready.notify_one();
            }
            None => {
                // Table full: the first backpressure point. Refuse
                // before reading a single byte.
                shared.registry.counter("serve.connections_refused").inc(1);
                shared.registry.counter("serve.http_503").inc(1);
                let _ = http::respond(
                    &mut stream,
                    "503 Service Unavailable",
                    "text/plain",
                    "session table full, try again\n",
                );
            }
        }
    }
}

fn worker_loop(shared: &ServerShared) {
    // Reused across every request this worker serves: head parsing does
    // no steady-state buffer allocation.
    let mut scratch = Vec::with_capacity(1024);
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    shared
                        .registry
                        .gauge("serve.queue_depth")
                        .set(queue.len() as i64);
                    break Some(job);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((token, stream)) = job else { break };
        serve_one(shared, token, stream, &mut scratch);
    }
}

fn serve_one(
    shared: &ServerShared,
    token: crate::table::SessionToken,
    mut stream: TcpStream,
    scratch: &mut Vec<u8>,
) {
    let registry = &shared.registry;
    let started = Instant::now();
    let req_id = format!(
        "req-{:06}",
        shared.next_req.fetch_add(1, Ordering::Relaxed) + 1
    );
    registry.gauge("http.requests_in_flight").add(1);
    match http::read_head(&mut stream, scratch) {
        Ok(head) => {
            shared.table.touch(token);
            registry.counter("serve.requests").inc(1);
            let route = route_slug(head.path());
            registry.counter(&format!("http.{route}.requests")).inc(1);
            let body_len = head.content_length().ok().flatten().unwrap_or(0);
            registry
                .counter("http.bytes_in")
                .inc(scratch.len() as u64 + body_len.saturating_sub(head.leftover.len() as u64));
            let _ctx = dpr_log::push_context("req_id", req_id.as_str());
            let mut conn = Conn::new(
                &mut stream,
                registry,
                route,
                req_id,
                Some((&shared.table, token)),
            );
            if shared.handler.handle(&head, &mut conn).is_err() {
                registry.counter("serve.io_errors").inc(1);
            }
            let status = conn.last_status;
            let bytes_out = conn.bytes_out;
            registry.counter("http.bytes_out").inc(bytes_out);
            let elapsed_us = started.elapsed().as_micros() as f64;
            registry.histogram("serve.request_us").record(elapsed_us);
            registry
                .histogram(&format!("http.{route}.latency_us"))
                .record(elapsed_us);
            if dpr_log::enabled(dpr_log::Level::Debug) {
                dpr_log::debug(
                    "http",
                    "request",
                    &[
                        ("method", head.method.as_str().into()),
                        ("path", head.path().into()),
                        ("route", route.into()),
                        ("status", u64::from(status).into()),
                        ("us", (elapsed_us as u64).into()),
                        ("bytes_out", bytes_out.into()),
                    ],
                );
            }
        }
        Err(HeadError::Closed) => {
            registry.counter("serve.closed_early").inc(1);
        }
        Err(HeadError::Timeout) => {
            registry.counter("serve.read_timeouts").inc(1);
            let mut conn = Conn::new(&mut stream, registry, "invalid", req_id, None);
            let _ = conn.respond(
                "408 Request Timeout",
                "text/plain",
                "request head did not arrive within the read deadline\n",
            );
        }
        Err(HeadError::TooLarge) => {
            let mut conn = Conn::new(&mut stream, registry, "invalid", req_id, None);
            let _ = conn.respond(
                "413 Content Too Large",
                "text/plain",
                "request head exceeds the size limit\n",
            );
        }
        Err(HeadError::Malformed(why)) => {
            let mut conn = Conn::new(&mut stream, registry, "invalid", req_id, None);
            let _ = conn.respond("400 Bad Request", "text/plain", &format!("{why}\n"));
        }
        Err(HeadError::Io(_)) => {
            registry.counter("serve.io_errors").inc(1);
        }
    }
    registry.gauge("http.requests_in_flight").add(-1);
    drop(stream);
    // A stale token means the sweeper evicted this session mid-serve;
    // it already counted the eviction.
    let _ = shared.table.release(token);
    registry
        .gauge("serve.sessions_open")
        .set(shared.table.open() as i64);
}

fn sweep_loop(shared: &ServerShared) {
    let quarter = shared.config.idle_timeout / 4;
    let interval = quarter
        .min(Duration::from_millis(250))
        .max(Duration::from_millis(5));
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::park_timeout(interval);
        let evicted = shared.table.sweep();
        if evicted > 0 {
            shared
                .registry
                .counter("serve.idle_closed")
                .inc(evicted as u64);
            shared
                .registry
                .gauge("serve.sessions_open")
                .set(shared.table.open() as i64);
        }
    }
}

/// The observability routes (`/metrics`, `/trace`, `/runs`,
/// `/evidence/<sensor>`, `/profile`, `/healthz`) as a reusable router:
/// the [`MetricsServer`]'s handler, and the fallback `dpr-serve`
/// delegates non-`/jobs` requests to.
pub struct ObsRouter {
    registry: Arc<Registry>,
    trace: SharedTrace,
    runs: SharedRuns,
    series: Option<Arc<dpr_series::Sampler>>,
    started: Instant,
}

/// The route list the 404 body advertises.
pub const OBS_ROUTES: &str =
    "/metrics /metrics/history /trace /runs /evidence/<sensor> /profile /healthz";

impl ObsRouter {
    /// A router serving `registry`, `trace`, and `runs`; uptime counts
    /// from now.
    pub fn new(registry: Arc<Registry>, trace: SharedTrace, runs: SharedRuns) -> ObsRouter {
        ObsRouter {
            registry,
            trace,
            runs,
            series: None,
            started: Instant::now(),
        }
    }

    /// Attaches a series sampler: `GET /metrics/history` serves its
    /// windowed rate/quantile series (404 without one).
    pub fn with_series(mut self, series: Arc<dpr_series::Sampler>) -> ObsRouter {
        self.series = Some(series);
        self
    }

    /// The attached series sampler, if any.
    pub fn series(&self) -> Option<&Arc<dpr_series::Sampler>> {
        self.series.as_ref()
    }

    /// The shared run store this router serves.
    pub fn runs(&self) -> &SharedRuns {
        &self.runs
    }

    /// Whole seconds since this router was created — what its
    /// `/healthz` reports as uptime, shared with wrapping routers.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Answers the request if its path is an observability route.
    /// Returns `Ok(false)` — with nothing written — when the path is
    /// not ours, so a wrapping router can 404 with its own route list.
    pub fn try_route(&self, head: &RequestHead, conn: &mut Conn<'_>) -> io::Result<bool> {
        let path = head.path();
        let known = matches!(
            path,
            "/metrics" | "/metrics/history" | "/trace" | "/runs" | "/profile" | "/healthz"
        ) || path.starts_with("/evidence/");
        if !known {
            return Ok(false);
        }
        if head.method != "GET" {
            conn.respond("405 Method Not Allowed", "text/plain", "GET only\n")?;
            return Ok(true);
        }
        if let Some(slug) = path.strip_prefix("/evidence/") {
            let store = self.runs.lock();
            match store.chain(slug) {
                Some(chain) => {
                    let body = dpr_telemetry::json::to_string(chain)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                    conn.respond("200 OK", "application/json", &body)?;
                }
                None => {
                    let known = store.known_sensors().join(" ");
                    conn.respond(
                        "404 Not Found",
                        "text/plain",
                        &format!("unknown sensor {slug:?}; known: {known}\n"),
                    )?;
                }
            }
            return Ok(true);
        }
        match path {
            "/metrics" => conn.respond(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &prom::render(&self.registry.snapshot()),
            )?,
            "/metrics/history" => match &self.series {
                Some(sampler) => {
                    let body = dpr_telemetry::json::to_string(&sampler.history())
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                    conn.respond("200 OK", "application/json", &body)?;
                }
                None => {
                    conn.respond(
                        "404 Not Found",
                        "text/plain",
                        "no series sampler is attached to this server\n",
                    )?;
                }
            },
            "/trace" => match self.trace.lock().clone() {
                Some(trace) => {
                    let body = dpr_telemetry::json::to_string(&trace)
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                    conn.respond("200 OK", "application/json", &body)?;
                }
                None => {
                    conn.respond("404 Not Found", "text/plain", "no trace published yet\n")?;
                }
            },
            "/runs" => {
                let listing: Vec<RunListing> = self
                    .runs
                    .lock()
                    .runs()
                    .map(|r| RunListing {
                        id: r.id.clone(),
                        at_ms: r.at_ms,
                        job: r.job.clone(),
                        sensors: r.sensors.clone(),
                    })
                    .collect();
                let body = dpr_telemetry::json::to_string(&listing)
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                conn.respond("200 OK", "application/json", &body)?;
            }
            "/profile" => {
                let body = dpr_telemetry::json::to_string(&dpr_prof::snapshot())
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                conn.respond("200 OK", "application/json", &body)?;
            }
            "/healthz" => {
                let health = HealthStatus {
                    status: "ok".to_string(),
                    version: env!("CARGO_PKG_VERSION").to_string(),
                    uptime_secs: self.started.elapsed().as_secs(),
                    runs_published: self.runs.lock().published(),
                };
                let body = dpr_telemetry::json::to_string(&health)
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                conn.respond("200 OK", "application/json", &body)?;
            }
            _ => unreachable!("known paths are matched above"),
        }
        Ok(true)
    }
}

impl HttpHandler for ObsRouter {
    fn handle(&self, head: &RequestHead, conn: &mut Conn<'_>) -> io::Result<()> {
        if !self.try_route(head, conn)? {
            conn.respond(
                "404 Not Found",
                "text/plain",
                &format!("routes: {OBS_ROUTES}\n"),
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ObsRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRouter")
            .field("uptime", &self.started.elapsed())
            .finish()
    }
}

/// A running scrape endpoint: [`ObsRouter`] behind an [`HttpServer`]
/// with default [`ServerConfig`]. Stops (and joins its threads) on
/// [`stop`](MetricsServer::stop) or drop.
pub struct MetricsServer {
    inner: HttpServer,
    sampler: Arc<dpr_series::Sampler>,
}

impl MetricsServer {
    /// Binds `addr` and starts serving `registry`, `trace`, and `runs`.
    /// A series sampler (interval/retention from the `DPR_SERIES_*`
    /// environment, no SLOs) is started alongside, so
    /// `GET /metrics/history` works on the standalone scrape server too.
    pub fn start(
        addr: &str,
        registry: Arc<Registry>,
        trace: SharedTrace,
        runs: SharedRuns,
    ) -> io::Result<MetricsServer> {
        let sampler = dpr_series::Sampler::start(
            Arc::clone(&registry),
            dpr_series::SeriesConfig::from_env(),
            Vec::new(),
        );
        let router = Arc::new(
            ObsRouter::new(Arc::clone(&registry), trace, runs).with_series(Arc::clone(&sampler)),
        );
        let inner =
            HttpServer::start(addr, "dpr-metrics", ServerConfig::default(), router, registry)?;
        Ok(MetricsServer { inner, sampler })
    }

    /// Starts a server on the `DPR_METRICS_ADDR` address, if the variable
    /// is set and non-empty. `Ok(None)` when unset.
    pub fn from_env(
        registry: Arc<Registry>,
        trace: SharedTrace,
        runs: SharedRuns,
    ) -> io::Result<Option<MetricsServer>> {
        match std::env::var(METRICS_ADDR_ENV) {
            Ok(addr) if !addr.trim().is_empty() => {
                MetricsServer::start(addr.trim(), registry, trace, runs).map(Some)
            }
            _ => Ok(None),
        }
    }

    /// The bound address — with an `:0` bind, this is where the ephemeral
    /// port landed.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// The series sampler behind `GET /metrics/history`.
    pub fn sampler(&self) -> &Arc<dpr_series::Sampler> {
        &self.sampler
    }

    /// Stops accepting, wakes the listener, joins the serve threads,
    /// and stops the series sampler.
    pub fn stop(self) {
        self.inner.stop();
        self.sampler.stop();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A minimal std TcpStream scrape client, shared with the
    /// integration tests via copy — kept here so unit tests exercise the
    /// full request path too.
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: dpr\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("http head");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_trace_and_health() {
        let registry = Arc::new(Registry::new());
        registry.counter("obs.test_hits").inc(3);
        let trace = shared_trace();
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Arc::clone(&trace),
            shared_runs(),
        )
        .expect("bind ephemeral");
        let addr = server.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let health: HealthStatus = dpr_telemetry::json::from_str(&body).expect("health json");
        assert_eq!(health.status, "ok");
        assert_eq!(health.version, env!("CARGO_PKG_VERSION"));
        assert_eq!(health.runs_published, 0);
        assert!(health.uptime_secs < 3600);

        // /profile always answers; the snapshot may or may not contain
        // calls depending on what else this test process ran.
        let (head, body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let profile: dpr_prof::ProfSnapshot =
            dpr_telemetry::json::from_str(&body).expect("profile json");
        assert!(profile.recent.len() <= 64);

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("obs_test_hits 3\n"));
        // The server's own request accounting lands in the same registry.
        assert!(body.contains("serve_requests"), "{body}");

        // /trace 404s until a trace is published…
        let (head, _) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 404"));
        // …then serves the latest one.
        *trace.lock() = Some(PipelineTrace::default());
        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"stages\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn serves_metrics_history() {
        let registry = Arc::new(Registry::new());
        registry.counter("obs.history_hits").inc(2);
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            shared_trace(),
            shared_runs(),
        )
        .expect("bind ephemeral");
        // The startup tick already saw the counter; force one more so
        // the zero-delta path is exercised over HTTP too.
        server.sampler().force_tick();
        let (head, body) = get(server.addr(), "/metrics/history");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let history: dpr_series::History =
            dpr_telemetry::json::from_str(&body).expect("history json");
        assert!(history.samples >= 2, "{history:?}");
        let series = history
            .counters
            .get("obs.history_hits")
            .expect("counter tracked");
        assert_eq!(series.first().map(|p| p.delta), Some(2), "{series:?}");
        assert!(history.slos.is_empty(), "standalone server has no SLOs");
        server.stop();
    }

    #[test]
    fn stop_unblocks_and_joins() {
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::new(Registry::new()),
            shared_trace(),
            shared_runs(),
        )
        .expect("bind");
        let addr = server.addr();
        server.stop();
        // The port is released once the threads exit: a fresh connection
        // either fails or is never served.
        let late = TcpStream::connect(addr);
        if let Ok(mut stream) = late {
            let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .and_then(|()| stream.read_to_string(&mut out).map(|_| ()));
            assert!(out.is_empty(), "stopped server answered: {out}");
        }
    }

    #[test]
    fn from_env_is_opt_in() {
        std::env::remove_var(METRICS_ADDR_ENV);
        let server =
            MetricsServer::from_env(Arc::new(Registry::new()), shared_trace(), shared_runs())
                .expect("no bind attempted");
        assert!(server.is_none());
    }

    #[test]
    fn run_store_keeps_the_most_recent_runs_and_serves_chains() {
        let mut store = RunStore::default();
        let mut ledger = dpr_evidence::EvidenceLedger::default();
        ledger.chains.push(dpr_evidence::EvidenceChain {
            sensor: "DID 0xF40D".into(),
            slug: "did-0xf40d".into(),
            screen: "Engine".into(),
            label: "Vehicle Speed".into(),
            kind: "formula".into(),
            formula: "X0".into(),
            match_score: Some(0.99),
            match_pairs: 40,
            samples: vec![],
            ocr: vec![],
            candidates: vec![],
            lineage: None,
        });
        for i in 0..(RUNS_KEPT + 3) {
            store.publish(i as u64, ledger.clone());
        }
        assert_eq!(store.len(), RUNS_KEPT);
        assert_eq!(store.evicted(), 3);
        // Oldest entries were evicted; ids keep counting.
        let ids: Vec<&str> = store.runs().map(|r| r.id.as_str()).collect();
        assert_eq!(ids[0], "run-4");
        assert_eq!(ids.last().copied(), Some(format!("run-{}", RUNS_KEPT + 3).as_str()));
        assert!(store.chain("did-0xf40d").is_some());
        assert!(store.chain("nope").is_none());
        assert_eq!(store.known_sensors(), vec!["did-0xf40d".to_string()]);
    }

    #[test]
    fn run_store_eviction_is_counted_on_the_scoped_registry() {
        let registry = Arc::new(Registry::new());
        let evicted = dpr_telemetry::scoped(Arc::clone(&registry), || {
            let mut store = RunStore::with_capacity(2);
            for i in 0..5 {
                store.publish(i, dpr_evidence::EvidenceLedger::default());
            }
            assert_eq!(store.len(), 2);
            store.evicted()
        });
        assert_eq!(evicted, 3);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters.get("runs.evicted").copied(), Some(3));
    }
}
