//! A std-only scrape endpoint: `std::net::TcpListener`, one handler
//! thread, no external dependencies.
//!
//! Routes:
//!
//! * `GET /metrics` — the registry's current [`MetricsSnapshot`] in
//!   Prometheus text exposition format ([`crate::prom::render`]).
//! * `GET /trace` — the most recently published
//!   [`PipelineTrace`](dpr_telemetry::PipelineTrace) as JSON (404 until
//!   one is published).
//! * `GET /runs` — the recent published runs (id, wall-clock publish
//!   time, recovered sensor slugs) as a JSON array, newest last.
//! * `GET /evidence/<sensor>` — the named sensor's
//!   [`EvidenceChain`](dpr_evidence::EvidenceChain) from the most recent
//!   run that recovered it, as JSON; 404s list the known slugs.
//! * `GET /profile` — the process-wide `dpr_prof` pool-profile snapshot
//!   (per-label scheduling aggregates plus recent `par_map` calls) as
//!   JSON.
//! * `GET /healthz` — liveness as JSON: status, crate version, server
//!   uptime in seconds, and how many runs this process has published.
//!
//! The server binds eagerly (so `127.0.0.1:0` callers can read the
//! ephemeral port from [`MetricsServer::addr`]) and serves from a single
//! named thread; a scrape is a snapshot + render, a few microseconds, so
//! one handler is plenty for Prometheus-style polling. [`stop`]
//! (MetricsServer::stop) flips a flag and pokes the listener with a
//! loopback connection so a blocked `accept` wakes immediately.

use crate::prom;
use dpr_telemetry::{PipelineTrace, Registry};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Environment variable holding the scrape bind address
/// (e.g. `127.0.0.1:9464`, or `127.0.0.1:0` for an ephemeral port).
pub const METRICS_ADDR_ENV: &str = "DPR_METRICS_ADDR";

/// The latest published pipeline trace, shared between the run that
/// produces traces and the server that serves them.
pub type SharedTrace = Arc<Mutex<Option<PipelineTrace>>>;

/// An empty [`SharedTrace`] cell.
pub fn shared_trace() -> SharedTrace {
    Arc::new(Mutex::new(None))
}

/// One published pipeline run, as listed by `GET /runs`.
///
/// The wall-clock timestamp lives only here, on the serving side — the
/// evidence ledger itself carries nothing but simulation time, so
/// attaching a publish time does not perturb live/replay identity.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Monotonic run id within this process (`run-1`, `run-2`, …).
    pub id: String,
    /// Publish wall-clock time, milliseconds since the UNIX epoch.
    pub at_ms: u64,
    /// Slugs of the sensors the run recovered.
    pub sensors: Vec<String>,
    /// The run's full evidence ledger (served per sensor, not in the
    /// `/runs` listing).
    pub ledger: dpr_evidence::EvidenceLedger,
}

/// What `GET /runs` serializes per run: everything but the ledger.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunListing {
    /// Monotonic run id within this process.
    pub id: String,
    /// Publish wall-clock time, milliseconds since the UNIX epoch.
    pub at_ms: u64,
    /// Slugs of the sensors the run recovered.
    pub sensors: Vec<String>,
}

/// The recent published runs (last [`RUNS_KEPT`]), oldest first.
#[derive(Debug, Default)]
pub struct RunStore {
    runs: Vec<RunRecord>,
    next_id: u64,
}

/// How many published runs `GET /runs` retains.
pub const RUNS_KEPT: usize = 32;

impl RunStore {
    /// Appends a run, assigns its id, and drops the oldest beyond
    /// [`RUNS_KEPT`]. Returns the assigned id.
    pub fn publish(&mut self, at_ms: u64, ledger: dpr_evidence::EvidenceLedger) -> String {
        self.next_id += 1;
        let id = format!("run-{}", self.next_id);
        self.runs.push(RunRecord {
            id: id.clone(),
            at_ms,
            sensors: ledger.chains.iter().map(|c| c.slug.clone()).collect(),
            ledger,
        });
        if self.runs.len() > RUNS_KEPT {
            let excess = self.runs.len() - RUNS_KEPT;
            self.runs.drain(..excess);
        }
        id
    }

    /// The retained runs, oldest first.
    pub fn runs(&self) -> &[RunRecord] {
        &self.runs
    }

    /// Total runs ever published through this store (eviction beyond
    /// [`RUNS_KEPT`] does not decrease it). This is what `/healthz`
    /// reports as `runs_published`.
    pub fn published(&self) -> u64 {
        self.next_id
    }

    /// The named sensor's chain from the most recent run that has it.
    pub fn chain(&self, slug: &str) -> Option<&dpr_evidence::EvidenceChain> {
        self.runs.iter().rev().find_map(|r| r.ledger.chain(slug))
    }

    /// Every sensor slug any retained run recovered, deduplicated.
    pub fn known_sensors(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .runs
            .iter()
            .flat_map(|r| r.sensors.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// What `GET /healthz` serializes: liveness plus enough identity to
/// tell *which* process and how long it has been up.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthStatus {
    /// Always `"ok"` while the server is answering.
    pub status: String,
    /// The `dpr-obs` crate version compiled into this binary.
    pub version: String,
    /// Whole seconds since this server started.
    pub uptime_secs: u64,
    /// Runs published through the shared [`RunStore`] so far.
    pub runs_published: u64,
}

/// The run history shared between publishers and the server.
pub type SharedRuns = Arc<Mutex<RunStore>>;

/// An empty [`SharedRuns`] store.
pub fn shared_runs() -> SharedRuns {
    Arc::new(Mutex::new(RunStore::default()))
}

/// A running scrape endpoint. Stops (and joins its thread) on
/// [`stop`](MetricsServer::stop) or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts serving `registry`, `trace`, and `runs`.
    pub fn start(
        addr: &str,
        registry: Arc<Registry>,
        trace: SharedTrace,
        runs: SharedRuns,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("dpr-metrics".to_string())
            .spawn(move || accept_loop(listener, registry, trace, runs, stop_flag, started))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// Starts a server on the `DPR_METRICS_ADDR` address, if the variable
    /// is set and non-empty. `Ok(None)` when unset.
    pub fn from_env(
        registry: Arc<Registry>,
        trace: SharedTrace,
        runs: SharedRuns,
    ) -> io::Result<Option<MetricsServer>> {
        match std::env::var(METRICS_ADDR_ENV) {
            Ok(addr) if !addr.trim().is_empty() => {
                MetricsServer::start(addr.trim(), registry, trace, runs).map(Some)
            }
            _ => Ok(None),
        }
    }

    /// The bound address — with an `:0` bind, this is where the ephemeral
    /// port landed.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the listener, and joins the serve thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; an error just means the listener
        // already noticed the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    trace: SharedTrace,
    runs: SharedRuns,
    stop: Arc<AtomicBool>,
    started: Instant,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A misbehaving client must not wedge the endpoint.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_connection(stream, &registry, &trace, &runs, started);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &Registry,
    trace: &SharedTrace,
    runs: &SharedRuns,
    started: Instant,
) -> io::Result<()> {
    let request = read_request_head(&mut stream)?;
    let mut parts = request.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    let path = target.split('?').next().unwrap_or("");
    if let Some(slug) = path.strip_prefix("/evidence/") {
        let store = runs.lock();
        return match store.chain(slug) {
            Some(chain) => {
                let body = dpr_telemetry::json::to_string(chain)
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                respond(&mut stream, "200 OK", "application/json", &body)
            }
            None => {
                let known = store.known_sensors().join(" ");
                respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    &format!("unknown sensor {slug:?}; known: {known}\n"),
                )
            }
        };
    }
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &prom::render(&registry.snapshot()),
        ),
        "/trace" => match trace.lock().clone() {
            Some(trace) => {
                let body = dpr_telemetry::json::to_string(&trace)
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                respond(&mut stream, "200 OK", "application/json", &body)
            }
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "no trace published yet\n",
            ),
        },
        "/runs" => {
            let listing: Vec<RunListing> = runs
                .lock()
                .runs()
                .iter()
                .map(|r| RunListing {
                    id: r.id.clone(),
                    at_ms: r.at_ms,
                    sensors: r.sensors.clone(),
                })
                .collect();
            let body = dpr_telemetry::json::to_string(&listing)
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/profile" => {
            let body = dpr_telemetry::json::to_string(&dpr_prof::snapshot())
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/healthz" => {
            let health = HealthStatus {
                status: "ok".to_string(),
                version: env!("CARGO_PKG_VERSION").to_string(),
                uptime_secs: started.elapsed().as_secs(),
                runs_published: runs.lock().published(),
            };
            let body = dpr_telemetry::json::to_string(&health)
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "routes: /metrics /trace /runs /evidence/<sensor> /profile /healthz\n",
        ),
    }
}

/// Reads up to the end of the request head (`\r\n\r\n`). The routes are
/// all bodyless GETs, so the head is the whole request.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal std TcpStream scrape client, shared with the
    /// integration tests via copy — kept here so unit tests exercise the
    /// full request path too.
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: dpr\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("http head");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_trace_and_health() {
        let registry = Arc::new(Registry::new());
        registry.counter("obs.test_hits").inc(3);
        let trace = shared_trace();
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Arc::clone(&trace),
            shared_runs(),
        )
        .expect("bind ephemeral");
        let addr = server.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let health: HealthStatus = dpr_telemetry::json::from_str(&body).expect("health json");
        assert_eq!(health.status, "ok");
        assert_eq!(health.version, env!("CARGO_PKG_VERSION"));
        assert_eq!(health.runs_published, 0);
        assert!(health.uptime_secs < 3600);

        // /profile always answers; the snapshot may or may not contain
        // calls depending on what else this test process ran.
        let (head, body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let profile: dpr_prof::ProfSnapshot =
            dpr_telemetry::json::from_str(&body).expect("profile json");
        assert!(profile.recent.len() <= 64);

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("obs_test_hits 3\n"));

        // /trace 404s until a trace is published…
        let (head, _) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 404"));
        // …then serves the latest one.
        *trace.lock() = Some(PipelineTrace::default());
        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"stages\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn stop_unblocks_and_joins() {
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::new(Registry::new()),
            shared_trace(),
            shared_runs(),
        )
        .expect("bind");
        let addr = server.addr();
        server.stop();
        // The port is released once the thread exits: a fresh connection
        // either fails or is never served.
        let late = TcpStream::connect(addr);
        if let Ok(mut stream) = late {
            let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .and_then(|()| stream.read_to_string(&mut out).map(|_| ()));
            assert!(out.is_empty(), "stopped server answered: {out}");
        }
    }

    #[test]
    fn from_env_is_opt_in() {
        std::env::remove_var(METRICS_ADDR_ENV);
        let server =
            MetricsServer::from_env(Arc::new(Registry::new()), shared_trace(), shared_runs())
                .expect("no bind attempted");
        assert!(server.is_none());
    }

    #[test]
    fn run_store_keeps_the_most_recent_runs_and_serves_chains() {
        let mut store = RunStore::default();
        let mut ledger = dpr_evidence::EvidenceLedger::default();
        ledger.chains.push(dpr_evidence::EvidenceChain {
            sensor: "DID 0xF40D".into(),
            slug: "did-0xf40d".into(),
            screen: "Engine".into(),
            label: "Vehicle Speed".into(),
            kind: "formula".into(),
            formula: "X0".into(),
            match_score: Some(0.99),
            match_pairs: 40,
            samples: vec![],
            ocr: vec![],
            candidates: vec![],
            lineage: None,
        });
        for i in 0..(RUNS_KEPT + 3) {
            store.publish(i as u64, ledger.clone());
        }
        assert_eq!(store.runs().len(), RUNS_KEPT);
        // Oldest entries were evicted; ids keep counting.
        assert_eq!(store.runs()[0].id, "run-4");
        assert_eq!(store.runs().last().unwrap().id, format!("run-{}", RUNS_KEPT + 3));
        assert!(store.chain("did-0xf40d").is_some());
        assert!(store.chain("nope").is_none());
        assert_eq!(store.known_sensors(), vec!["did-0xf40d".to_string()]);
    }
}
