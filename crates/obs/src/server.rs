//! A std-only scrape endpoint: `std::net::TcpListener`, one handler
//! thread, no external dependencies.
//!
//! Routes:
//!
//! * `GET /metrics` — the registry's current [`MetricsSnapshot`] in
//!   Prometheus text exposition format ([`crate::prom::render`]).
//! * `GET /trace` — the most recently published
//!   [`PipelineTrace`](dpr_telemetry::PipelineTrace) as JSON (404 until
//!   one is published).
//! * `GET /healthz` — `ok`, for liveness probes.
//!
//! The server binds eagerly (so `127.0.0.1:0` callers can read the
//! ephemeral port from [`MetricsServer::addr`]) and serves from a single
//! named thread; a scrape is a snapshot + render, a few microseconds, so
//! one handler is plenty for Prometheus-style polling. [`stop`]
//! (MetricsServer::stop) flips a flag and pokes the listener with a
//! loopback connection so a blocked `accept` wakes immediately.

use crate::prom;
use dpr_telemetry::{PipelineTrace, Registry};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable holding the scrape bind address
/// (e.g. `127.0.0.1:9464`, or `127.0.0.1:0` for an ephemeral port).
pub const METRICS_ADDR_ENV: &str = "DPR_METRICS_ADDR";

/// The latest published pipeline trace, shared between the run that
/// produces traces and the server that serves them.
pub type SharedTrace = Arc<Mutex<Option<PipelineTrace>>>;

/// An empty [`SharedTrace`] cell.
pub fn shared_trace() -> SharedTrace {
    Arc::new(Mutex::new(None))
}

/// A running scrape endpoint. Stops (and joins its thread) on
/// [`stop`](MetricsServer::stop) or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts serving `registry` and `trace`.
    pub fn start(
        addr: &str,
        registry: Arc<Registry>,
        trace: SharedTrace,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dpr-metrics".to_string())
            .spawn(move || accept_loop(listener, registry, trace, stop_flag))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// Starts a server on the `DPR_METRICS_ADDR` address, if the variable
    /// is set and non-empty. `Ok(None)` when unset.
    pub fn from_env(
        registry: Arc<Registry>,
        trace: SharedTrace,
    ) -> io::Result<Option<MetricsServer>> {
        match std::env::var(METRICS_ADDR_ENV) {
            Ok(addr) if !addr.trim().is_empty() => {
                MetricsServer::start(addr.trim(), registry, trace).map(Some)
            }
            _ => Ok(None),
        }
    }

    /// The bound address — with an `:0` bind, this is where the ephemeral
    /// port landed.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the listener, and joins the serve thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; an error just means the listener
        // already noticed the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    trace: SharedTrace,
    stop: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A misbehaving client must not wedge the endpoint.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_connection(stream, &registry, &trace);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &Registry,
    trace: &SharedTrace,
) -> io::Result<()> {
    let request = read_request_head(&mut stream)?;
    let mut parts = request.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    let path = target.split('?').next().unwrap_or("");
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &prom::render(&registry.snapshot()),
        ),
        "/trace" => match trace.lock().clone() {
            Some(trace) => {
                let body = dpr_telemetry::json::to_string(&trace)
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                respond(&mut stream, "200 OK", "application/json", &body)
            }
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "no trace published yet\n",
            ),
        },
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "routes: /metrics /trace /healthz\n",
        ),
    }
}

/// Reads up to the end of the request head (`\r\n\r\n`). The routes are
/// all bodyless GETs, so the head is the whole request.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal std TcpStream scrape client, shared with the
    /// integration tests via copy — kept here so unit tests exercise the
    /// full request path too.
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: dpr\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("http head");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_trace_and_health() {
        let registry = Arc::new(Registry::new());
        registry.counter("obs.test_hits").inc(3);
        let trace = shared_trace();
        let server =
            MetricsServer::start("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&trace))
                .expect("bind ephemeral");
        let addr = server.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("obs_test_hits 3\n"));

        // /trace 404s until a trace is published…
        let (head, _) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 404"));
        // …then serves the latest one.
        *trace.lock() = Some(PipelineTrace::default());
        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"stages\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn stop_unblocks_and_joins() {
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::new(Registry::new()),
            shared_trace(),
        )
        .expect("bind");
        let addr = server.addr();
        server.stop();
        // The port is released once the thread exits: a fresh connection
        // either fails or is never served.
        let late = TcpStream::connect(addr);
        if let Ok(mut stream) = late {
            let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .and_then(|()| stream.read_to_string(&mut out).map(|_| ()));
            assert!(out.is_empty(), "stopped server answered: {out}");
        }
    }

    #[test]
    fn from_env_is_opt_in() {
        std::env::remove_var(METRICS_ADDR_ENV);
        let server = MetricsServer::from_env(Arc::new(Registry::new()), shared_trace())
            .expect("no bind attempted");
        assert!(server.is_none());
    }
}
