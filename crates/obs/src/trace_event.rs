//! Chrome Trace Event Format export.
//!
//! [`TraceExport`] is a [`Sink`] that buffers every closed span and, on
//! [`finish`](TraceExport::finish), writes a JSON object loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!
//! ```json
//! {"traceEvents": [
//!   {"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"gp-worker-0"}},
//!   {"name":"pipeline","cat":"span","ph":"X","pid":1,"tid":1,"ts":12,"dur":44620}
//! ], "displayTimeUnit": "ms"}
//! ```
//!
//! Each span becomes one *complete* event (`ph:"X"`): `ts` is the span's
//! start in microseconds on the recording registry's timeline
//! ([`Registry::epoch`](dpr_telemetry::Registry::epoch)), `dur` its wall
//! time, and `tid` the stable thread id from
//! [`dpr_telemetry::thread_id`] — so `dpr-par` workers render as their
//! own labeled rows (`gp-worker-N` metadata events carry the names).
//!
//! On top of the span rows, [`render`](TraceExport::render) lays one
//! *counter* track (`ph:"C"`, named `pool utilization %`) built from the
//! `dpr_prof` profile store: every parallel `par_map` call recorded
//! after this exporter was created contributes a step up to its
//! utilization percentage at call start and back to zero at call end,
//! keyed by its profile label (e.g. `gp.score`) — so worker
//! efficiency is visible directly above the `par.chunk` rows it
//! explains. Profiles carry `epoch_start_us` on the same registry
//! timeline as spans, which is what makes the overlay line up.

use dpr_telemetry::json::Value;
use dpr_telemetry::{Sink, SpanRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Environment variable naming the trace-event output file. When set,
/// [`TraceExport::from_env`] returns an exporter writing there.
pub const TRACE_EVENTS_ENV: &str = "DPR_TRACE_EVENTS";

#[derive(Debug, Clone)]
struct CompleteEvent {
    name: String,
    path: String,
    tid: u64,
    thread: Option<String>,
    ts_us: u64,
    dur_us: u64,
}

/// A span sink that accumulates Chrome Trace Event Format events and
/// writes them as one JSON document on [`finish`](TraceExport::finish).
pub struct TraceExport {
    path: PathBuf,
    events: Mutex<Vec<CompleteEvent>>,
    /// Profile-store sequence number at construction; only `par_map`
    /// calls recorded after it belong to this export's timeline.
    prof_seq_floor: u64,
}

impl TraceExport {
    /// An exporter that will write to `path` on finish.
    pub fn new(path: impl Into<PathBuf>) -> TraceExport {
        TraceExport {
            path: path.into(),
            events: Mutex::new(Vec::new()),
            prof_seq_floor: dpr_prof::snapshot().total_calls,
        }
    }

    /// An exporter targeting the `DPR_TRACE_EVENTS` path, if the variable
    /// is set and non-empty.
    pub fn from_env() -> Option<std::sync::Arc<TraceExport>> {
        std::env::var(TRACE_EVENTS_ENV)
            .ok()
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .map(|p| std::sync::Arc::new(TraceExport::new(p)))
    }

    /// The output path this exporter writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of span events buffered so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no span has been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Serializes the buffered events (plus process/thread-name metadata
    /// events) and writes the trace file. Can be called again after more
    /// spans arrive; each call rewrites the whole file.
    pub fn finish(&self) -> io::Result<()> {
        let json = self.render();
        std::fs::write(&self.path, json)
    }

    /// The trace document as a JSON string (what [`finish`] writes).
    pub fn render(&self) -> String {
        let mut events = self.events.lock().clone();
        events.sort_by_key(|e| (e.tid, e.ts_us));
        let pid = u64::from(std::process::id());

        // One thread_name metadata event per distinct tid, so Perfetto
        // labels the rows (`gp-worker-N` for pool workers).
        let mut names: BTreeMap<u64, String> = BTreeMap::new();
        for event in &events {
            names
                .entry(event.tid)
                .or_insert_with(|| match &event.thread {
                    Some(name) => name.clone(),
                    None => format!("thread-{}", event.tid),
                });
        }

        let mut out: Vec<Value> = Vec::with_capacity(events.len() + names.len() + 1);
        out.push(Value::Object(vec![
            ("name".into(), Value::Str("process_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::UInt(pid)),
            (
                "args".into(),
                Value::Object(vec![("name".into(), Value::Str("dp-reverser".into()))]),
            ),
        ]));
        for (tid, name) in &names {
            out.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(pid)),
                ("tid".into(), Value::UInt(*tid)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(name.clone()))]),
                ),
            ]));
        }
        for event in &events {
            out.push(Value::Object(vec![
                ("name".into(), Value::Str(event.name.clone())),
                ("cat".into(), Value::Str("span".into())),
                ("ph".into(), Value::Str("X".into())),
                ("pid".into(), Value::UInt(pid)),
                ("tid".into(), Value::UInt(event.tid)),
                ("ts".into(), Value::UInt(event.ts_us)),
                ("dur".into(), Value::UInt(event.dur_us)),
                (
                    "args".into(),
                    Value::Object(vec![("path".into(), Value::Str(event.path.clone()))]),
                ),
            ]));
        }
        out.extend(utilization_counter_events(pid, self.prof_seq_floor));

        Value::Object(vec![
            ("traceEvents".into(), Value::Array(out)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
        .to_json()
    }
}

/// Builds the `pool utilization %` counter track (`ph:"C"`) from the
/// profile store: two events per parallel call — the utilization
/// percentage at call start, zero at call end — keyed by profile label
/// so each `par_map` site gets its own series.
fn utilization_counter_events(pid: u64, seq_floor: u64) -> Vec<Value> {
    let snapshot = dpr_prof::snapshot();
    let mut out = Vec::new();
    for call in snapshot
        .recent
        .iter()
        .filter(|c| c.seq > seq_floor && !c.inline)
    {
        let percent = (call.utilization() * 100.0).round() as u64;
        let end_ts = call.epoch_start_us + call.wall_us;
        for (ts, value) in [(call.epoch_start_us, percent), (end_ts, 0)] {
            out.push(Value::Object(vec![
                ("name".into(), Value::Str("pool utilization %".into())),
                ("cat".into(), Value::Str("prof".into())),
                ("ph".into(), Value::Str("C".into())),
                ("pid".into(), Value::UInt(pid)),
                ("ts".into(), Value::UInt(ts)),
                (
                    "args".into(),
                    Value::Object(vec![(call.label.clone(), Value::UInt(value))]),
                ),
            ]));
        }
    }
    out
}

impl Sink for TraceExport {
    fn span_closed(&self, record: &SpanRecord) {
        self.events.lock().push(CompleteEvent {
            name: record.name.to_string(),
            path: record.path.clone(),
            tid: record.tid,
            thread: record.thread.clone(),
            ts_us: record.start_us,
            dur_us: record.wall.as_micros() as u64,
        });
    }
}

impl std::fmt::Debug for TraceExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceExport")
            .field("path", &self.path)
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_telemetry::json;
    use std::time::Duration;

    fn record(name: &'static str, path: &str, tid: u64, thread: Option<&str>) -> SpanRecord {
        SpanRecord {
            name,
            path: path.to_string(),
            depth: path.split('.').count(),
            wall: Duration::from_micros(500),
            start_us: 100 * tid,
            tid,
            thread: thread.map(str::to_string),
        }
    }

    #[test]
    fn renders_complete_events_with_thread_metadata() {
        let export = TraceExport::new("/dev/null");
        export.span_closed(&record("pipeline", "pipeline", 1, None));
        export.span_closed(&record("chunk", "par.chunk", 2, Some("gp-worker-0")));
        export.span_closed(&record("chunk", "par.chunk", 3, Some("gp-worker-1")));

        let doc = json::parse(&export.render()).expect("valid JSON");
        let Value::Object(entries) = doc else {
            panic!("expected object")
        };
        let events = entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let Value::Array(events) = events else {
            panic!("expected array")
        };

        let field = |e: &Value, key: &str| -> Option<Value> {
            let Value::Object(entries) = e else { return None };
            entries.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
        };

        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| field(e, "ph") == Some(Value::Str("X".into())))
            .collect();
        assert_eq!(complete.len(), 3);
        let tids: std::collections::BTreeSet<u64> = complete
            .iter()
            .filter_map(|e| match field(e, "tid") {
                Some(Value::UInt(n)) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(tids, [1, 2, 3].into());

        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| field(e, "name") == Some(Value::Str("thread_name".into())))
            .collect();
        assert_eq!(metas.len(), 3, "one thread_name per tid");
        let labels: Vec<String> = metas
            .iter()
            .filter_map(|e| match field(e, "args") {
                Some(Value::Object(args)) => args.iter().find_map(|(k, v)| match v {
                    Value::Str(s) if k == "name" => Some(s.clone()),
                    _ => None,
                }),
                _ => None,
            })
            .collect();
        assert!(labels.contains(&"gp-worker-0".to_string()));
        assert!(labels.contains(&"gp-worker-1".to_string()));
        assert!(labels.contains(&"thread-1".to_string()));
    }

    #[test]
    fn profiled_calls_render_as_a_utilization_counter_track() {
        use dpr_prof::{CallProfile, WorkerStats};
        use std::time::Instant;

        // Floor captured first: only calls recorded after this exporter
        // exists show up in its counter track.
        let export = TraceExport::new("/dev/null");
        export.span_closed(&record("chunk", "par.chunk", 2, Some("gp-worker-0")));
        dpr_prof::record_call(
            CallProfile {
                label: "trace.case".into(),
                epoch_start_us: 250,
                wall_us: 1000,
                items: 64,
                chunk_size: 8,
                chunks: 8,
                workers: vec![
                    WorkerStats {
                        worker: 0,
                        busy_us: 900,
                        idle_us: 100,
                        chunks: 4,
                        items: 32,
                        ..WorkerStats::default()
                    },
                    WorkerStats {
                        worker: 1,
                        busy_us: 700,
                        idle_us: 300,
                        chunks: 4,
                        items: 32,
                        ..WorkerStats::default()
                    },
                ],
                ..CallProfile::default()
            },
            Instant::now(),
        );

        let doc = json::parse(&export.render()).expect("valid JSON");
        let Value::Object(entries) = doc else {
            panic!("expected object")
        };
        let Some((_, Value::Array(events))) =
            entries.iter().find(|(k, _)| k == "traceEvents")
        else {
            panic!("expected traceEvents array")
        };
        let counters: Vec<_> = events
            .iter()
            .filter_map(|e| {
                let Value::Object(fields) = e else { return None };
                let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                if get("ph") != Some(&Value::Str("C".into())) {
                    return None;
                }
                let Some(Value::Object(args)) = get("args") else {
                    return None;
                };
                args.iter()
                    .find(|(k, _)| k == "trace.case")
                    .and_then(|(_, v)| match v {
                        Value::UInt(n) => Some((get("ts").cloned(), *n)),
                        _ => None,
                    })
            })
            .collect();
        // 80% utilization at ts 250, back to 0 at ts 1250.
        assert_eq!(
            counters,
            vec![
                (Some(Value::UInt(250)), 80),
                (Some(Value::UInt(1250)), 0)
            ]
        );
    }

    #[test]
    fn from_env_requires_nonempty_path() {
        // Not set in the test environment by default.
        std::env::remove_var(TRACE_EVENTS_ENV);
        assert!(TraceExport::from_env().is_none());
    }
}
