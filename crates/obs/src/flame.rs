//! Flamegraph-shaped aggregation of span records.
//!
//! [`aggregate`] folds a run's [`SpanRecord`]s into per-path statistics:
//! call count, total wall time, and *self* time (total minus the time
//! spent in recorded child spans). [`Profile::folded`] renders
//! inferno-compatible folded stack lines (`frame;frame;frame self_us`)
//! that `inferno-flamegraph` or speedscope can turn into an SVG, and
//! [`Profile::report`] renders a self-time-sorted text table for quick
//! terminal triage.
//!
//! Child attribution uses each record's own name and nesting depth, not
//! string splitting, so span names that contain dots (`gp.fit`) attribute
//! correctly; only the cosmetic folded output splits frames on `.`.

use dpr_telemetry::summary::format_us;
use dpr_telemetry::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated timing for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Number of spans closed at this path.
    pub count: u64,
    /// Total wall time across those spans, in microseconds.
    pub total_us: u64,
    /// Wall time of direct child spans, in microseconds.
    pub child_us: u64,
}

impl PathStat {
    /// Time spent at this path itself, excluding recorded children.
    /// Saturating: concurrent or torn children can nominally exceed the
    /// parent's wall time.
    pub fn self_us(&self) -> u64 {
        self.total_us.saturating_sub(self.child_us)
    }
}

/// A per-path profile of one run, keyed by dotted span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    stats: BTreeMap<String, PathStat>,
}

/// Builds a [`Profile`] from closed-span records (e.g. a
/// [`Collector`](dpr_telemetry::Collector)'s contents).
pub fn aggregate<'a, I>(records: I) -> Profile
where
    I: IntoIterator<Item = &'a SpanRecord>,
{
    let mut stats: BTreeMap<String, PathStat> = BTreeMap::new();
    for record in records {
        let wall_us = record.wall.as_micros() as u64;
        let stat = stats.entry(record.path.clone()).or_default();
        stat.count += 1;
        stat.total_us += wall_us;
        // Attribute this span's wall time to its parent's child bucket.
        // The parent path is the record's path minus ".<name>"; a
        // depth-1 span has no parent.
        if record.depth > 1 && record.path.len() > record.name.len() {
            let parent_len = record.path.len() - record.name.len() - 1;
            let parent = record.path[..parent_len].to_string();
            stats.entry(parent).or_default().child_us += wall_us;
        }
    }
    Profile { stats }
}

impl Profile {
    /// The aggregated stats, keyed by dotted path.
    pub fn stats(&self) -> &BTreeMap<String, PathStat> {
        &self.stats
    }

    /// The stat for one path, if any span closed there.
    pub fn stat(&self, path: &str) -> Option<&PathStat> {
        self.stats.get(path)
    }

    /// Whether the profile saw no spans.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Inferno-compatible folded stack lines: one `a;b;c self_us` line
    /// per path with nonzero self time. Frames split on `.`, so a span
    /// named `gp.fit` renders as two cosmetic frames.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, stat) in &self.stats {
            let self_us = stat.self_us();
            if self_us == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {}", path.replace('.', ";"), self_us);
        }
        out
    }

    /// A text profile: paths sorted by self time (descending), with call
    /// counts, total/self wall time, and each path's share of the run's
    /// total self time.
    pub fn report(&self) -> String {
        let mut rows: Vec<(&String, &PathStat)> = self.stats.iter().collect();
        rows.sort_by(|a, b| b.1.self_us().cmp(&a.1.self_us()).then(a.0.cmp(b.0)));
        let run_self_us: u64 = rows.iter().map(|(_, s)| s.self_us()).sum();
        let width = rows.iter().map(|(p, _)| p.len()).max().unwrap_or(4).max(4);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<width$}  {:>8}  {:>10}  {:>10}  {:>6}",
            "path", "count", "total", "self", "self%"
        );
        for (path, stat) in rows {
            let share = if run_self_us == 0 {
                0.0
            } else {
                stat.self_us() as f64 / run_self_us as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:<width$}  {:>8}  {:>10}  {:>10}  {:>5.1}%",
                path,
                stat.count,
                format_us(stat.total_us),
                format_us(stat.self_us()),
                share,
            );
        }
        let _ = writeln!(
            out,
            "{:<width$}  {:>8}  {:>10}  {:>10}  100.0%",
            "(run)",
            "",
            "",
            format_us(run_self_us),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn record(name: &'static str, path: &str, wall_us: u64) -> SpanRecord {
        SpanRecord {
            name,
            path: path.to_string(),
            depth: path.split('.').count(),
            wall: Duration::from_micros(wall_us),
            start_us: 0,
            tid: 1,
            thread: None,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let records = vec![
            record("ocr", "pipeline.ocr", 300),
            record("gp", "pipeline.gp", 600),
            record("pipeline", "pipeline", 1000),
        ];
        let profile = aggregate(&records);
        let root = profile.stat("pipeline").expect("root");
        assert_eq!(root.total_us, 1000);
        assert_eq!(root.child_us, 900);
        assert_eq!(root.self_us(), 100);
        assert_eq!(profile.stat("pipeline.ocr").unwrap().self_us(), 300);
    }

    #[test]
    fn dotted_span_names_attribute_to_the_right_parent() {
        // A span *named* "gp.fit" nested under "pipeline": its parent is
        // "pipeline", not a phantom "pipeline.gp".
        let records = vec![
            record("gp.fit", "pipeline.gp.fit", 400),
            record("pipeline", "pipeline", 500),
        ];
        let profile = aggregate(&records);
        assert_eq!(profile.stat("pipeline").unwrap().child_us, 400);
        assert_eq!(profile.stat("pipeline").unwrap().self_us(), 100);
        assert!(profile.stat("pipeline.gp").is_none());
    }

    #[test]
    fn folded_lines_use_semicolons_and_self_time() {
        let records = vec![
            record("ocr", "pipeline.ocr", 300),
            record("pipeline", "pipeline", 1000),
        ];
        let folded = aggregate(&records).folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"pipeline 700"));
        assert!(lines.contains(&"pipeline;ocr 300"));
    }

    #[test]
    fn report_sorts_by_self_time_and_sums_shares() {
        let records = vec![
            record("fast", "run.fast", 100),
            record("slow", "run.slow", 900),
            record("run", "run", 1000),
        ];
        let report = aggregate(&records).report();
        let slow_at = report.find("run.slow").expect("slow row");
        let fast_at = report.find("run.fast").expect("fast row");
        assert!(slow_at < fast_at, "slowest path first:\n{report}");
        assert!(report.contains("self%"));
    }

    #[test]
    fn saturates_when_children_exceed_parent() {
        // Concurrent children (worker spans) can sum past the parent.
        let records = vec![
            record("a", "run.a", 800),
            record("b", "run.b", 800),
            record("run", "run", 1000),
        ];
        let profile = aggregate(&records);
        assert_eq!(profile.stat("run").unwrap().self_us(), 0);
        // Zero-self paths are omitted from folded output.
        assert!(!profile.folded().lines().any(|l| l.starts_with("run ")));
    }
}
