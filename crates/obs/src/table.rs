//! A slot-map connection/session table with idle timeouts.
//!
//! Every accepted connection claims a slot before any byte is read; a
//! full table is the *first* backpressure point (the acceptor answers
//! 503 and closes). Slots are `(index, generation)` tokens: releasing a
//! slot bumps its generation, so a stale token — a handler releasing a
//! connection the idle sweeper already evicted — is a no-op instead of
//! clobbering the slot's next tenant (the classic slot-map ABA guard).
//!
//! The sweeper side owns a [`TcpStream::try_clone`] of each connection:
//! [`sweep`](SessionTable::sweep) calls `shutdown` on clones whose
//! deadline passed, which wakes the handler thread blocked in `read`
//! with an EOF, unwedging slow-loris clients without the table ever
//! joining or signalling threads.

use parking_lot::Mutex;
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// A claim on one table slot. Tokens are use-once: [`SessionTable::release`]
/// invalidates every outstanding copy via the generation bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionToken {
    slot: usize,
    generation: u64,
}

struct Session {
    /// Sweeper-side handle; the handler thread owns the original.
    stream: TcpStream,
    last_seen: Instant,
}

struct Slot {
    generation: u64,
    session: Option<Session>,
}

struct TableInner {
    slots: Vec<Slot>,
    free: Vec<usize>,
}

/// Bounded registry of live connections with an idle deadline.
pub struct SessionTable {
    inner: Mutex<TableInner>,
    idle_timeout: Duration,
}

impl SessionTable {
    /// A table with `capacity` slots and the given idle deadline.
    pub fn new(capacity: usize, idle_timeout: Duration) -> Self {
        let capacity = capacity.max(1);
        SessionTable {
            inner: Mutex::new(TableInner {
                slots: (0..capacity)
                    .map(|_| Slot {
                        generation: 0,
                        session: None,
                    })
                    .collect(),
                free: (0..capacity).rev().collect(),
            }),
            idle_timeout,
        }
    }

    /// How many slots the table has.
    pub fn capacity(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// How many sessions are currently claimed.
    pub fn open(&self) -> usize {
        let inner = self.inner.lock();
        inner.slots.len() - inner.free.len()
    }

    /// Claims a slot for `stream`. `None` when the table is full or the
    /// stream cannot be cloned for the sweeper (treated as full: the
    /// connection should be refused, not tracked invisibly).
    pub fn claim(&self, stream: &TcpStream) -> Option<SessionToken> {
        let clone = stream.try_clone().ok()?;
        let mut inner = self.inner.lock();
        let slot = inner.free.pop()?;
        let generation = inner.slots[slot].generation;
        inner.slots[slot].session = Some(Session {
            stream: clone,
            last_seen: Instant::now(),
        });
        Some(SessionToken { slot, generation })
    }

    /// Refreshes the idle deadline of a live session. Stale tokens are
    /// ignored.
    pub fn touch(&self, token: SessionToken) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.get_mut(token.slot) {
            if slot.generation == token.generation {
                if let Some(session) = &mut slot.session {
                    session.last_seen = Instant::now();
                }
            }
        }
    }

    /// Releases a claimed slot. Returns `false` for stale tokens (the
    /// sweeper got there first) — callers use that to count idle
    /// evictions separately from normal completions.
    pub fn release(&self, token: SessionToken) -> bool {
        let mut inner = self.inner.lock();
        let Some(slot) = inner.slots.get_mut(token.slot) else {
            return false;
        };
        if slot.generation != token.generation || slot.session.is_none() {
            return false;
        }
        slot.session = None;
        slot.generation += 1;
        inner.free.push(token.slot);
        true
    }

    /// Shuts down and releases every session idle past the deadline.
    /// Returns how many were evicted. The handler thread blocked on an
    /// evicted stream sees EOF, finishes, and its `release` becomes a
    /// stale no-op.
    pub fn sweep(&self) -> usize {
        let now = Instant::now();
        let mut evicted = 0;
        let mut inner = self.inner.lock();
        for i in 0..inner.slots.len() {
            let expired = inner.slots[i]
                .session
                .as_ref()
                .is_some_and(|s| now.duration_since(s.last_seen) >= self.idle_timeout);
            if expired {
                if let Some(session) = inner.slots[i].session.take() {
                    let _ = session.stream.shutdown(Shutdown::Both);
                }
                inner.slots[i].generation += 1;
                inner.free.push(i);
                evicted += 1;
            }
        }
        evicted
    }

    /// The configured idle deadline.
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTable")
            .field("capacity", &self.capacity())
            .field("open", &self.open())
            .field("idle_timeout", &self.idle_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected (server-side accepted) stream pair for table tests.
    fn pair(listener: &TcpListener) -> (TcpStream, TcpStream) {
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn claims_up_to_capacity_then_refuses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let table = SessionTable::new(2, Duration::from_secs(60));
        let (_c1, s1) = pair(&listener);
        let (_c2, s2) = pair(&listener);
        let (_c3, s3) = pair(&listener);
        let t1 = table.claim(&s1).expect("slot 1");
        let _t2 = table.claim(&s2).expect("slot 2");
        assert!(table.claim(&s3).is_none(), "table is full");
        assert_eq!(table.open(), 2);

        assert!(table.release(t1));
        assert_eq!(table.open(), 1);
        assert!(table.claim(&s3).is_some(), "freed slot is reusable");
    }

    #[test]
    fn stale_tokens_are_inert() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let table = SessionTable::new(1, Duration::from_secs(60));
        let (_c1, s1) = pair(&listener);
        let token = table.claim(&s1).unwrap();
        assert!(table.release(token));
        assert!(!table.release(token), "double release is a no-op");

        // The slot's next tenant is safe from the old token.
        let (_c2, s2) = pair(&listener);
        let fresh = table.claim(&s2).unwrap();
        assert!(!table.release(token));
        table.touch(token); // must not refresh the new tenant
        assert_eq!(table.open(), 1);
        assert!(table.release(fresh));
    }

    #[test]
    fn sweep_evicts_idle_sessions_and_wakes_blocked_readers() {
        use std::io::Read;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let table = SessionTable::new(4, Duration::from_millis(10));
        let (mut client, server) = pair(&listener);
        let token = table.claim(&server).unwrap();

        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(table.sweep(), 1);
        assert_eq!(table.open(), 0);
        // The handler's release after eviction is stale, not corrupting.
        assert!(!table.release(token));

        // The peer of the shut-down stream reads EOF instead of hanging.
        let mut buf = [0u8; 8];
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(client.read(&mut buf).unwrap_or(0), 0);
    }

    #[test]
    fn touch_defers_eviction() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let table = SessionTable::new(1, Duration::from_millis(40));
        let (_client, server) = pair(&listener);
        let token = table.claim(&server).unwrap();
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(15));
            table.touch(token);
        }
        assert_eq!(table.sweep(), 0, "touched session must stay");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(table.sweep(), 1);
    }
}
