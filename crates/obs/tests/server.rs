//! Integration test: start a real metrics server on an ephemeral port,
//! scrape it with a plain `std::net::TcpStream`, and round-trip the body
//! through a Prometheus text-exposition line-format checker.

use dpr_obs::{prom, shared_trace, MetricsServer};
use dpr_telemetry::Registry;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scrape endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: dpr\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("http head");
    (head.to_string(), body.to_string())
}

/// Is `name` a valid Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Is `value` a valid sample value (float, integer, `+Inf`/`-Inf`/`NaN`)?
fn valid_value(value: &str) -> bool {
    matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok()
}

/// Checks one sample line against `name{labels} value` and returns the
/// bare metric name (with any `_bucket`/`_sum`/`_count` suffix intact).
fn check_sample_line(line: &str) -> String {
    let (name_and_labels, value) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("sample line has no value separator: {line:?}");
    });
    assert!(
        valid_value(value),
        "invalid sample value {value:?} in line {line:?}"
    );
    let name = match name_and_labels.split_once('{') {
        None => name_and_labels,
        Some((name, labels)) => {
            let labels = labels
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set in {line:?}"));
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (key, val) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("label without '=' in {line:?}"));
                assert!(valid_name(key), "invalid label name {key:?} in {line:?}");
                assert!(
                    val.starts_with('"') && val.ends_with('"') && val.len() >= 2,
                    "unquoted label value {val:?} in {line:?}"
                );
            }
            name
        }
    };
    assert!(valid_name(name), "invalid metric name {name:?} in {line:?}");
    name.to_string()
}

/// Validates a whole exposition body: every non-comment line is a
/// well-formed sample, and every histogram declared via `# TYPE` has
/// `_bucket` (including `+Inf`), `_sum`, and `_count` samples.
fn check_exposition(body: &str) {
    let mut histograms = BTreeSet::new();
    let mut samples: Vec<String> = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts.next().expect("TYPE line names a metric");
                let kind = parts.next().expect("TYPE line names a kind");
                assert!(valid_name(name), "invalid TYPE name {name:?}");
                if kind == "histogram" {
                    histograms.insert(name.to_string());
                }
            }
            continue;
        }
        samples.push(check_sample_line(line));
    }
    assert!(!samples.is_empty(), "exposition had no samples:\n{body}");
    for name in &histograms {
        for suffix in ["_bucket", "_sum", "_count"] {
            let expected = format!("{name}{suffix}");
            assert!(
                samples.iter().any(|s| s == &expected),
                "histogram {name} is missing its {suffix} sample:\n{body}"
            );
        }
        let inf = format!("{name}_bucket{{le=\"+Inf\"}}");
        assert!(
            body.lines().any(|l| l.starts_with(&inf)),
            "histogram {name} is missing the +Inf bucket:\n{body}"
        );
    }
}

#[test]
fn scraped_metrics_pass_the_exposition_line_checker() {
    let registry = Arc::new(Registry::new());
    registry.counter("frames.seen").inc(42);
    registry.counter("capture.records_read").inc(7);
    registry.gauge("gp.evals_per_sec").set(123_456);
    let h = registry.histogram_with("span.pipeline", vec![100.0, 1_000.0, 10_000.0]);
    for v in [50.0, 550.0, 5_500.0, 55_000.0] {
        h.record(v);
    }

    let server = MetricsServer::start(
        "127.0.0.1:0",
        Arc::clone(&registry),
        shared_trace(),
        dpr_obs::shared_runs(),
    )
    .expect("bind ephemeral port");
    let (head, body) = get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");

    check_exposition(&body);
    assert!(body.contains("frames_seen 42\n"), "{body}");
    assert!(body.contains("gp_evals_per_sec 123456\n"), "{body}");
    assert!(body.contains("span_pipeline_bucket{le=\"+Inf\"} 4\n"), "{body}");
    server.stop();
}

#[test]
fn runs_and_evidence_routes_serve_published_runs() {
    let runs = dpr_obs::shared_runs();
    let server = MetricsServer::start(
        "127.0.0.1:0",
        Arc::new(Registry::new()),
        shared_trace(),
        Arc::clone(&runs),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Empty store: /runs is an empty array, /evidence/<x> 404s.
    let (head, body) = get(addr, "/runs");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body.trim(), "[]");
    let (head, _) = get(addr, "/evidence/did-0xf40d");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // Publish two runs; the second's chain supersedes the first's.
    let mut ledger = dpr_evidence::EvidenceLedger::default();
    ledger.chains.push(dpr_evidence::EvidenceChain {
        sensor: "DID 0xF40D".into(),
        slug: "did-0xf40d".into(),
        screen: "Engine".into(),
        label: "Vehicle Speed".into(),
        kind: "formula".into(),
        formula: "X0 / 2".into(),
        match_score: Some(0.75),
        match_pairs: 12,
        samples: vec![],
        ocr: vec![],
        candidates: vec![],
        lineage: None,
    });
    runs.lock().publish(1_000, ledger.clone());
    ledger.chains[0].formula = "X0 * 0.5".into();
    runs.lock().publish(2_000, ledger);

    let (head, body) = get(addr, "/runs");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let listing: Vec<dpr_obs::RunListing> =
        dpr_telemetry::json::from_str(&body).expect("parse /runs listing");
    assert_eq!(listing.len(), 2);
    assert_eq!(listing[0].id, "run-1");
    assert_eq!(listing[0].at_ms, 1_000);
    assert_eq!(listing[1].id, "run-2");
    assert_eq!(listing[1].sensors, vec!["did-0xf40d".to_string()]);

    let (head, body) = get(addr, "/evidence/did-0xf40d");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let chain: dpr_evidence::EvidenceChain =
        dpr_telemetry::json::from_str(&body).expect("parse /evidence chain");
    assert_eq!(chain.formula, "X0 * 0.5", "latest run wins");

    let (head, body) = get(addr, "/evidence/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(body.contains("did-0xf40d"), "404 lists known slugs: {body}");

    server.stop();
}

#[test]
fn slow_client_does_not_block_other_requests() {
    // Regression test for the old single-threaded serve loop: a client
    // that connects and then stalls mid-request used to hold the one
    // handler thread hostage until its read deadline (2s), delaying
    // every other caller. With the session table + handler pool, the
    // stalled connection occupies one slot while /healthz keeps
    // answering immediately.
    let server = MetricsServer::start(
        "127.0.0.1:0",
        Arc::new(Registry::new()),
        shared_trace(),
        dpr_obs::shared_runs(),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Stalled clients: half a request head each, then silence.
    let mut stalled = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connect stalled client");
        write!(stream, "GET /metrics HT").expect("send partial request");
        stalled.push(stream);
    }
    // Give the acceptor time to hand the stalled connections to workers.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let started = std::time::Instant::now();
    let (head, _) = get(addr, "/healthz");
    let elapsed = started.elapsed();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        elapsed < std::time::Duration::from_millis(500),
        "healthz took {elapsed:?} with stalled clients holding connections"
    );

    // The stalled clients eventually get a 408 (read deadline) instead
    // of wedging the server; their sockets close.
    for mut stream in stalled {
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(
            out.is_empty() || out.starts_with("HTTP/1.1 408"),
            "stalled client saw unexpected response: {out}"
        );
    }
    server.stop();
}

#[test]
fn checker_also_accepts_direct_renderer_output() {
    // The checker is grammar-driven, so run it against the renderer
    // directly too — a server-free sanity loop for odd metric names.
    let registry = Registry::new();
    registry.counter("9starts.with-digit").inc(1);
    registry.histogram_with("empty.hist", vec![1.0]);
    check_exposition(&prom::render(&registry.snapshot()));
}
