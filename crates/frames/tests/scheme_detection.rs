//! Transport-scheme auto-detection over real simulated captures of all
//! three schemes — the capability the paper lists as prerequisite domain
//! knowledge (§6, limitation 4) and we infer instead.

use dpr_can::Micros;
use dpr_cps::{collect_vehicle, CollectConfig};
use dpr_frames::{analyze_capture_auto, Scheme};
use dpr_tool::{ToolProfile, ToolSession};
use dpr_vehicle::profiles::{self, CarId};
use dpr_vehicle::TransportKind;

fn capture_for(id: CarId, seed: u64) -> dpr_can::BusLog {
    let spec = profiles::spec(id);
    let car = profiles::build(id, seed);
    let session = ToolSession::new(car, ToolProfile::by_name(spec.tool).unwrap());
    let report = collect_vehicle(
        session,
        &CollectConfig {
            read_wait: Micros::from_secs(2),
            ..CollectConfig::default()
        },
    )
    .unwrap();
    report.log
}

#[test]
fn detects_every_cars_scheme() {
    for id in CarId::ALL {
        let expected = match profiles::spec(id).transport {
            TransportKind::IsoTp => Scheme::IsoTp,
            TransportKind::VwTp => Scheme::VwTp,
            TransportKind::BmwRaw => Scheme::BmwRaw,
        };
        let log = capture_for(id, 77);
        let detected = Scheme::detect(&log);
        assert_eq!(detected, expected, "{id}");
    }
}

#[test]
fn auto_analysis_matches_explicit_analysis() {
    for id in [CarId::A, CarId::C, CarId::G] {
        let expected = match profiles::spec(id).transport {
            TransportKind::IsoTp => Scheme::IsoTp,
            TransportKind::VwTp => Scheme::VwTp,
            TransportKind::BmwRaw => Scheme::BmwRaw,
        };
        let log = capture_for(id, 5);
        let auto = analyze_capture_auto(&log);
        let explicit = dpr_frames::analyze_capture(&log, expected);
        assert_eq!(auto, explicit, "{id}");
    }
}

#[test]
fn empty_capture_defaults_sanely() {
    // An empty capture has no evidence; any answer is acceptable but the
    // call must not panic and must be deterministic.
    let log = dpr_can::BusLog::new();
    let a = Scheme::detect(&log);
    let b = Scheme::detect(&log);
    assert_eq!(a, b);
}
