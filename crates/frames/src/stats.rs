//! Frame-type statistics — the measurement behind Tab. 9.

use serde::{Deserialize, Serialize};

/// Counts of frame kinds in a capture.
///
/// For ISO-TP traffic, `single` / `multi` / `control` map to SF /
/// (FF + CF) / FC. For VW TP 2.0, the paper counts frames that "need to
/// wait for the next frames" (non-last data frames) as `multi`'s waiting
/// share and last data frames as `single`-equivalent terminators; ACK,
/// setup, parameter, and broadcast frames are `control`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Frames that alone complete a message (ISO-TP SF; VW TP last-data).
    pub single: usize,
    /// Frames belonging to multi-frame payloads (ISO-TP FF+CF; VW TP
    /// non-last data frames).
    pub multi: usize,
    /// Transport-control frames carrying no payload (screened out).
    pub control: usize,
    /// Frames that failed to parse under the scheme.
    pub unknown: usize,
}

impl FrameStats {
    /// Total frames observed.
    pub fn total(&self) -> usize {
        self.single + self.multi + self.control + self.unknown
    }

    /// Share of single-frame messages among all frames (Tab. 9's 55.1%
    /// for UDS).
    pub fn single_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.single as f64 / self.total() as f64
        }
    }

    /// Share of multi-frame frames among all frames (Tab. 9's 32.0% for
    /// UDS, 75.2% for KWP 2000).
    pub fn multi_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.multi as f64 / self.total() as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: FrameStats) {
        self.single += other.single;
        self.multi += other.multi;
        self.control += other.control;
        self.unknown += other.unknown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_sensibly() {
        let stats = FrameStats {
            single: 55,
            multi: 32,
            control: 13,
            unknown: 0,
        };
        assert_eq!(stats.total(), 100);
        assert!((stats.single_share() - 0.55).abs() < 1e-12);
        assert!((stats.multi_share() - 0.32).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_shares() {
        let stats = FrameStats::default();
        assert_eq!(stats.single_share(), 0.0);
        assert_eq!(stats.multi_share(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FrameStats {
            single: 1,
            multi: 2,
            control: 3,
            unknown: 0,
        };
        a.merge(FrameStats {
            single: 10,
            multi: 20,
            control: 30,
            unknown: 1,
        });
        assert_eq!(a.total(), 67);
        assert_eq!(a.unknown, 1);
    }
}
