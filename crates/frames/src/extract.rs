//! Step 3: extracting fields from assembled payloads.

use std::collections::VecDeque;

use dpr_can::Micros;
use dpr_protocol::kwp::KwpResponse;
use dpr_protocol::uds::{split_read_records, Did, UdsRequest};
use serde::{Deserialize, Serialize};

use crate::analysis::AssembledMessage;

/// Identifies the source of one raw-value series in the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceKey {
    /// A UDS data identifier.
    UdsDid(u16),
    /// One slot of a KWP measuring block.
    Kwp {
        /// The block's local identifier.
        local_id: u8,
        /// The ESV's slot within the block.
        slot: usize,
    },
    /// An OBD-II mode-01 PID.
    Obd(u8),
}

impl std::fmt::Display for SourceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceKey::UdsDid(d) => write!(f, "DID 0x{d:04X}"),
            SourceKey::Kwp { local_id, slot } => {
                write!(f, "local id 0x{local_id:02X} slot {slot}")
            }
            SourceKey::Obd(p) => write!(f, "PID 0x{p:02X}"),
        }
    }
}

/// The raw-value time series observed for one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EsvSeries {
    /// The source.
    pub key: SourceKey,
    /// For KWP slots, the formula-type byte observed on the wire.
    pub f_type: Option<u8>,
    /// `(completion time, raw values)` samples in capture order. UDS and
    /// OBD samples carry the record's data bytes (up to the first two are
    /// used for inference); KWP samples carry `[X0, X1]`.
    pub samples: Vec<(Micros, Vec<f64>)>,
}

impl EsvSeries {
    /// Whether both of the first two raw variables actually vary over the
    /// capture — decides how many inputs the inference uses.
    pub fn varying_columns(&self) -> usize {
        let mut distinct0 = std::collections::BTreeSet::new();
        let mut distinct1 = std::collections::BTreeSet::new();
        for (_, vals) in &self.samples {
            if let Some(v) = vals.first() {
                distinct0.insert(v.to_bits());
            }
            if let Some(v) = vals.get(1) {
                distinct1.insert(v.to_bits());
            }
        }
        usize::from(distinct0.len() > 1) + usize::from(distinct1.len() > 1)
    }
}

/// Which field addresses a controlled component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EcrTarget {
    /// Two-byte identifier of service 0x2F (UDS DID or KWP common id —
    /// indistinguishable on the wire, as in the paper).
    Id2F(u16),
    /// One-byte local identifier of service 0x30.
    Local30(u8),
}

/// One observed ECU-control record (request side).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcrObservation {
    /// When the request completed.
    pub at: Micros,
    /// The addressed component.
    pub target: EcrTarget,
    /// The IO-control parameter byte (0x00 return / 0x02 freeze /
    /// 0x03 short-term adjustment …).
    pub param: u8,
    /// Control-state bytes.
    pub state: Vec<u8>,
    /// Whether a positive response followed.
    pub positive: bool,
}

/// A recovered control procedure: the paper's three-message pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlProcedure {
    /// The controlled component.
    pub target: EcrTarget,
    /// The control state sent with the short-term adjustment.
    pub state: Vec<u8>,
    /// Whether the full freeze → adjust → return sequence was observed.
    pub complete_pattern: bool,
}

/// Everything Step 3 extracts from a capture.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    /// Per-source raw-value series.
    pub series: Vec<EsvSeries>,
    /// Every IO-control request observed.
    pub ecrs: Vec<EcrObservation>,
    /// Grouped control procedures.
    pub procedures: Vec<ControlProcedure>,
    /// Number of read requests seen.
    pub read_requests: usize,
    /// Number of negative responses seen.
    pub negatives: usize,
    /// SecurityAccess (0x27) requests observed — the seed-key handshakes
    /// the paper's §6 places outside formula inference.
    pub security_handshakes: usize,
}

impl Extraction {
    /// The series for a source, if observed.
    pub fn series_for(&self, key: SourceKey) -> Option<&EsvSeries> {
        self.series.iter().find(|s| s.key == key)
    }

    /// Distinct components for which a short-term adjustment was observed
    /// — the paper's "#ECR" count per vehicle (Tab. 11).
    pub fn controlled_targets(&self) -> Vec<EcrTarget> {
        let mut targets: Vec<EcrTarget> = self
            .ecrs
            .iter()
            .filter(|e| e.param == 0x03)
            .map(|e| e.target)
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
    }
}

fn push_sample(
    series: &mut Vec<EsvSeries>,
    key: SourceKey,
    f_type: Option<u8>,
    at: Micros,
    values: Vec<f64>,
) {
    if let Some(existing) = series.iter_mut().find(|s| s.key == key) {
        existing.samples.push((at, values));
    } else {
        series.push(EsvSeries {
            key,
            f_type,
            samples: vec![(at, values)],
        });
    }
}

/// Records one extracted sample's provenance in the evidence log: the
/// sensor key, the response's CAN id and timestamp, and the eliciting
/// request's timestamp.
fn record_field_sample(key: SourceKey, msg: &AssembledMessage, request_at: Option<Micros>) {
    if dpr_evidence::active() {
        dpr_evidence::record(dpr_evidence::Event::FieldSample(dpr_evidence::FieldSample {
            key: key.to_string(),
            id: msg.id.raw(),
            at_us: msg.at.as_micros(),
            request_at_us: request_at.map(Micros::as_micros),
        }));
    }
}

/// Extracts fields from assembled payloads (paper §3.2 Step 3).
pub fn extract_fields(messages: &[AssembledMessage]) -> Extraction {
    let mut out = Extraction::default();
    // FIFO of outstanding UDS read requests (with their timestamps, for
    // the evidence ledger's request/response pairing); responses are
    // matched in order ("the list of DIDs in the request message also
    // appear in the corresponding response message with the same order").
    let mut pending_reads: VecDeque<(Micros, Vec<Did>)> = VecDeque::new();
    // Outstanding KWP block reads and OBD requests, timestamps only —
    // both responses are self-describing.
    let mut pending_kwp: VecDeque<Micros> = VecDeque::new();
    let mut pending_obd: VecDeque<Micros> = VecDeque::new();
    // Outstanding IO-control requests awaiting confirmation.
    let mut pending_ecrs: Vec<usize> = Vec::new();

    for msg in messages {
        let payload = &msg.payload;
        let Some(&first) = payload.first() else {
            continue;
        };
        match first {
            // ——— requests ———
            0x22 => {
                if let Ok(UdsRequest::ReadDataById { dids }) = UdsRequest::parse(payload) {
                    out.read_requests += 1;
                    pending_reads.push_back((msg.at, dids));
                }
            }
            0x21 => {
                out.read_requests += 1;
                pending_kwp.push_back(msg.at);
            }
            0x01 => {
                // OBD request; the response is self-describing.
                pending_obd.push_back(msg.at);
            }
            0x2F if payload.len() >= 4 => {
                let id = u16::from_be_bytes([payload[1], payload[2]]);
                out.ecrs.push(EcrObservation {
                    at: msg.at,
                    target: EcrTarget::Id2F(id),
                    param: payload[3],
                    state: payload[4..].to_vec(),
                    positive: false,
                });
                pending_ecrs.push(out.ecrs.len() - 1);
            }
            0x30 if payload.len() >= 3 => {
                out.ecrs.push(EcrObservation {
                    at: msg.at,
                    target: EcrTarget::Local30(payload[1]),
                    param: payload[2],
                    state: payload[3..].to_vec(),
                    positive: false,
                });
                pending_ecrs.push(out.ecrs.len() - 1);
            }
            // ——— responses ———
            0x62 => {
                // Try the pending requests front-first; skip entries that
                // do not match (robustness against lost frames).
                let mut matched = None;
                for (i, (_, dids)) in pending_reads.iter().enumerate() {
                    if let Ok(records) = split_read_records(&payload[1..], dids) {
                        matched = Some((i, records));
                        break;
                    }
                }
                if let Some((i, records)) = matched {
                    let request_at = pending_reads.remove(i).map(|(at, _)| at);
                    for (did, data) in records {
                        let values = data.iter().map(|&b| f64::from(b)).collect();
                        let key = SourceKey::UdsDid(did.0);
                        record_field_sample(key, msg, request_at);
                        push_sample(&mut out.series, key, None, msg.at, values);
                    }
                }
            }
            0x61 => {
                if let Ok(KwpResponse::ReadDataByLocalId { local_id, esvs }) =
                    KwpResponse::parse(payload)
                {
                    let request_at = pending_kwp.pop_front();
                    for (slot, esv) in esvs.iter().enumerate() {
                        let key = SourceKey::Kwp {
                            local_id: local_id.0,
                            slot,
                        };
                        record_field_sample(key, msg, request_at);
                        push_sample(
                            &mut out.series,
                            key,
                            Some(esv.f_type),
                            msg.at,
                            vec![f64::from(esv.x0), f64::from(esv.x1)],
                        );
                    }
                }
            }
            0x41 => {
                if let Ok((pid, data)) = dpr_protocol::obd::parse_response(payload) {
                    let values = data.iter().map(|&b| f64::from(b)).collect();
                    let key = SourceKey::Obd(pid.0);
                    record_field_sample(key, msg, pending_obd.pop_front());
                    push_sample(&mut out.series, key, None, msg.at, values);
                }
            }
            0x6F if payload.len() >= 4 => {
                let id = u16::from_be_bytes([payload[1], payload[2]]);
                let param = payload[3];
                confirm_ecr(&mut out.ecrs, &mut pending_ecrs, EcrTarget::Id2F(id), param);
            }
            0x70 if payload.len() >= 2 => {
                // The 0x70 response echoes the local id; the parameter is
                // not echoed, so confirm the oldest outstanding request
                // for that local id.
                let target = EcrTarget::Local30(payload[1]);
                confirm_ecr_any_param(&mut out.ecrs, &mut pending_ecrs, target);
            }
            0x27 => {
                out.security_handshakes += 1;
            }
            0x7F => {
                out.negatives += 1;
            }
            _ => {}
        }
    }

    out.procedures = group_procedures(&out.ecrs);
    out
}

fn confirm_ecr(
    ecrs: &mut [EcrObservation],
    pending: &mut Vec<usize>,
    target: EcrTarget,
    param: u8,
) {
    if let Some(pos) = pending
        .iter()
        .position(|&i| ecrs[i].target == target && ecrs[i].param == param)
    {
        let idx = pending.remove(pos);
        ecrs[idx].positive = true;
    }
}

fn confirm_ecr_any_param(ecrs: &mut [EcrObservation], pending: &mut Vec<usize>, target: EcrTarget) {
    if let Some(pos) = pending.iter().position(|&i| ecrs[i].target == target) {
        let idx = pending.remove(pos);
        ecrs[idx].positive = true;
    }
}

/// Groups ECR observations into control procedures: for each target, an
/// adjustment (0x03) forms a procedure; it is a *complete pattern* when
/// bracketed by a freeze (0x02) before and a return (0x00) after — the
/// three-message shape of §4.5.
fn group_procedures(ecrs: &[EcrObservation]) -> Vec<ControlProcedure> {
    let mut out = Vec::new();
    for (i, e) in ecrs.iter().enumerate() {
        if e.param != 0x03 {
            continue;
        }
        let frozen_before = ecrs[..i]
            .iter()
            .rev()
            .take_while(|p| p.target == e.target || p.param == 0x03)
            .any(|p| p.target == e.target && p.param == 0x02);
        let returned_after = ecrs[i + 1..]
            .iter()
            .find(|p| p.target == e.target)
            .is_some_and(|p| p.param == 0x00);
        out.push(ControlProcedure {
            target: e.target,
            state: e.state.clone(),
            complete_pattern: frozen_before && returned_after,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AssembledMessage;
    use dpr_can::CanId;

    fn msg(at_ms: u64, payload: Vec<u8>) -> AssembledMessage {
        AssembledMessage {
            at: Micros::from_millis(at_ms),
            id: CanId::standard(0x7E8).unwrap(),
            payload,
        }
    }

    #[test]
    fn uds_read_pairs_request_and_response() {
        let messages = vec![
            msg(0, vec![0x22, 0xF4, 0x0D]),
            msg(10, vec![0x62, 0xF4, 0x0D, 0x21]),
            msg(20, vec![0x22, 0xF4, 0x0D]),
            msg(30, vec![0x62, 0xF4, 0x0D, 0x24]),
        ];
        let ext = extract_fields(&messages);
        assert_eq!(ext.read_requests, 2);
        let series = ext.series_for(SourceKey::UdsDid(0xF40D)).unwrap();
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.samples[0].1, vec![0x21 as f64]);
        assert_eq!(series.samples[1].1, vec![0x24 as f64]);
    }

    #[test]
    fn multi_did_response_splits_into_series() {
        let messages = vec![
            msg(0, vec![0x22, 0xF4, 0x00, 0xF4, 0x01]),
            msg(5, vec![0x62, 0xF4, 0x00, 0xAA, 0xBB, 0xF4, 0x01, 0xCC]),
        ];
        let ext = extract_fields(&messages);
        let a = ext.series_for(SourceKey::UdsDid(0xF400)).unwrap();
        assert_eq!(a.samples[0].1, vec![170.0, 187.0]);
        let b = ext.series_for(SourceKey::UdsDid(0xF401)).unwrap();
        assert_eq!(b.samples[0].1, vec![204.0]);
    }

    #[test]
    fn kwp_blocks_become_per_slot_series_with_f_types() {
        let messages = vec![
            msg(0, vec![0x21, 0x07]),
            msg(5, vec![0x61, 0x07, 0x01, 0xF1, 0x10, 0x07, 100, 33]),
        ];
        let ext = extract_fields(&messages);
        let s0 = ext
            .series_for(SourceKey::Kwp { local_id: 0x07, slot: 0 })
            .unwrap();
        assert_eq!(s0.f_type, Some(0x01));
        assert_eq!(s0.samples[0].1, vec![241.0, 16.0]);
        let s1 = ext
            .series_for(SourceKey::Kwp { local_id: 0x07, slot: 1 })
            .unwrap();
        assert_eq!(s1.f_type, Some(0x07));
    }

    #[test]
    fn obd_responses_are_self_describing() {
        let messages = vec![
            msg(0, vec![0x01, 0x0C]),
            msg(3, vec![0x41, 0x0C, 0x1A, 0xF0]),
        ];
        let ext = extract_fields(&messages);
        let s = ext.series_for(SourceKey::Obd(0x0C)).unwrap();
        assert_eq!(s.samples[0].1, vec![26.0, 240.0]);
    }

    #[test]
    fn ecr_procedure_detected_with_complete_pattern() {
        let messages = vec![
            msg(0, vec![0x2F, 0x09, 0x50, 0x02]),
            msg(1, vec![0x6F, 0x09, 0x50, 0x02]),
            msg(10, vec![0x2F, 0x09, 0x50, 0x03, 0x05, 0x01, 0x00, 0x00]),
            msg(11, vec![0x6F, 0x09, 0x50, 0x03, 0x05, 0x01, 0x00, 0x00]),
            msg(20, vec![0x2F, 0x09, 0x50, 0x00]),
            msg(21, vec![0x6F, 0x09, 0x50, 0x00]),
        ];
        let ext = extract_fields(&messages);
        assert_eq!(ext.ecrs.len(), 3);
        assert!(ext.ecrs.iter().all(|e| e.positive), "{:?}", ext.ecrs);
        assert_eq!(ext.procedures.len(), 1);
        let p = &ext.procedures[0];
        assert_eq!(p.target, EcrTarget::Id2F(0x0950));
        assert_eq!(p.state, vec![0x05, 0x01, 0x00, 0x00]);
        assert!(p.complete_pattern);
        assert_eq!(ext.controlled_targets(), vec![EcrTarget::Id2F(0x0950)]);
    }

    #[test]
    fn kwp_local_ecr_with_0x70_confirmation() {
        let messages = vec![
            msg(0, vec![0x30, 0x15, 0x03, 0x00, 0x40, 0x00]),
            msg(1, vec![0x70, 0x15, 0x01]),
        ];
        let ext = extract_fields(&messages);
        assert_eq!(ext.ecrs.len(), 1);
        assert!(ext.ecrs[0].positive);
        assert_eq!(ext.ecrs[0].target, EcrTarget::Local30(0x15));
        assert_eq!(ext.ecrs[0].state, vec![0x00, 0x40, 0x00]);
        // Adjustment without freeze/return: a procedure, but incomplete.
        assert_eq!(ext.procedures.len(), 1);
        assert!(!ext.procedures[0].complete_pattern);
    }

    #[test]
    fn negatives_counted() {
        let messages = vec![
            msg(0, vec![0x22, 0xAA, 0xBB]),
            msg(1, vec![0x7F, 0x22, 0x31]),
        ];
        let ext = extract_fields(&messages);
        assert_eq!(ext.negatives, 1);
        assert!(ext.series.is_empty());
    }

    #[test]
    fn varying_columns_detection() {
        let series = EsvSeries {
            key: SourceKey::UdsDid(1),
            f_type: None,
            samples: vec![
                (Micros::ZERO, vec![1.0, 100.0]),
                (Micros::from_millis(1), vec![2.0, 100.0]),
                (Micros::from_millis(2), vec![3.0, 100.0]),
            ],
        };
        // X0 varies, X1 pinned at 100 — the paper's vehicle-speed quirk.
        assert_eq!(series.varying_columns(), 1);
    }
}
