//! Steps 1 and 2: screening frames and assembling payloads.

use std::collections::BTreeMap;

use dpr_can::{BusLog, CanId, Micros};
use dpr_transport::bmw::BmwStreamDecoder;
use dpr_transport::isotp::IsoTpFrame;
use dpr_transport::vwtp::{self, VwOpcode, VwTpStreamDecoder};
use serde::{Deserialize, Serialize};

use crate::extract::{extract_fields, Extraction};
use crate::stats::FrameStats;

/// Which transport scheme a capture (or an id within it) uses. The paper
/// lists knowledge of the transport standard as prerequisite domain
/// knowledge (§6, limitation 4); experiments pass the scheme of the car
/// under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// ISO 15765-2.
    IsoTp,
    /// VW TP 2.0.
    VwTp,
    /// The BMW/Mini raw ECU-id-prefix scheme.
    BmwRaw,
}

/// One reassembled diagnostic payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssembledMessage {
    /// Completion time (the timestamp of the frame that completed it).
    pub at: Micros,
    /// The CAN id the payload travelled on.
    pub id: CanId,
    /// The assembled application payload.
    pub payload: Vec<u8>,
}

/// The result of running the full frames analysis over a capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureAnalysis {
    /// Reassembled payloads in completion order.
    pub messages: Vec<AssembledMessage>,
    /// Frame-kind tally (Tab. 9).
    pub stats: FrameStats,
    /// Step 3's extracted fields.
    pub extraction: Extraction,
}

enum AnyDecoder {
    IsoTp(dpr_transport::isotp::IsoTpStreamDecoder),
    VwTp(VwTpStreamDecoder),
    Bmw(BmwStreamDecoder),
}

impl AnyDecoder {
    fn new(scheme: Scheme) -> Self {
        match scheme {
            Scheme::IsoTp => AnyDecoder::IsoTp(Default::default()),
            Scheme::VwTp => AnyDecoder::VwTp(Default::default()),
            Scheme::BmwRaw => AnyDecoder::Bmw(Default::default()),
        }
    }

    fn push(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        match self {
            AnyDecoder::IsoTp(d) => {
                d.push(data);
                d.drain()
            }
            AnyDecoder::VwTp(d) => {
                d.push(data);
                d.drain()
            }
            AnyDecoder::Bmw(d) => {
                d.push(data);
                d.drain()
            }
        }
    }
}

/// The scheme tag evidence events and the `transport.<scheme>.*`
/// counter family share.
fn scheme_tag(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::IsoTp => "isotp",
        Scheme::VwTp => "vwtp",
        Scheme::BmwRaw => "bmw",
    }
}

/// Records a screening-level reject (a frame that parses as nothing of
/// the scheme) in the evidence log — unlike the decoder-level rejects,
/// screening still knows which CAN id and timestamp the frame had.
fn record_screen_reject(scheme: Scheme, id: CanId, at: Micros) {
    if dpr_evidence::active() {
        dpr_evidence::record(dpr_evidence::Event::ReassemblyReject(
            dpr_evidence::ReassemblyReject {
                scheme: scheme_tag(scheme).to_string(),
                kind: "malformed_frame".to_string(),
                id: Some(id.raw()),
                at_us: Some(at.as_micros()),
            },
        ));
    }
}

/// Classifies one frame for the screening tally. Returns whether the
/// frame should be fed to the assembler.
fn screen(scheme: Scheme, id: CanId, data: &[u8], stats: &mut FrameStats) -> bool {
    match scheme {
        Scheme::IsoTp => match IsoTpFrame::parse(data) {
            Ok(IsoTpFrame::Single { .. }) => {
                stats.single += 1;
                true
            }
            Ok(IsoTpFrame::First { .. } | IsoTpFrame::Consecutive { .. }) => {
                stats.multi += 1;
                true
            }
            Ok(IsoTpFrame::FlowControl { .. }) => {
                stats.control += 1;
                false
            }
            Err(_) => {
                stats.unknown += 1;
                false
            }
        },
        Scheme::VwTp => {
            if id.raw() == u32::from(vwtp::SETUP_BROADCAST_ID) {
                stats.control += 1;
                return false;
            }
            match data.first().and_then(|&b| VwOpcode::from_first_byte(b)) {
                Some(op) if op.is_data() => {
                    if op.is_last() {
                        stats.single += 1;
                    } else {
                        stats.multi += 1;
                    }
                    true
                }
                Some(_) => {
                    stats.control += 1;
                    false
                }
                None => {
                    stats.unknown += 1;
                    false
                }
            }
        }
        Scheme::BmwRaw => {
            if data.len() < 2 {
                stats.unknown += 1;
                false
            } else {
                // Without a length field every raw frame is potentially
                // part of a longer message; tally by whether it opens a
                // message that fits entirely in this frame.
                let announced = usize::from(data[1]);
                if announced > 0 && announced <= data.len().saturating_sub(2) {
                    stats.single += 1;
                } else {
                    stats.multi += 1;
                }
                true
            }
        }
    }
}

impl Scheme {
    /// Guesses the transport scheme from a capture's frame statistics —
    /// going one step beyond the paper, which assumes the scheme as
    /// prerequisite domain knowledge (§6, limitation 4).
    ///
    /// Heuristics, in order:
    /// 1. VW TP 2.0 announces itself: channel-setup broadcasts on id
    ///    0x200 with opcode 0xC0, answered by 0xD0.
    /// 2. ISO-TP traffic parses almost entirely as valid SF/FF/CF/FC
    ///    frames with consistent FF/CF pairing.
    /// 3. Otherwise the BMW raw scheme (every frame is addr + payload).
    pub fn detect(log: &BusLog) -> Scheme {
        let mut setup_broadcasts = 0usize;
        let mut isotp_valid = 0usize;
        let mut isotp_invalid = 0usize;
        let mut isotp_ff = 0usize;
        let mut isotp_fc = 0usize;
        for entry in log.iter() {
            let data = entry.frame.data();
            if entry.frame.id().raw() == u32::from(vwtp::SETUP_BROADCAST_ID)
                && data.get(1) == Some(&0xC0)
            {
                setup_broadcasts += 1;
            }
            match IsoTpFrame::parse(data) {
                Ok(IsoTpFrame::First { .. }) => {
                    isotp_ff += 1;
                    isotp_valid += 1;
                }
                Ok(IsoTpFrame::FlowControl { .. }) => {
                    isotp_fc += 1;
                    isotp_valid += 1;
                }
                Ok(_) => isotp_valid += 1,
                Err(_) => isotp_invalid += 1,
            }
        }
        if setup_broadcasts > 0 {
            return Scheme::VwTp;
        }
        let total = isotp_valid + isotp_invalid;
        // Genuine ISO-TP parses nearly everywhere AND shows the
        // first-frame/flow-control dance; BMW raw traffic often parses
        // byte-accidentally as ISO-TP but never produces FC frames.
        if total > 0
            && isotp_valid * 100 >= total * 95
            && (isotp_fc > 0 || isotp_ff == 0)
        {
            Scheme::IsoTp
        } else {
            Scheme::BmwRaw
        }
    }
}

/// Runs the full frames analysis with an auto-detected scheme
/// ([`Scheme::detect`]).
pub fn analyze_capture_auto(log: &BusLog) -> CaptureAnalysis {
    analyze_capture(log, Scheme::detect(log))
}

/// Runs the complete frames analysis (Steps 1–3) over a capture, given the
/// transport scheme the car uses.
pub fn analyze_capture(log: &BusLog, scheme: Scheme) -> CaptureAnalysis {
    let mut stats = FrameStats::default();
    let mut decoders: BTreeMap<CanId, AnyDecoder> = BTreeMap::new();
    let mut messages = Vec::new();
    // Raw frame timestamps fed to each id's decoder since its last
    // completed payload — the per-payload provenance the evidence
    // ledger records. Only maintained while a capture is active.
    let evidence = dpr_evidence::active();
    let mut pending_frames: BTreeMap<CanId, Vec<u64>> = BTreeMap::new();

    for entry in log.iter() {
        let id = entry.frame.id();
        let data = entry.frame.data();
        let unknown_before = stats.unknown;
        if !screen(scheme, id, data, &mut stats) {
            if evidence && stats.unknown > unknown_before {
                record_screen_reject(scheme, id, entry.at);
            }
            continue;
        }
        let decoder = decoders
            .entry(id)
            .or_insert_with(|| AnyDecoder::new(scheme));
        if evidence {
            pending_frames.entry(id).or_default().push(entry.at.as_micros());
        }
        for (nth, payload) in decoder.push(data).into_iter().enumerate() {
            if evidence {
                // The accumulated frames fed the first payload this
                // frame completed; a rare second payload in the same
                // drain was completed by this frame alone.
                let frame_times_us = if nth == 0 {
                    std::mem::take(pending_frames.entry(id).or_default())
                } else {
                    vec![entry.at.as_micros()]
                };
                dpr_evidence::record(dpr_evidence::Event::Reassembled(
                    dpr_evidence::Reassembled {
                        scheme: scheme_tag(scheme).to_string(),
                        id: id.raw(),
                        at_us: entry.at.as_micros(),
                        frame_times_us,
                        len: payload.len() as u32,
                    },
                ));
            }
            messages.push(AssembledMessage {
                at: entry.at,
                id,
                payload,
            });
        }
    }

    let extraction = extract_fields(&messages);
    CaptureAnalysis {
        messages,
        stats,
        extraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_can::{CanBus, CanFrame, Micros};
    use dpr_transport::isotp::IsoTpEndpoint;
    use dpr_transport::{pump, Endpoint};

    /// Builds a capture of one long ISO-TP exchange and checks screening,
    /// assembly, and the Tab. 9-style tally.
    #[test]
    fn isotp_capture_screens_and_assembles() {
        let req = CanId::standard(0x7E0).unwrap();
        let rsp = CanId::standard(0x7E8).unwrap();
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let mut tool = IsoTpEndpoint::new(req, rsp);
        let mut ecu = IsoTpEndpoint::new(rsp, req);

        // Short request, long response.
        tool.send(&[0x22, 0xF4, 0x0D], Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();
        let long_response: Vec<u8> = std::iter::once(0x62u8)
            .chain((0..48).map(|i| i as u8))
            .collect();
        ecu.send(&long_response, bus.now()).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();

        let analysis = analyze_capture(bus.log(), Scheme::IsoTp);
        assert_eq!(analysis.messages.len(), 2);
        assert_eq!(analysis.messages[0].payload, vec![0x22, 0xF4, 0x0D]);
        assert_eq!(analysis.messages[1].payload, long_response);
        // 1 SF + (1 FF + 7 CF) + 1 FC = 10 frames.
        assert_eq!(analysis.stats.single, 1);
        assert_eq!(analysis.stats.multi, 8);
        assert_eq!(analysis.stats.control, 1);
        assert_eq!(analysis.stats.total(), bus.log().len());
    }

    #[test]
    fn vwtp_capture_drops_control_frames() {
        use dpr_transport::vwtp::VwTpEndpoint;
        let tool_tx = CanId::standard(0x740).unwrap();
        let ecu_tx = CanId::standard(0x300).unwrap();
        let mut tool = VwTpEndpoint::initiator(tool_tx, ecu_tx, 0x01);
        let mut ecu = VwTpEndpoint::responder(ecu_tx, tool_tx, 0x01);
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let payload: Vec<u8> = (0..30).collect();
        tool.send(&payload, Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();

        let analysis = analyze_capture(bus.log(), Scheme::VwTp);
        assert_eq!(analysis.messages.len(), 1);
        assert_eq!(analysis.messages[0].payload, payload);
        // Setup request (broadcast), setup response, and ACKs are control.
        assert!(analysis.stats.control >= 2);
        // 30 bytes → 5 data frames: 4 waiting + 1 last.
        assert_eq!(analysis.stats.single, 1);
        assert_eq!(analysis.stats.multi, 4);
    }

    #[test]
    fn bmw_capture_strips_address_bytes() {
        use dpr_transport::bmw::BmwRawEndpoint;
        let tool_tx = CanId::standard(0x6F1).unwrap();
        let ecu_tx = CanId::standard(0x640).unwrap();
        let mut tool = BmwRawEndpoint::new(tool_tx, ecu_tx, 0x40, 0xF1);
        let mut ecu = BmwRawEndpoint::new(ecu_tx, tool_tx, 0xF1, 0x40);
        let mut bus = CanBus::new();
        let tn = bus.attach("tool");
        let en = bus.attach("ecu");
        let payload: Vec<u8> = (0..20).collect();
        tool.send(&payload, Micros::ZERO).unwrap();
        pump(&mut bus, &mut [(tn, &mut tool), (en, &mut ecu)]).unwrap();

        let analysis = analyze_capture(bus.log(), Scheme::BmwRaw);
        assert_eq!(analysis.messages.len(), 1);
        assert_eq!(analysis.messages[0].payload, payload);
    }

    #[test]
    fn malformed_frames_counted_as_unknown() {
        let mut log = BusLog::new();
        let id = CanId::standard(0x123).unwrap();
        log.record(
            Micros::ZERO,
            CanFrame::new(id, &[0xF0, 1, 2]).unwrap(), // reserved PCI
        );
        let analysis = analyze_capture(&log, Scheme::IsoTp);
        assert_eq!(analysis.stats.unknown, 1);
        assert!(analysis.messages.is_empty());
    }

    #[test]
    fn interleaved_ids_assemble_independently() {
        // Two conversations interleaved frame-by-frame must not corrupt
        // each other: per-id decoders.
        let id_a = CanId::standard(0x7E8).unwrap();
        let id_b = CanId::standard(0x7E9).unwrap();
        let mut log = BusLog::new();
        // Message A: FF announcing 12 bytes + 1 CF; message B: SF.
        log.record(
            Micros::from_micros(1),
            CanFrame::new(id_a, &[0x10, 12, 1, 2, 3, 4, 5, 6]).unwrap(),
        );
        log.record(
            Micros::from_micros(2),
            CanFrame::new_padded(id_b, &[0x02, 0x50, 0x01], 0x55).unwrap(),
        );
        log.record(
            Micros::from_micros(3),
            CanFrame::new(id_a, &[0x21, 7, 8, 9, 10, 11, 12]).unwrap(),
        );
        let analysis = analyze_capture(&log, Scheme::IsoTp);
        assert_eq!(analysis.messages.len(), 2);
        // Completion order: B's SF first, then A's CF completes A.
        assert_eq!(analysis.messages[0].id, id_b);
        assert_eq!(analysis.messages[1].id, id_a);
        assert_eq!(analysis.messages[1].payload.len(), 12);
    }
}
