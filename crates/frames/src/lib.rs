//! Diagnostic frames analysis — the paper's §3.2 pipeline.
//!
//! Takes the raw OBD-port capture and produces the per-signal raw-value
//! series and control records the reverse-engineering stages consume:
//!
//! * **Step 1, screening** — remove frames that carry no diagnostic
//!   payload (ISO-TP flow control; VW TP broadcast/setup/parameter/ACK
//!   frames), counting frame types on the way (that count *is* the
//!   paper's Tab. 9).
//! * **Step 2, assembling** — reassemble multi-frame payloads per CAN id
//!   with the scheme-specific stream decoders from `dpr-transport`.
//! * **Step 3, field extraction** — parse assembled payloads as
//!   UDS / KWP 2000 / OBD-II messages, pair read responses with their
//!   requests (splitting multi-DID records by the request's DID list),
//!   and extract ESV raw values and ECU-control records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod extract;
mod stats;

pub use analysis::{analyze_capture, analyze_capture_auto, AssembledMessage, CaptureAnalysis, Scheme};
pub use extract::{
    extract_fields, ControlProcedure, EcrObservation, EcrTarget, EsvSeries, Extraction,
    SourceKey,
};
pub use stats::FrameStats;
