//! KWP 2000 (Keyword Protocol 2000) request and response messages.
//!
//! Covers the three services of the paper's Figs. 2–3:
//!
//! * *read data by local identifier* (0x21) — the response carries 1..m
//!   three-byte ECU signal values (`ESV`s) `[formula-type, X0, X1]`;
//! * *input output control by local identifier* (0x30);
//! * *input output control by common identifier* (0x2F).
//!
//! The first byte of each ESV selects a proprietary formula; the
//! [`FormulaTypeTable`] models the manufacturer's (hidden) mapping from that
//! byte to a formula over `X0`/`X1`. The table shipped by
//! [`FormulaTypeTable::standard`] is modelled on the Volkswagen measuring
//! block formulas and includes every shape the paper discusses (`X0*X1/5`
//! engine speed, `0.01*X0*X1` vehicle speed, the signed
//! `X0*(X1-128)*0.001` torque assistance, identity, offsets, inverses).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{EsvFormula, ProtocolError};

/// A one-byte KWP 2000 local identifier.
///
/// Like UDS DIDs, the values and meanings of local identifiers are
/// manufacturer-proprietary — one of the paper's three reverse-engineering
/// targets for KWP 2000.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocalId(pub u8);

impl std::fmt::Display for LocalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

/// One raw three-byte ESV from a `read data by local identifier` response:
/// formula type plus the two raw values (paper §2.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RawEsv {
    /// The formula-type byte (`F_type`).
    pub f_type: u8,
    /// First raw value.
    pub x0: u8,
    /// Second raw value.
    pub x1: u8,
}

impl RawEsv {
    /// The three on-wire bytes.
    pub fn to_bytes(self) -> [u8; 3] {
        [self.f_type, self.x0, self.x1]
    }
}

/// The manufacturer's mapping from formula-type byte to formula.
///
/// Diagnostic tools embed this table; DP-Reverser recovers its entries from
/// the outside by correlating raw `X0`/`X1` with displayed values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormulaTypeTable {
    entries: BTreeMap<u8, EsvFormula>,
}

/// The formula-type byte used for enumerations (no formula).
pub const ENUM_TYPE: u8 = 0x10;

impl FormulaTypeTable {
    /// An empty table.
    pub fn empty() -> Self {
        FormulaTypeTable {
            entries: BTreeMap::new(),
        }
    }

    /// The representative table used by the simulated Volkswagen-group
    /// vehicles. Each entry's shape is documented with the signal family it
    /// typically encodes.
    pub fn standard() -> Self {
        let mut entries = BTreeMap::new();
        // 0x01: engine speed — the paper's example formula X0*X1/5.
        entries.insert(0x01, EsvFormula::Product { a: 0.2, b: 0.0 });
        // 0x02: duty cycle / percentage — 0.002*X0*X1.
        entries.insert(0x02, EsvFormula::Product { a: 0.002, b: 0.0 });
        // 0x03: injection timing — 0.001*X0*X1 (mV family).
        entries.insert(0x03, EsvFormula::Product { a: 0.001, b: 0.0 });
        // 0x04: signed torque assistance — X0*(X1-128)*0.001; the paper's
        // Torque Assistance example collapses to ±0.001*X0 for X1 ∈
        // {0x7F, 0x81}.
        entries.insert(0x04, EsvFormula::OffsetProduct { a: 0.001, k: 128.0 });
        // 0x05: temperature — 0.1*X0*(X1-100).
        entries.insert(0x05, EsvFormula::OffsetProduct { a: 0.1, k: 100.0 });
        // 0x06: voltage — 0.01*X0*X1.
        entries.insert(0x06, EsvFormula::Product { a: 0.01, b: 0.0 });
        // 0x07: vehicle speed — 0.01*X0*X1; with the scale byte X0 fixed at
        // 100 this is the paper's "Y = X1" Vehicle Speed example.
        entries.insert(0x07, EsvFormula::Product { a: 0.01, b: 0.0 });
        // 0x08: lateral acceleration — 25.5*X0 + 0.01*X1; in the paper's
        // capture X0 was always zero, collapsing the formula to 0.01*X1.
        entries.insert(0x08, EsvFormula::Affine2 { a: 25.5, b: 0.01, c: 0.0 });
        // 0x09: identity (Car F engine speed: Y = X).
        entries.insert(0x09, EsvFormula::IDENTITY);
        // 0x0A: half-scale (Car L coolant temperature: Y = 0.5*X).
        entries.insert(0x0A, EsvFormula::Linear { a: 0.5, b: 0.0 });
        // 0x0B: offset temperature — X0 - 40.
        entries.insert(0x0B, EsvFormula::Linear { a: 1.0, b: -40.0 });
        // 0x0C: period→frequency — 1000/X0.
        entries.insert(0x0C, EsvFormula::Inverse { a: 1000.0, b: 0.0 });
        // 0x0D: quadratic airflow — 0.01*X0².
        entries.insert(0x0D, EsvFormula::Square { a: 0.01, b: 0.0 });
        // 0x0E: two-byte engine speed — 64*X0 + 0.25*X1 (Car R's
        // Y = 64.1*X0 + 0.241*X1 in Tab. 7 is this entry as recovered
        // by GP within tolerance).
        entries.insert(0x0E, EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 });
        // 0x0F: fuel trim percentage — 0.78125*X0 - 100.
        entries.insert(0x0F, EsvFormula::Linear { a: 0.78125, b: -100.0 });
        // ENUM_TYPE: enumeration, no formula (door open/closed …).
        entries.insert(ENUM_TYPE, EsvFormula::Enumeration);
        FormulaTypeTable { entries }
    }

    /// Looks up the formula for a type byte.
    pub fn get(&self, f_type: u8) -> Option<&EsvFormula> {
        self.entries.get(&f_type)
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, f_type: u8, formula: EsvFormula) {
        self.entries.insert(f_type, formula);
    }

    /// Decodes a raw ESV into its physical value, if the type is known.
    pub fn decode(&self, esv: RawEsv) -> Option<f64> {
        self.get(esv.f_type)
            .map(|f| f.eval(f64::from(esv.x0), f64::from(esv.x1)))
    }

    /// Iterates over `(type byte, formula)` entries in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &EsvFormula)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for FormulaTypeTable {
    fn default() -> Self {
        Self::standard()
    }
}

/// A KWP 2000 request message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KwpRequest {
    /// 0x21 — read data by local identifier (Fig. 3).
    ReadDataByLocalId {
        /// The record to read.
        local_id: LocalId,
    },
    /// 0x30 — input output control by local identifier (Fig. 2). The ECR
    /// ("ECU Control Record") carries everything the actuator needs.
    IoControlByLocalId {
        /// The actuator's local identifier.
        local_id: LocalId,
        /// The ECU control record.
        ecr: Vec<u8>,
    },
    /// 0x2F — input output control by common identifier (Fig. 2, right).
    IoControlByCommonId {
        /// The two-byte common identifier.
        common_id: u16,
        /// The ECU control record.
        ecr: Vec<u8>,
    },
    /// 0x10 — start diagnostic session.
    StartDiagnosticSession {
        /// Session type byte.
        session: u8,
    },
}

impl KwpRequest {
    /// Serializes the request to its on-wire payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KwpRequest::ReadDataByLocalId { local_id } => vec![0x21, local_id.0],
            KwpRequest::IoControlByLocalId { local_id, ecr } => {
                let mut out = vec![0x30, local_id.0];
                out.extend_from_slice(ecr);
                out
            }
            KwpRequest::IoControlByCommonId { common_id, ecr } => {
                let mut out = vec![0x2F];
                out.extend_from_slice(&common_id.to_be_bytes());
                out.extend_from_slice(ecr);
                out
            }
            KwpRequest::StartDiagnosticSession { session } => vec![0x10, *session],
        }
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for truncated or unknown requests.
    pub fn parse(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (&sid, rest) = payload.split_first().ok_or(ProtocolError::TooShort {
            what: "KWP request",
            need: 1,
            got: 0,
        })?;
        match sid {
            0x21 => rest
                .first()
                .map(|&id| KwpRequest::ReadDataByLocalId {
                    local_id: LocalId(id),
                })
                .ok_or(ProtocolError::TooShort {
                    what: "read-data-by-local-id request",
                    need: 2,
                    got: 1,
                }),
            0x30 => {
                if rest.is_empty() {
                    return Err(ProtocolError::TooShort {
                        what: "IO-control-by-local-id request",
                        need: 2,
                        got: 1,
                    });
                }
                Ok(KwpRequest::IoControlByLocalId {
                    local_id: LocalId(rest[0]),
                    ecr: rest[1..].to_vec(),
                })
            }
            0x2F => {
                if rest.len() < 2 {
                    return Err(ProtocolError::TooShort {
                        what: "IO-control-by-common-id request",
                        need: 3,
                        got: payload.len(),
                    });
                }
                Ok(KwpRequest::IoControlByCommonId {
                    common_id: u16::from_be_bytes([rest[0], rest[1]]),
                    ecr: rest[2..].to_vec(),
                })
            }
            0x10 => rest
                .first()
                .map(|&s| KwpRequest::StartDiagnosticSession { session: s })
                .ok_or(ProtocolError::TooShort {
                    what: "start-diagnostic-session request",
                    need: 2,
                    got: 1,
                }),
            other => Err(ProtocolError::WrongService {
                expected: 0x21,
                got: other,
            }),
        }
    }
}

/// A KWP 2000 response message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KwpResponse {
    /// Positive response to read data by local identifier: the local id
    /// echoed, then 1..m three-byte ESVs (Fig. 3).
    ReadDataByLocalId {
        /// Echoed local identifier.
        local_id: LocalId,
        /// The raw signal values.
        esvs: Vec<RawEsv>,
    },
    /// Positive response to IO control by local identifier.
    IoControlByLocalId {
        /// Echoed local identifier.
        local_id: LocalId,
        /// Control status bytes.
        status: Vec<u8>,
    },
    /// Positive response to IO control by common identifier.
    IoControlByCommonId {
        /// Echoed common identifier.
        common_id: u16,
        /// Control status bytes.
        status: Vec<u8>,
    },
    /// Positive response to start diagnostic session.
    StartDiagnosticSession {
        /// Granted session type.
        session: u8,
    },
    /// Negative response (`7F sid code`).
    Negative {
        /// Rejected SID.
        sid: u8,
        /// Response code.
        code: u8,
    },
}

impl KwpResponse {
    /// Serializes the response to its on-wire payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KwpResponse::ReadDataByLocalId { local_id, esvs } => {
                let mut out = vec![0x61, local_id.0];
                for esv in esvs {
                    out.extend_from_slice(&esv.to_bytes());
                }
                out
            }
            KwpResponse::IoControlByLocalId { local_id, status } => {
                let mut out = vec![0x70, local_id.0];
                out.extend_from_slice(status);
                out
            }
            KwpResponse::IoControlByCommonId { common_id, status } => {
                let mut out = vec![0x6F];
                out.extend_from_slice(&common_id.to_be_bytes());
                out.extend_from_slice(status);
                out
            }
            KwpResponse::StartDiagnosticSession { session } => vec![0x50, *session],
            KwpResponse::Negative { sid, code } => vec![0x7F, *sid, *code],
        }
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for truncated messages or a
    /// read-data-by-local-id body whose length is not a multiple of three.
    pub fn parse(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (&first, rest) = payload.split_first().ok_or(ProtocolError::TooShort {
            what: "KWP response",
            need: 1,
            got: 0,
        })?;
        match first {
            0x61 => {
                if rest.is_empty() {
                    return Err(ProtocolError::TooShort {
                        what: "read-data-by-local-id response",
                        need: 2,
                        got: 1,
                    });
                }
                let body = &rest[1..];
                if body.is_empty() || body.len() % 3 != 0 {
                    return Err(ProtocolError::Malformed(format!(
                        "ESV body of {} bytes is not a positive multiple of 3",
                        body.len()
                    )));
                }
                let esvs = body
                    .chunks_exact(3)
                    .map(|c| RawEsv {
                        f_type: c[0],
                        x0: c[1],
                        x1: c[2],
                    })
                    .collect();
                Ok(KwpResponse::ReadDataByLocalId {
                    local_id: LocalId(rest[0]),
                    esvs,
                })
            }
            0x70 => {
                if rest.is_empty() {
                    return Err(ProtocolError::TooShort {
                        what: "IO-control-by-local-id response",
                        need: 2,
                        got: 1,
                    });
                }
                Ok(KwpResponse::IoControlByLocalId {
                    local_id: LocalId(rest[0]),
                    status: rest[1..].to_vec(),
                })
            }
            0x6F => {
                if rest.len() < 2 {
                    return Err(ProtocolError::TooShort {
                        what: "IO-control-by-common-id response",
                        need: 3,
                        got: payload.len(),
                    });
                }
                Ok(KwpResponse::IoControlByCommonId {
                    common_id: u16::from_be_bytes([rest[0], rest[1]]),
                    status: rest[2..].to_vec(),
                })
            }
            0x50 => rest
                .first()
                .map(|&s| KwpResponse::StartDiagnosticSession { session: s })
                .ok_or(ProtocolError::TooShort {
                    what: "start-diagnostic-session response",
                    need: 2,
                    got: 1,
                }),
            0x7F => {
                if rest.len() < 2 {
                    return Err(ProtocolError::TooShort {
                        what: "negative response",
                        need: 3,
                        got: payload.len(),
                    });
                }
                Ok(KwpResponse::Negative {
                    sid: rest[0],
                    code: rest[1],
                })
            }
            other => Err(ProtocolError::WrongService {
                expected: 0x61,
                got: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_engine_rpm_example_decodes() {
        // Paper §2.3.1: ESV "01 F1 10" with formula X0*X1/5 → 771.2.
        let table = FormulaTypeTable::standard();
        let esv = RawEsv {
            f_type: 0x01,
            x0: 0xF1,
            x1: 0x10,
        };
        let value = table.decode(esv).unwrap();
        assert!((value - 771.2).abs() < 1e-9);
    }

    #[test]
    fn paper_light_control_messages_encode_exactly() {
        // Paper §2.3.1: "30 15 00 40 00" turns the light on.
        let on = KwpRequest::IoControlByLocalId {
            local_id: LocalId(0x15),
            ecr: vec![0x00, 0x40, 0x00],
        };
        assert_eq!(on.encode(), vec![0x30, 0x15, 0x00, 0x40, 0x00]);
        let off = KwpRequest::IoControlByLocalId {
            local_id: LocalId(0x15),
            ecr: vec![0x00, 0x00, 0x00],
        };
        assert_eq!(off.encode(), vec![0x30, 0x15, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn request_round_trips() {
        let samples = vec![
            KwpRequest::ReadDataByLocalId {
                local_id: LocalId(0x07),
            },
            KwpRequest::IoControlByLocalId {
                local_id: LocalId(0x15),
                ecr: vec![0x00, 0x40, 0x00],
            },
            KwpRequest::IoControlByCommonId {
                common_id: 0x0950,
                ecr: vec![0x03, 0x05],
            },
            KwpRequest::StartDiagnosticSession { session: 0x89 },
        ];
        for req in samples {
            assert_eq!(KwpRequest::parse(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let samples = vec![
            KwpResponse::ReadDataByLocalId {
                local_id: LocalId(0x07),
                esvs: vec![
                    RawEsv { f_type: 1, x0: 0xF1, x1: 0x10 },
                    RawEsv { f_type: 7, x0: 100, x1: 33 },
                ],
            },
            KwpResponse::IoControlByLocalId {
                local_id: LocalId(0x15),
                status: vec![0x01],
            },
            KwpResponse::IoControlByCommonId {
                common_id: 0xB003,
                status: vec![],
            },
            KwpResponse::StartDiagnosticSession { session: 0x89 },
            KwpResponse::Negative { sid: 0x21, code: 0x12 },
        ];
        for rsp in samples {
            assert_eq!(KwpResponse::parse(&rsp.encode()).unwrap(), rsp);
        }
    }

    #[test]
    fn esv_body_must_be_multiple_of_three() {
        assert!(KwpResponse::parse(&[0x61, 0x07, 1, 2]).is_err());
        assert!(KwpResponse::parse(&[0x61, 0x07]).is_err());
    }

    #[test]
    fn standard_table_covers_paper_shapes() {
        let table = FormulaTypeTable::standard();
        assert!(table.len() >= 14, "paper cites 14 supported functions");
        // Torque assistance: X1 = 0x7F → negative scale, 0x81 → positive.
        let torque = table.get(0x04).unwrap();
        assert!((torque.eval(500.0, 127.0) - (-0.5)).abs() < 1e-9);
        assert!((torque.eval(500.0, 129.0) - 0.5).abs() < 1e-9);
        // Vehicle speed with scale byte 100: Y = X1.
        let speed = table.get(0x07).unwrap();
        assert_eq!(speed.eval(100.0, 88.0), 88.0);
        // Enumeration type has no formula.
        assert!(!table.get(ENUM_TYPE).unwrap().has_formula());
    }

    #[test]
    fn unknown_type_decodes_to_none() {
        let table = FormulaTypeTable::standard();
        assert_eq!(
            table.decode(RawEsv { f_type: 0xEE, x0: 1, x1: 2 }),
            None
        );
    }

    #[test]
    fn custom_table_entries() {
        let mut table = FormulaTypeTable::empty();
        assert!(table.is_empty());
        table.insert(0x42, EsvFormula::Linear { a: 2.0, b: 1.0 });
        assert_eq!(
            table.decode(RawEsv { f_type: 0x42, x0: 10, x1: 0 }),
            Some(21.0)
        );
        assert_eq!(table.iter().count(), 1);
    }
}
