//! Physical quantities: names, units, and plausible ranges.
//!
//! The paper's OCR post-processing (§3.3) filters extracted sensor values
//! against "a normal value range for each type of ESV"; the tool UI renders
//! values with a unit; and the vehicle simulator generates signals inside a
//! plausible range. `Quantity` carries that shared metadata.

use serde::{Deserialize, Serialize};

/// A physical quantity with display metadata and a plausible value range.
///
/// # Example
///
/// ```
/// use dpr_protocol::Quantity;
///
/// let rpm = Quantity::new("Engine Speed", "rpm", 0.0, 8000.0).with_decimals(0);
/// assert!(rpm.contains(771.2));
/// assert!(!rpm.contains(20_000.0));
/// assert_eq!(rpm.render(771.2), "771");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantity {
    name: String,
    unit: String,
    min: f64,
    max: f64,
    decimals: u8,
}

impl Quantity {
    /// Creates a quantity with the given plausible range and one decimal
    /// digit of display precision.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is not finite.
    pub fn new(name: impl Into<String>, unit: impl Into<String>, min: f64, max: f64) -> Self {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(min <= max, "min must not exceed max");
        Quantity {
            name: name.into(),
            unit: unit.into(),
            min,
            max,
            decimals: 1,
        }
    }

    /// Sets the number of decimal digits the tool UI displays.
    pub fn with_decimals(mut self, decimals: u8) -> Self {
        self.decimals = decimals;
        self
    }

    /// The human-readable quantity name (what the tool UI labels the row).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The display unit.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Lower bound of the plausible range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the plausible range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Display decimals.
    pub fn decimals(&self) -> u8 {
        self.decimals
    }

    /// Whether `value` lies inside the plausible range (inclusive) — the
    /// first stage of the paper's incorrect-ESV filter.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.min && value <= self.max
    }

    /// Clamps a value into the plausible range.
    pub fn clamp(&self, value: f64) -> f64 {
        value.clamp(self.min, self.max)
    }

    /// Renders a value the way the tool UI would print it (fixed decimals,
    /// no unit).
    pub fn render(&self, value: f64) -> String {
        format!("{value:.*}", usize::from(self.decimals))
    }

    /// Midpoint of the range — a convenient "typical" value.
    pub fn midpoint(&self) -> f64 {
        (self.min + self.max) / 2.0
    }
}

impl std::fmt::Display for Quantity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.name, self.unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_check_is_inclusive() {
        let q = Quantity::new("Coolant", "degC", -40.0, 215.0);
        assert!(q.contains(-40.0));
        assert!(q.contains(215.0));
        assert!(!q.contains(-40.1));
        assert!(!q.contains(215.1));
    }

    #[test]
    fn render_respects_decimals() {
        let q = Quantity::new("Load", "%", 0.0, 100.0).with_decimals(2);
        assert_eq!(q.render(33.333), "33.33");
        let q0 = Quantity::new("Speed", "km/h", 0.0, 300.0).with_decimals(0);
        assert_eq!(q0.render(88.6), "89");
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_bounds_panic() {
        let _ = Quantity::new("bad", "x", 5.0, 1.0);
    }

    #[test]
    fn display_and_midpoint() {
        let q = Quantity::new("Throttle", "%", 0.0, 100.0);
        assert_eq!(q.to_string(), "Throttle [%]");
        assert_eq!(q.midpoint(), 50.0);
        assert_eq!(q.clamp(150.0), 100.0);
    }
}
