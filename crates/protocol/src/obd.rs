//! OBD-II (SAE J1979) mode 01 — the well-documented baseline protocol.
//!
//! The paper does *not* reverse engineer OBD-II (its formulas are public),
//! but uses it in two load-bearing ways that this module supports:
//!
//! * **Ground truth** (Tab. 5): the standard formulas let the authors check
//!   the GP engine's output against known answers with a simulated vehicle
//!   and the "ChevroSys Scan Free" telematics app.
//! * **Time alignment** (§9.4): because OBD-II responses can be decoded
//!   without reverse engineering, matching a decoded value against the
//!   value shown on screen yields the clock offset between the CAN capture
//!   and the UI video.

use serde::{Deserialize, Serialize};

use crate::{EsvFormula, ProtocolError, Quantity};

/// A one-byte OBD-II parameter id (mode 01).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pid(pub u8);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

/// The full specification of one mode-01 PID: its name, response width,
/// standard decoding formula, and plausible range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PidSpec {
    /// The parameter id.
    pub pid: Pid,
    /// Number of data bytes in the response.
    pub bytes: usize,
    /// The SAE J1979 decoding formula over the response bytes `A` (=X0)
    /// and `B` (=X1).
    pub formula: EsvFormula,
    /// Name, unit, plausible range.
    pub quantity: Quantity,
}

impl PidSpec {
    /// Decodes raw response data bytes into the physical value.
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than [`bytes`](Self::bytes).
    pub fn decode(&self, data: &[u8]) -> f64 {
        assert!(data.len() >= self.bytes, "short PID data");
        let x0 = f64::from(data[0]);
        let x1 = if self.bytes > 1 { f64::from(data[1]) } else { 0.0 };
        self.formula.eval(x0, x1)
    }

    /// Encodes a physical value into response data bytes (the vehicle
    /// simulator's direction). For two-byte PIDs the low byte (`B`) is
    /// computed from the residual where the formula permits, otherwise
    /// fixed at 128 — reproducing the paper's observation that the real
    /// Engine Speed traffic had `X1 ≡ 128`.
    pub fn encode(&self, value: f64) -> Vec<u8> {
        match self.formula {
            EsvFormula::Affine2 { a, b, c } if self.bytes == 2 && a != 0.0 => {
                let x1 = 128.0;
                let x0 = ((value - c - b * x1) / a).round().clamp(0.0, 255.0);
                vec![x0 as u8, x1 as u8]
            }
            _ => {
                let x0 = self
                    .formula
                    .encode_x0(value, 0.0)
                    .unwrap_or(0.0)
                    .round()
                    .clamp(0.0, 255.0);
                let mut out = vec![x0 as u8];
                out.resize(self.bytes, 0);
                out
            }
        }
    }
}

/// The standard mode-01 PID table (the subset the evaluation uses, led by
/// the seven PIDs of the paper's Tab. 5).
pub fn standard_pids() -> Vec<PidSpec> {
    vec![
        // ——— the seven PIDs of Tab. 5 ———
        PidSpec {
            pid: Pid(0x04),
            bytes: 1,
            formula: EsvFormula::Linear { a: 100.0 / 255.0, b: 0.0 },
            quantity: Quantity::new("Calculated Engine Load", "%", 0.0, 100.0),
        },
        PidSpec {
            pid: Pid(0x05),
            bytes: 1,
            formula: EsvFormula::Linear { a: 1.0, b: -40.0 },
            quantity: Quantity::new("Engine Coolant Temperature", "degC", -40.0, 215.0)
                .with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x0B),
            bytes: 1,
            formula: EsvFormula::IDENTITY,
            quantity: Quantity::new("Intake Manifold Absolute Pressure", "kPa", 0.0, 255.0)
                .with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x0C),
            bytes: 2,
            formula: EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 },
            quantity: Quantity::new("Engine Speed", "rpm", 0.0, 16383.75).with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x0D),
            bytes: 1,
            formula: EsvFormula::IDENTITY,
            quantity: Quantity::new("Vehicle Speed", "km/h", 0.0, 255.0).with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x11),
            bytes: 1,
            formula: EsvFormula::Linear { a: 100.0 / 255.0, b: 0.0 },
            quantity: Quantity::new("Absolute Throttle Position", "%", 0.0, 100.0),
        },
        PidSpec {
            pid: Pid(0x2F),
            bytes: 1,
            formula: EsvFormula::Linear { a: 100.0 / 255.0, b: 0.0 },
            quantity: Quantity::new("Fuel Tank Level Input", "%", 0.0, 100.0),
        },
        // ——— additional commonly polled PIDs ———
        PidSpec {
            pid: Pid(0x0F),
            bytes: 1,
            formula: EsvFormula::Linear { a: 1.0, b: -40.0 },
            quantity: Quantity::new("Intake Air Temperature", "degC", -40.0, 215.0)
                .with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x10),
            bytes: 2,
            formula: EsvFormula::Affine2 { a: 2.56, b: 0.01, c: 0.0 },
            quantity: Quantity::new("MAF Air Flow Rate", "g/s", 0.0, 655.35).with_decimals(2),
        },
        PidSpec {
            pid: Pid(0x33),
            bytes: 1,
            formula: EsvFormula::IDENTITY,
            quantity: Quantity::new("Absolute Barometric Pressure", "kPa", 0.0, 255.0)
                .with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x42),
            bytes: 2,
            formula: EsvFormula::Affine2 { a: 0.256, b: 0.001, c: 0.0 },
            quantity: Quantity::new("Control Module Voltage", "V", 0.0, 65.535).with_decimals(3),
        },
        PidSpec {
            pid: Pid(0x46),
            bytes: 1,
            formula: EsvFormula::Linear { a: 1.0, b: -40.0 },
            quantity: Quantity::new("Ambient Air Temperature", "degC", -40.0, 215.0)
                .with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x0A),
            bytes: 1,
            formula: EsvFormula::Linear { a: 3.0, b: 0.0 },
            quantity: Quantity::new("Fuel Pressure", "kPa", 0.0, 765.0).with_decimals(0),
        },
        PidSpec {
            pid: Pid(0x5C),
            bytes: 1,
            formula: EsvFormula::Linear { a: 1.0, b: -40.0 },
            quantity: Quantity::new("Engine Oil Temperature", "degC", -40.0, 215.0)
                .with_decimals(0),
        },
    ]
}

/// Looks up a PID in the standard table.
pub fn pid_spec(pid: Pid) -> Option<PidSpec> {
    standard_pids().into_iter().find(|s| s.pid == pid)
}

/// Encodes a mode-01 request (`01 <pid>`).
pub fn encode_request(pid: Pid) -> Vec<u8> {
    vec![0x01, pid.0]
}

/// Parses a mode-01 request; returns the requested PID.
///
/// # Errors
///
/// Returns [`ProtocolError`] if the payload is not a mode-01 request.
pub fn parse_request(payload: &[u8]) -> Result<Pid, ProtocolError> {
    match payload {
        [0x01, pid, ..] => Ok(Pid(*pid)),
        [other, ..] if *other != 0x01 => Err(ProtocolError::WrongService {
            expected: 0x01,
            got: *other,
        }),
        _ => Err(ProtocolError::TooShort {
            what: "OBD-II request",
            need: 2,
            got: payload.len(),
        }),
    }
}

/// Encodes a mode-01 response (`41 <pid> <data…>`).
pub fn encode_response(pid: Pid, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + data.len());
    out.push(0x41);
    out.push(pid.0);
    out.extend_from_slice(data);
    out
}

/// Parses a mode-01 response into `(PID, data bytes)`.
///
/// # Errors
///
/// Returns [`ProtocolError`] if the payload is not a mode-01 positive
/// response.
pub fn parse_response(payload: &[u8]) -> Result<(Pid, &[u8]), ProtocolError> {
    match payload {
        [0x41, pid, data @ ..] if !data.is_empty() => Ok((Pid(*pid), data)),
        [0x41, ..] => Err(ProtocolError::TooShort {
            what: "OBD-II response",
            need: 3,
            got: payload.len(),
        }),
        [other, ..] => Err(ProtocolError::WrongService {
            expected: 0x41,
            got: *other,
        }),
        [] => Err(ProtocolError::TooShort {
            what: "OBD-II response",
            need: 3,
            got: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_pids_present_with_correct_formulas() {
        // Tab. 5 request messages: 01 11, 01 04, 01 2F, 01 0C, 01 0D,
        // 01 05, 01 0B.
        for pid in [0x11u8, 0x04, 0x2F, 0x0C, 0x0D, 0x05, 0x0B] {
            assert!(pid_spec(Pid(pid)).is_some(), "PID {pid:#x} missing");
        }
        // Coolant: Y = X - 40 at X = 0xA0 → 120 °C.
        assert_eq!(pid_spec(Pid(0x05)).unwrap().decode(&[0xA0]), 120.0);
        // RPM: (256A + B)/4.
        assert_eq!(
            pid_spec(Pid(0x0C)).unwrap().decode(&[0x1A, 0xF0]),
            (256.0 * 26.0 + 240.0) / 4.0
        );
        // Throttle: X/2.55 at 0xFF → 100%.
        assert!((pid_spec(Pid(0x11)).unwrap().decode(&[0xFF]) - 100.0).abs() < 1e-9);
        // Fuel level: 100X/255 ≈ 0.392X.
        assert!((pid_spec(Pid(0x2F)).unwrap().decode(&[100]) - 39.2156).abs() < 1e-3);
    }

    #[test]
    fn encode_decode_round_trip_within_quantization() {
        for spec in standard_pids() {
            let q = &spec.quantity;
            for frac in [0.1, 0.35, 0.6, 0.9] {
                let value = q.min() + (q.max() - q.min()) * frac;
                let data = spec.encode(value);
                assert_eq!(data.len(), spec.bytes, "{}", q.name());
                let back = spec.decode(&data);
                // One raw step of quantization error is allowed.
                let step = match spec.formula {
                    EsvFormula::Affine2 { a, .. } => a.abs(),
                    EsvFormula::Linear { a, .. } => a.abs(),
                    _ => 1.0,
                };
                assert!(
                    (back - value).abs() <= step + 1e-9,
                    "{}: {value} -> {data:?} -> {back}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn rpm_encoding_pins_x1_at_128() {
        // Reproduces the paper's observation that X1 was constant 128 in
        // the real Engine Speed traffic, which makes the ground-truth
        // formula collapse to Y = 64*X0 + 32.
        let spec = pid_spec(Pid(0x0C)).unwrap();
        for rpm in [800.0, 2000.0, 4500.0] {
            let data = spec.encode(rpm);
            assert_eq!(data[1], 128);
        }
    }

    #[test]
    fn request_response_round_trip() {
        let req = encode_request(Pid(0x0C));
        assert_eq!(req, vec![0x01, 0x0C]);
        assert_eq!(parse_request(&req).unwrap(), Pid(0x0C));

        let rsp = encode_response(Pid(0x0C), &[0x1A, 0xF0]);
        assert_eq!(rsp, vec![0x41, 0x0C, 0x1A, 0xF0]);
        let (pid, data) = parse_response(&rsp).unwrap();
        assert_eq!(pid, Pid(0x0C));
        assert_eq!(data, &[0x1A, 0xF0]);
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(parse_request(&[0x01]).is_err());
        assert!(parse_request(&[0x22, 0x0C]).is_err());
        assert!(parse_response(&[0x41, 0x0C]).is_err());
        assert!(parse_response(&[0x62, 0x0C, 0x01]).is_err());
        assert!(parse_response(&[]).is_err());
    }

    #[test]
    fn all_specs_have_consistent_metadata() {
        for spec in standard_pids() {
            assert!(spec.bytes >= 1 && spec.bytes <= 2);
            assert!(spec.quantity.min() < spec.quantity.max());
            // The decoded extremes must fall inside the plausible range.
            let lo = spec.decode(&vec![0x00; spec.bytes]);
            assert!(
                spec.quantity.contains(lo),
                "{}: decoded min {lo} outside range",
                spec.quantity.name()
            );
        }
    }
}
