//! Closed-form ESV formulas — the proprietary mappings DP-Reverser recovers.
//!
//! A diagnostic response carries raw bytes; the tool multiplies/offsets them
//! into the physical value shown on screen. Manufacturers keep these
//! formulas proprietary; this module is the *ground-truth* representation
//! used by the vehicle simulator (to encode sensor values into response
//! bytes) and the tool simulator (to decode them for display). The genetic
//! programming engine in `dpr-gp` infers free-form expressions that are
//! compared against these numerically.

use serde::{Deserialize, Serialize};

/// A closed-form formula mapping one or two raw response values to a
/// physical ESV, `Y = f(X0, X1)`.
///
/// The shapes cover everything the paper reports (Tabs. 5 and 7 and the
/// KWP 2000 formula-type examples): linear single-variable, affine
/// two-variable, the multiplicative `X0*X1` family, squares, and inverses.
///
/// # Example
///
/// ```
/// use dpr_protocol::EsvFormula;
///
/// // Engine RPM on the paper's Car K: Y = X0 * X1 / 5.
/// let rpm = EsvFormula::Product { a: 0.2, b: 0.0 };
/// assert_eq!(rpm.eval(241.0, 16.0), 241.0 * 16.0 / 5.0);
/// assert_eq!(rpm.to_string(), "Y = 0.2*X0*X1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EsvFormula {
    /// `Y = a*X0 + b` — the ubiquitous scale-and-offset form.
    Linear {
        /// Scale factor.
        a: f64,
        /// Offset.
        b: f64,
    },
    /// `Y = a*X0 + b*X1 + c` — two-variable affine (e.g. the OBD-II RPM
    /// formula `(256*X0 + X1) / 4 = 64*X0 + 0.25*X1`).
    Affine2 {
        /// Coefficient of `X0`.
        a: f64,
        /// Coefficient of `X1`.
        b: f64,
        /// Offset.
        c: f64,
    },
    /// `Y = a*X0*X1 + b` — the multiplicative family common in KWP 2000
    /// measuring blocks (`X0*X1/5` is `a = 0.2`).
    Product {
        /// Coefficient of `X0*X1`.
        a: f64,
        /// Offset.
        b: f64,
    },
    /// `Y = a*X0² + b` — quadratic single-variable.
    Square {
        /// Coefficient of `X0²`.
        a: f64,
        /// Offset.
        b: f64,
    },
    /// `Y = a/X0 + b` — inverse single-variable (division by zero yields 0).
    Inverse {
        /// Numerator.
        a: f64,
        /// Offset.
        b: f64,
    },
    /// `Y = a*X0*(X1 - k)` — offset-product (VW-style temperature blocks).
    OffsetProduct {
        /// Scale factor.
        a: f64,
        /// Offset subtracted from `X1`.
        k: f64,
    },
    /// No formula: the raw value is an enumeration (door open/closed …).
    /// Paper Tab. 6 calls these "ESV (Enum)".
    Enumeration,
}

impl EsvFormula {
    /// The identity formula `Y = X0`.
    pub const IDENTITY: EsvFormula = EsvFormula::Linear { a: 1.0, b: 0.0 };

    /// Evaluates the formula on raw values `x0`, `x1` (unused variables are
    /// ignored; [`Enumeration`](Self::Enumeration) passes `x0` through).
    pub fn eval(&self, x0: f64, x1: f64) -> f64 {
        match *self {
            EsvFormula::Linear { a, b } => a * x0 + b,
            EsvFormula::Affine2 { a, b, c } => a * x0 + b * x1 + c,
            EsvFormula::Product { a, b } => a * x0 * x1 + b,
            EsvFormula::Square { a, b } => a * x0 * x0 + b,
            EsvFormula::Inverse { a, b } => {
                if x0 == 0.0 {
                    b
                } else {
                    a / x0 + b
                }
            }
            EsvFormula::OffsetProduct { a, k } => a * x0 * (x1 - k),
            EsvFormula::Enumeration => x0,
        }
    }

    /// Number of raw variables the formula actually reads (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            EsvFormula::Affine2 { .. }
            | EsvFormula::Product { .. }
            | EsvFormula::OffsetProduct { .. } => 2,
            _ => 1,
        }
    }

    /// Whether this is a real formula (as opposed to an enumeration —
    /// paper Tab. 6 separates "#ESV (formula)" from "#ESV (Enum)").
    pub fn has_formula(&self) -> bool {
        !matches!(self, EsvFormula::Enumeration)
    }

    /// Whether the formula is linear in its inputs — i.e. exactly
    /// representable by the paper's linear-regression baseline.
    pub fn is_linear(&self) -> bool {
        matches!(
            self,
            EsvFormula::Linear { .. } | EsvFormula::Affine2 { .. } | EsvFormula::Enumeration
        )
    }

    /// Inverts the formula for the *encoding* direction used by the vehicle
    /// simulator: given a physical value `y` (and, for two-variable
    /// formulas, a fixed `x1`), produce the raw `x0` the ECU would store.
    ///
    /// Returns `None` where the formula cannot be inverted (zero
    /// coefficients).
    pub fn encode_x0(&self, y: f64, x1: f64) -> Option<f64> {
        match *self {
            EsvFormula::Linear { a, b } => (a != 0.0).then(|| (y - b) / a),
            EsvFormula::Affine2 { a, b, c } => (a != 0.0).then(|| (y - b * x1 - c) / a),
            EsvFormula::Product { a, b } => {
                (a != 0.0 && x1 != 0.0).then(|| (y - b) / (a * x1))
            }
            EsvFormula::Square { a, b } => {
                if a == 0.0 || (y - b) / a < 0.0 {
                    None
                } else {
                    Some(((y - b) / a).sqrt())
                }
            }
            EsvFormula::Inverse { a, b } => {
                if a == 0.0 || y == b {
                    None
                } else {
                    Some(a / (y - b))
                }
            }
            EsvFormula::OffsetProduct { a, k } => {
                let denom = a * (x1 - k);
                (denom != 0.0).then(|| y / denom)
            }
            EsvFormula::Enumeration => Some(y),
        }
    }
}

impl std::fmt::Display for EsvFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn term(f: &mut std::fmt::Formatter<'_>, v: f64, suffix: &str) -> std::fmt::Result {
            if v == 1.0 && !suffix.is_empty() {
                write!(f, "{suffix}")
            } else if suffix.is_empty() {
                write!(f, "{v}")
            } else {
                write!(f, "{v}*{suffix}")
            }
        }
        fn offset(f: &mut std::fmt::Formatter<'_>, b: f64) -> std::fmt::Result {
            if b > 0.0 {
                write!(f, " + {b}")
            } else if b < 0.0 {
                write!(f, " - {}", -b)
            } else {
                Ok(())
            }
        }
        write!(f, "Y = ")?;
        match *self {
            EsvFormula::Linear { a, b } => {
                term(f, a, "X0")?;
                offset(f, b)
            }
            EsvFormula::Affine2 { a, b, c } => {
                term(f, a, "X0")?;
                write!(f, " + ")?;
                term(f, b, "X1")?;
                offset(f, c)
            }
            EsvFormula::Product { a, b } => {
                term(f, a, "X0*X1")?;
                offset(f, b)
            }
            EsvFormula::Square { a, b } => {
                term(f, a, "X0^2")?;
                offset(f, b)
            }
            EsvFormula::Inverse { a, b } => {
                write!(f, "{a}/X0")?;
                offset(f, b)
            }
            EsvFormula::OffsetProduct { a, k } => {
                write!(f, "{a}*X0*(X1 - {k})")
            }
            EsvFormula::Enumeration => write!(f, "X0 (enumeration)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_paper_examples() {
        // Paper §2.3.1: KWP RPM example — type 0x01 is X0*X1/5, with
        // X0 = 0xF1 = 241 and X1 = 0x10 = 16 giving 771.2.
        let f = EsvFormula::Product { a: 0.2, b: 0.0 };
        assert!((f.eval(241.0, 16.0) - 771.2).abs() < 1e-9);

        // Paper §2.3.2: UDS speed example — Y = X * 1.0, ESV 0x21 = 33 km/h.
        assert_eq!(EsvFormula::IDENTITY.eval(33.0, 0.0), 33.0);

        // OBD-II RPM: (256*X0 + X1)/4.
        let rpm = EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 };
        assert_eq!(rpm.eval(0x1A as f64, 0xF0 as f64), (256.0 * 26.0 + 240.0) / 4.0);

        // OBD-II coolant: Y = X - 40.
        let coolant = EsvFormula::Linear { a: 1.0, b: -40.0 };
        assert_eq!(coolant.eval(0xA0 as f64, 0.0), 120.0);
    }

    #[test]
    fn encode_is_right_inverse_of_eval() {
        let formulas = [
            EsvFormula::Linear { a: 0.392, b: 0.0 },
            EsvFormula::Linear { a: 1.8, b: -40.0 },
            EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 },
            EsvFormula::Product { a: 0.2, b: 0.0 },
            EsvFormula::Square { a: 0.5, b: 1.0 },
            EsvFormula::Inverse { a: 100.0, b: 2.0 },
            EsvFormula::OffsetProduct { a: 0.1, k: 100.0 },
        ];
        for f in formulas {
            let x1 = 16.0;
            for y in [5.0, 42.0, 120.5] {
                if let Some(x0) = f.encode_x0(y, x1) {
                    let back = f.eval(x0, x1);
                    assert!(
                        (back - y).abs() < 1e-6,
                        "{f}: encode({y}) -> {x0} -> {back}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_inversions_return_none() {
        assert_eq!(EsvFormula::Linear { a: 0.0, b: 1.0 }.encode_x0(5.0, 0.0), None);
        assert_eq!(EsvFormula::Product { a: 1.0, b: 0.0 }.encode_x0(5.0, 0.0), None);
        assert_eq!(EsvFormula::Square { a: 1.0, b: 10.0 }.encode_x0(5.0, 0.0), None);
        assert_eq!(EsvFormula::Inverse { a: 1.0, b: 5.0 }.encode_x0(5.0, 0.0), None);
        assert_eq!(
            EsvFormula::OffsetProduct { a: 1.0, k: 7.0 }.encode_x0(5.0, 7.0),
            None
        );
    }

    #[test]
    fn inverse_eval_handles_zero() {
        let f = EsvFormula::Inverse { a: 10.0, b: 3.0 };
        assert_eq!(f.eval(0.0, 0.0), 3.0);
    }

    #[test]
    fn arity_and_linearity() {
        assert_eq!(EsvFormula::IDENTITY.arity(), 1);
        assert_eq!(EsvFormula::Product { a: 1.0, b: 0.0 }.arity(), 2);
        assert!(EsvFormula::Affine2 { a: 1.0, b: 2.0, c: 0.0 }.is_linear());
        assert!(!EsvFormula::Product { a: 1.0, b: 0.0 }.is_linear());
        assert!(!EsvFormula::Square { a: 1.0, b: 0.0 }.is_linear());
        assert!(EsvFormula::Enumeration.is_linear());
        assert!(!EsvFormula::Enumeration.has_formula());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            EsvFormula::Linear { a: 1.0, b: -40.0 }.to_string(),
            "Y = X0 - 40"
        );
        assert_eq!(
            EsvFormula::Affine2 { a: 64.0, b: 0.25, c: 0.0 }.to_string(),
            "Y = 64*X0 + 0.25*X1"
        );
        assert_eq!(
            EsvFormula::Inverse { a: 100.0, b: 0.0 }.to_string(),
            "Y = 100/X0"
        );
        assert_eq!(EsvFormula::Enumeration.to_string(), "Y = X0 (enumeration)");
    }
}
