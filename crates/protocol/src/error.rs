//! Protocol-layer errors.

use std::fmt;

/// Errors raised while encoding or parsing diagnostic messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload is shorter than the service's minimum message.
    TooShort {
        /// Service or message kind being parsed.
        what: &'static str,
        /// Bytes needed at minimum.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The first byte is not the expected service identifier.
    WrongService {
        /// SID (or response SID) expected.
        expected: u8,
        /// SID actually observed.
        got: u8,
    },
    /// The ECU answered with a negative response.
    Negative {
        /// The rejected request's SID.
        sid: u8,
        /// The negative response code.
        nrc: u8,
    },
    /// The message structure is internally inconsistent.
    Malformed(String),
    /// A value does not fit the field that must carry it.
    ValueOutOfRange {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TooShort { what, need, got } => {
                write!(f, "{what} needs at least {need} bytes, got {got}")
            }
            ProtocolError::WrongService { expected, got } => {
                write!(f, "expected service 0x{expected:02X}, got 0x{got:02X}")
            }
            ProtocolError::Negative { sid, nrc } => {
                write!(
                    f,
                    "negative response to service 0x{sid:02X} with code 0x{nrc:02X}"
                )
            }
            ProtocolError::Malformed(msg) => write!(f, "malformed message: {msg}"),
            ProtocolError::ValueOutOfRange { field, value } => {
                write!(f, "value {value} does not fit field {field}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::Negative { sid: 0x22, nrc: 0x31 };
        assert_eq!(
            e.to_string(),
            "negative response to service 0x22 with code 0x31"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ProtocolError>();
    }
}
