//! UDS (ISO 14229) request and response messages.
//!
//! Covers the two services the paper reverse engineers — *Read Data By
//! Identifier* (0x22, Fig. 5) and *IO Control* (0x2F, Fig. 4) — plus the
//! session-management services a real diagnostic session exchanges
//! (session control, tester present, ECU reset) and negative responses.

use serde::{Deserialize, Serialize};

use crate::{ProtocolError, ServiceId};

/// A two-byte UDS data identifier (DID).
///
/// The *value* of a DID and the component or signal it selects are exactly
/// the manufacturer-proprietary information DP-Reverser recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Did(pub u16);

impl Did {
    /// Big-endian on-wire bytes.
    pub fn to_bytes(self) -> [u8; 2] {
        self.0.to_be_bytes()
    }

    /// Parses a DID from two big-endian bytes.
    pub fn from_bytes(hi: u8, lo: u8) -> Self {
        Did(u16::from_be_bytes([hi, lo]))
    }
}

impl std::fmt::Display for Did {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:04X}", self.0)
    }
}

/// UDS negative response codes (the subset the simulation produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Nrc {
    /// 0x10 — general reject.
    GeneralReject,
    /// 0x11 — service not supported.
    ServiceNotSupported,
    /// 0x12 — sub-function not supported.
    SubFunctionNotSupported,
    /// 0x13 — incorrect message length or invalid format.
    IncorrectMessageLength,
    /// 0x22 — conditions not correct.
    ConditionsNotCorrect,
    /// 0x31 — request out of range (unknown DID).
    RequestOutOfRange,
    /// 0x33 — security access denied.
    SecurityAccessDenied,
    /// 0x35 — invalid key.
    InvalidKey,
    /// Any other code, carried verbatim.
    Other(u8),
}

impl Nrc {
    /// The on-wire code byte.
    pub fn raw(self) -> u8 {
        match self {
            Nrc::GeneralReject => 0x10,
            Nrc::ServiceNotSupported => 0x11,
            Nrc::SubFunctionNotSupported => 0x12,
            Nrc::IncorrectMessageLength => 0x13,
            Nrc::ConditionsNotCorrect => 0x22,
            Nrc::RequestOutOfRange => 0x31,
            Nrc::SecurityAccessDenied => 0x33,
            Nrc::InvalidKey => 0x35,
            Nrc::Other(code) => code,
        }
    }

    /// Decodes a code byte.
    pub fn from_raw(code: u8) -> Self {
        match code {
            0x10 => Nrc::GeneralReject,
            0x11 => Nrc::ServiceNotSupported,
            0x12 => Nrc::SubFunctionNotSupported,
            0x13 => Nrc::IncorrectMessageLength,
            0x22 => Nrc::ConditionsNotCorrect,
            0x31 => Nrc::RequestOutOfRange,
            0x33 => Nrc::SecurityAccessDenied,
            0x35 => Nrc::InvalidKey,
            other => Nrc::Other(other),
        }
    }
}

/// The IO-control parameter byte — the paper's Tab. 11 finds exactly the
/// freeze / short-term-adjust / return-control triple in every recovered
/// control procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoControlParameter {
    /// 0x00 — return control to the ECU ("the control is finished").
    ReturnControlToEcu,
    /// 0x01 — reset to default.
    ResetToDefault,
    /// 0x02 — freeze current state ("prepare to control").
    FreezeCurrentState,
    /// 0x03 — short-term adjustment ("start controlling").
    ShortTermAdjustment,
}

impl IoControlParameter {
    /// The on-wire byte.
    pub fn raw(self) -> u8 {
        match self {
            IoControlParameter::ReturnControlToEcu => 0x00,
            IoControlParameter::ResetToDefault => 0x01,
            IoControlParameter::FreezeCurrentState => 0x02,
            IoControlParameter::ShortTermAdjustment => 0x03,
        }
    }

    /// Decodes the byte; values above 0x03 are reserved.
    pub fn from_raw(byte: u8) -> Option<Self> {
        match byte {
            0x00 => Some(IoControlParameter::ReturnControlToEcu),
            0x01 => Some(IoControlParameter::ResetToDefault),
            0x02 => Some(IoControlParameter::FreezeCurrentState),
            0x03 => Some(IoControlParameter::ShortTermAdjustment),
            _ => None,
        }
    }
}

/// A UDS request message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UdsRequest {
    /// 0x10 — diagnostic session control.
    SessionControl {
        /// Requested session type (0x01 default, 0x03 extended …).
        session: u8,
    },
    /// 0x11 — ECU reset.
    EcuReset {
        /// Reset type (0x01 hard reset …).
        kind: u8,
    },
    /// 0x22 — read data by identifier, one or more DIDs.
    ReadDataById {
        /// The identifiers to read, in request order.
        dids: Vec<Did>,
    },
    /// 0x2F — input/output control by identifier.
    IoControl {
        /// The component's data identifier.
        did: Did,
        /// The IO-control parameter (first ECR byte).
        param: IoControlParameter,
        /// Control state bytes (rest of the ECR; empty for freeze/return).
        state: Vec<u8>,
    },
    /// 0x3E — tester present.
    TesterPresent,
    /// 0x27 — security access: odd sub-functions request a seed, the
    /// following even sub-function sends the computed key. The paper's §6
    /// lists seed-key algorithms as beyond formula inference; the
    /// simulation implements the handshake so captures contain it.
    SecurityAccess {
        /// Sub-function (odd = request seed, even = send key).
        level: u8,
        /// The key bytes (empty for seed requests).
        key: Vec<u8>,
    },
    /// 0x19 — read DTC information (sub-function 0x02: by status mask).
    ReadDtc {
        /// Status mask (0xFF = everything).
        mask: u8,
    },
    /// 0x14 — clear diagnostic information (the request the paper's UI
    /// blacklist exists to avoid triggering).
    ClearDtc,
}

impl UdsRequest {
    /// Serializes the request to its on-wire payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            UdsRequest::SessionControl { session } => vec![0x10, *session],
            UdsRequest::EcuReset { kind } => vec![0x11, *kind],
            UdsRequest::ReadDataById { dids } => {
                let mut out = Vec::with_capacity(1 + dids.len() * 2);
                out.push(0x22);
                for did in dids {
                    out.extend_from_slice(&did.to_bytes());
                }
                out
            }
            UdsRequest::IoControl { did, param, state } => {
                let mut out = Vec::with_capacity(4 + state.len());
                out.push(0x2F);
                out.extend_from_slice(&did.to_bytes());
                out.push(param.raw());
                out.extend_from_slice(state);
                out
            }
            UdsRequest::TesterPresent => vec![0x3E, 0x00],
            UdsRequest::SecurityAccess { level, key } => {
                let mut out = vec![0x27, *level];
                out.extend_from_slice(key);
                out
            }
            UdsRequest::ReadDtc { mask } => vec![0x19, 0x02, *mask],
            UdsRequest::ClearDtc => vec![0x14, 0xFF, 0xFF, 0xFF],
        }
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for unknown services, truncated messages,
    /// or reserved IO-control parameters.
    pub fn parse(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (&sid, rest) = payload.split_first().ok_or(ProtocolError::TooShort {
            what: "UDS request",
            need: 1,
            got: 0,
        })?;
        match sid {
            0x10 => match rest {
                [session, ..] => Ok(UdsRequest::SessionControl { session: *session }),
                [] => Err(ProtocolError::TooShort {
                    what: "session control request",
                    need: 2,
                    got: 1,
                }),
            },
            0x11 => match rest {
                [kind, ..] => Ok(UdsRequest::EcuReset { kind: *kind }),
                [] => Err(ProtocolError::TooShort {
                    what: "ECU reset request",
                    need: 2,
                    got: 1,
                }),
            },
            0x22 => {
                if rest.is_empty() || rest.len() % 2 != 0 {
                    return Err(ProtocolError::Malformed(format!(
                        "read-data-by-id request needs a positive even number of DID bytes, got {}",
                        rest.len()
                    )));
                }
                let dids = rest
                    .chunks_exact(2)
                    .map(|c| Did::from_bytes(c[0], c[1]))
                    .collect();
                Ok(UdsRequest::ReadDataById { dids })
            }
            0x2F => {
                if rest.len() < 3 {
                    return Err(ProtocolError::TooShort {
                        what: "IO-control request",
                        need: 4,
                        got: payload.len(),
                    });
                }
                let did = Did::from_bytes(rest[0], rest[1]);
                let param = IoControlParameter::from_raw(rest[2]).ok_or_else(|| {
                    ProtocolError::Malformed(format!(
                        "reserved IO-control parameter 0x{:02X}",
                        rest[2]
                    ))
                })?;
                Ok(UdsRequest::IoControl {
                    did,
                    param,
                    state: rest[3..].to_vec(),
                })
            }
            0x3E => Ok(UdsRequest::TesterPresent),
            0x27 => match rest {
                [level, key @ ..] => Ok(UdsRequest::SecurityAccess {
                    level: *level,
                    key: key.to_vec(),
                }),
                [] => Err(ProtocolError::TooShort {
                    what: "security access request",
                    need: 2,
                    got: 1,
                }),
            },
            0x19 => match rest {
                [_sub, mask, ..] => Ok(UdsRequest::ReadDtc { mask: *mask }),
                _ => Err(ProtocolError::TooShort {
                    what: "read DTC request",
                    need: 3,
                    got: payload.len(),
                }),
            },
            0x14 => Ok(UdsRequest::ClearDtc),
            other => Err(ProtocolError::WrongService {
                expected: 0x22,
                got: other,
            }),
        }
    }

    /// The request's service identifier.
    pub fn service(&self) -> ServiceId {
        match self {
            UdsRequest::SessionControl { .. } => ServiceId::UDS_SESSION_CONTROL,
            UdsRequest::EcuReset { .. } => ServiceId::UDS_ECU_RESET,
            UdsRequest::ReadDataById { .. } => ServiceId::UDS_READ_DATA_BY_ID,
            UdsRequest::IoControl { .. } => ServiceId::IO_CONTROL_BY_ID,
            UdsRequest::TesterPresent => ServiceId::UDS_TESTER_PRESENT,
            UdsRequest::SecurityAccess { .. } => ServiceId(0x27),
            UdsRequest::ReadDtc { .. } => ServiceId(0x19),
            UdsRequest::ClearDtc => ServiceId(0x14),
        }
    }
}

/// A UDS response message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UdsResponse {
    /// Positive response to session control.
    SessionControl {
        /// The granted session type.
        session: u8,
    },
    /// Positive response to ECU reset.
    EcuReset {
        /// The performed reset type.
        kind: u8,
    },
    /// Positive response to read data by identifier: each requested DID
    /// echoed, followed by its data record (Fig. 5).
    ReadDataById {
        /// `(DID, raw ESV bytes)` pairs in request order.
        records: Vec<(Did, Vec<u8>)>,
    },
    /// Positive response to IO control (Fig. 4).
    IoControl {
        /// The controlled component's DID.
        did: Did,
        /// Echoed IO-control parameter.
        param: IoControlParameter,
        /// Control status record.
        state: Vec<u8>,
    },
    /// Positive response to tester present.
    TesterPresent,
    /// Positive response to security access: the seed for odd
    /// sub-functions, empty for accepted keys.
    SecurityAccess {
        /// Echoed sub-function.
        level: u8,
        /// Seed bytes (empty when acknowledging a key).
        seed: Vec<u8>,
    },
    /// Positive response to read DTC: `(code, status)` pairs.
    DtcReport {
        /// Stored trouble codes with their status bytes.
        dtcs: Vec<(u16, u8)>,
    },
    /// Positive response to clear diagnostic information.
    ClearDtc,
    /// Negative response (`7F sid nrc`).
    Negative {
        /// The rejected request's SID.
        sid: u8,
        /// The reason code.
        nrc: Nrc,
    },
}

impl UdsResponse {
    /// Serializes the response to its on-wire payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            UdsResponse::SessionControl { session } => vec![0x50, *session, 0x00, 0x32, 0x01, 0xF4],
            UdsResponse::EcuReset { kind } => vec![0x51, *kind],
            UdsResponse::ReadDataById { records } => {
                let mut out = vec![0x62];
                for (did, data) in records {
                    out.extend_from_slice(&did.to_bytes());
                    out.extend_from_slice(data);
                }
                out
            }
            UdsResponse::IoControl { did, param, state } => {
                let mut out = vec![0x6F];
                out.extend_from_slice(&did.to_bytes());
                out.push(param.raw());
                out.extend_from_slice(state);
                out
            }
            UdsResponse::TesterPresent => vec![0x7E, 0x00],
            UdsResponse::SecurityAccess { level, seed } => {
                let mut out = vec![0x67, *level];
                out.extend_from_slice(seed);
                out
            }
            UdsResponse::DtcReport { dtcs } => {
                let mut out = vec![0x59, 0x02, 0xFF];
                for (code, status) in dtcs {
                    out.extend_from_slice(&code.to_be_bytes());
                    out.push(*status);
                }
                out
            }
            UdsResponse::ClearDtc => vec![0x54],
            UdsResponse::Negative { sid, nrc } => vec![0x7F, *sid, nrc.raw()],
        }
    }

    /// Parses a response payload. For read-data-by-id responses the caller
    /// must supply the DIDs of the request so the records can be split —
    /// exactly the technique the paper's field-extraction step uses
    /// ("the list of DIDs in the request message also appear in the
    /// corresponding response message with the same order").
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for truncated or inconsistent payloads.
    pub fn parse(payload: &[u8], request_dids: &[Did]) -> Result<Self, ProtocolError> {
        let (&first, rest) = payload.split_first().ok_or(ProtocolError::TooShort {
            what: "UDS response",
            need: 1,
            got: 0,
        })?;
        match first {
            0x7F => {
                if rest.len() < 2 {
                    return Err(ProtocolError::TooShort {
                        what: "negative response",
                        need: 3,
                        got: payload.len(),
                    });
                }
                Ok(UdsResponse::Negative {
                    sid: rest[0],
                    nrc: Nrc::from_raw(rest[1]),
                })
            }
            0x50 => rest
                .first()
                .map(|s| UdsResponse::SessionControl { session: *s })
                .ok_or(ProtocolError::TooShort {
                    what: "session control response",
                    need: 2,
                    got: 1,
                }),
            0x51 => rest
                .first()
                .map(|k| UdsResponse::EcuReset { kind: *k })
                .ok_or(ProtocolError::TooShort {
                    what: "ECU reset response",
                    need: 2,
                    got: 1,
                }),
            0x62 => {
                let records = split_read_records(rest, request_dids)?;
                Ok(UdsResponse::ReadDataById { records })
            }
            0x6F => {
                if rest.len() < 3 {
                    return Err(ProtocolError::TooShort {
                        what: "IO-control response",
                        need: 4,
                        got: payload.len(),
                    });
                }
                let did = Did::from_bytes(rest[0], rest[1]);
                let param = IoControlParameter::from_raw(rest[2]).ok_or_else(|| {
                    ProtocolError::Malformed(format!(
                        "reserved IO-control parameter 0x{:02X} in response",
                        rest[2]
                    ))
                })?;
                Ok(UdsResponse::IoControl {
                    did,
                    param,
                    state: rest[3..].to_vec(),
                })
            }
            0x7E => Ok(UdsResponse::TesterPresent),
            0x67 => match rest {
                [level, seed @ ..] => Ok(UdsResponse::SecurityAccess {
                    level: *level,
                    seed: seed.to_vec(),
                }),
                [] => Err(ProtocolError::TooShort {
                    what: "security access response",
                    need: 2,
                    got: 1,
                }),
            },
            0x59 => {
                if rest.len() < 2 || (rest.len() - 2) % 3 != 0 {
                    return Err(ProtocolError::Malformed(format!(
                        "DTC report body of {} bytes is not 2 + 3n",
                        rest.len()
                    )));
                }
                let dtcs = rest[2..]
                    .chunks_exact(3)
                    .map(|c| (u16::from_be_bytes([c[0], c[1]]), c[2]))
                    .collect();
                Ok(UdsResponse::DtcReport { dtcs })
            }
            0x54 => Ok(UdsResponse::ClearDtc),
            other => Err(ProtocolError::WrongService {
                expected: 0x62,
                got: other,
            }),
        }
    }
}

/// Splits the body of a `62` response into `(DID, data)` records using the
/// request's DID list as the delimiter sequence — the paper's §3.2 Step 3
/// technique for extracting ESVs whose lengths are not fixed.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] if the response does not echo the
/// request DIDs in order.
pub fn split_read_records(
    body: &[u8],
    request_dids: &[Did],
) -> Result<Vec<(Did, Vec<u8>)>, ProtocolError> {
    let mut records = Vec::with_capacity(request_dids.len());
    let mut cursor = 0usize;
    for (i, did) in request_dids.iter().enumerate() {
        let bytes = did.to_bytes();
        if body.len() < cursor + 2 || body[cursor..cursor + 2] != bytes {
            return Err(ProtocolError::Malformed(format!(
                "response does not echo DID {did} at offset {cursor}"
            )));
        }
        cursor += 2;
        // Data extends until the next request DID appears (in order), or to
        // the end of the body for the last record.
        let end = match request_dids.get(i + 1) {
            Some(next) => {
                let pat = next.to_bytes();
                let mut found = None;
                let mut j = cursor;
                while j + 2 <= body.len() {
                    if body[j..j + 2] == pat {
                        found = Some(j);
                        break;
                    }
                    j += 1;
                }
                found.ok_or_else(|| {
                    ProtocolError::Malformed(format!(
                        "response does not contain the next DID {next} after {did}"
                    ))
                })?
            }
            None => body.len(),
        };
        if end == cursor {
            return Err(ProtocolError::Malformed(format!(
                "DID {did} carries no data bytes"
            )));
        }
        records.push((*did, body[cursor..end].to_vec()));
        cursor = end;
    }
    Ok(records)
}

/// Builds the paper's three-message IO-control procedure (§4.5): freeze
/// current state, short-term adjustment with the given control state, then
/// return control to the ECU.
pub fn io_control_procedure(did: Did, state: Vec<u8>) -> [UdsRequest; 3] {
    [
        UdsRequest::IoControl {
            did,
            param: IoControlParameter::FreezeCurrentState,
            state: Vec::new(),
        },
        UdsRequest::IoControl {
            did,
            param: IoControlParameter::ShortTermAdjustment,
            state,
        },
        UdsRequest::IoControl {
            did,
            param: IoControlParameter::ReturnControlToEcu,
            state: Vec::new(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encode_parse_round_trip() {
        let samples = vec![
            UdsRequest::SessionControl { session: 0x03 },
            UdsRequest::EcuReset { kind: 0x01 },
            UdsRequest::ReadDataById {
                dids: vec![Did(0xF40D), Did(0xF40C)],
            },
            UdsRequest::IoControl {
                did: Did(0x0950),
                param: IoControlParameter::ShortTermAdjustment,
                state: vec![0x05, 0x01, 0x00, 0x00],
            },
            UdsRequest::TesterPresent,
        ];
        for req in samples {
            let bytes = req.encode();
            assert_eq!(UdsRequest::parse(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn paper_fog_light_example_encodes_exactly() {
        // Paper §2.3.2: "2F 09 50 03 05 01 00 00".
        let req = UdsRequest::IoControl {
            did: Did(0x0950),
            param: IoControlParameter::ShortTermAdjustment,
            state: vec![0x05, 0x01, 0x00, 0x00],
        };
        assert_eq!(req.encode(), vec![0x2F, 0x09, 0x50, 0x03, 0x05, 0x01, 0x00, 0x00]);
    }

    #[test]
    fn paper_speed_example_parses() {
        // Paper §2.3.2: request "22 F4 0D", response "62 F4 0D 21".
        let req = UdsRequest::parse(&[0x22, 0xF4, 0x0D]).unwrap();
        let UdsRequest::ReadDataById { dids } = &req else {
            panic!("wrong variant");
        };
        assert_eq!(dids, &[Did(0xF40D)]);

        let rsp = UdsResponse::parse(&[0x62, 0xF4, 0x0D, 0x21], dids).unwrap();
        assert_eq!(
            rsp,
            UdsResponse::ReadDataById {
                records: vec![(Did(0xF40D), vec![0x21])]
            }
        );
    }

    #[test]
    fn multi_did_response_split_by_request_order() {
        let dids = [Did(0x1017), Did(0x2030)];
        // 62 | 10 17 AA BB CC | 20 30 DD
        let payload = [0x62, 0x10, 0x17, 0xAA, 0xBB, 0xCC, 0x20, 0x30, 0xDD];
        let rsp = UdsResponse::parse(&payload, &dids).unwrap();
        assert_eq!(
            rsp,
            UdsResponse::ReadDataById {
                records: vec![
                    (Did(0x1017), vec![0xAA, 0xBB, 0xCC]),
                    (Did(0x2030), vec![0xDD]),
                ]
            }
        );
    }

    #[test]
    fn variable_length_records_resolved() {
        // First DID carries 1 byte, second carries 4.
        let dids = [Did(0xF40D), Did(0xF446)];
        let payload = [0x62, 0xF4, 0x0D, 0x21, 0xF4, 0x46, 1, 2, 3, 4];
        let UdsResponse::ReadDataById { records } = UdsResponse::parse(&payload, &dids).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(records[0].1.len(), 1);
        assert_eq!(records[1].1.len(), 4);
    }

    #[test]
    fn response_missing_did_is_malformed() {
        let dids = [Did(0xF40D)];
        let err = UdsResponse::parse(&[0x62, 0xF4, 0x0E, 0x21], &dids);
        assert!(matches!(err, Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn negative_response_parses() {
        let rsp = UdsResponse::parse(&[0x7F, 0x22, 0x31], &[]).unwrap();
        assert_eq!(
            rsp,
            UdsResponse::Negative {
                sid: 0x22,
                nrc: Nrc::RequestOutOfRange
            }
        );
    }

    #[test]
    fn security_access_round_trips() {
        let seed_req = UdsRequest::SecurityAccess { level: 0x01, key: vec![] };
        assert_eq!(seed_req.encode(), vec![0x27, 0x01]);
        assert_eq!(UdsRequest::parse(&seed_req.encode()).unwrap(), seed_req);
        let key_req = UdsRequest::SecurityAccess {
            level: 0x02,
            key: vec![0xAB, 0xCD],
        };
        assert_eq!(UdsRequest::parse(&key_req.encode()).unwrap(), key_req);
        let seed_rsp = UdsResponse::SecurityAccess {
            level: 0x01,
            seed: vec![0x12, 0x34],
        };
        assert_eq!(seed_rsp.encode(), vec![0x67, 0x01, 0x12, 0x34]);
        assert_eq!(UdsResponse::parse(&seed_rsp.encode(), &[]).unwrap(), seed_rsp);
    }

    #[test]
    fn dtc_services_round_trip() {
        let read = UdsRequest::ReadDtc { mask: 0xFF };
        assert_eq!(read.encode(), vec![0x19, 0x02, 0xFF]);
        assert_eq!(UdsRequest::parse(&read.encode()).unwrap(), read);

        let clear = UdsRequest::ClearDtc;
        assert_eq!(UdsRequest::parse(&clear.encode()).unwrap(), clear);

        let report = UdsResponse::DtcReport {
            dtcs: vec![(0x0171, 0x2F), (0x0300, 0x08)],
        };
        assert_eq!(UdsResponse::parse(&report.encode(), &[]).unwrap(), report);
        assert_eq!(
            UdsResponse::parse(&UdsResponse::ClearDtc.encode(), &[]).unwrap(),
            UdsResponse::ClearDtc
        );
        // Ragged DTC bodies are rejected.
        assert!(UdsResponse::parse(&[0x59, 0x02, 0xFF, 0x01], &[]).is_err());
    }

    #[test]
    fn nrc_round_trips() {
        for code in [0x10u8, 0x11, 0x12, 0x13, 0x22, 0x31, 0x33, 0x35, 0x77] {
            assert_eq!(Nrc::from_raw(code).raw(), code);
        }
    }

    #[test]
    fn io_control_procedure_matches_paper_pattern() {
        let [freeze, adjust, ret] = io_control_procedure(Did(0x0950), vec![0x05, 0x01, 0x00, 0x00]);
        assert_eq!(freeze.encode(), vec![0x2F, 0x09, 0x50, 0x02]);
        assert_eq!(
            adjust.encode(),
            vec![0x2F, 0x09, 0x50, 0x03, 0x05, 0x01, 0x00, 0x00]
        );
        assert_eq!(ret.encode(), vec![0x2F, 0x09, 0x50, 0x00]);
    }

    #[test]
    fn reserved_io_parameter_rejected() {
        let err = UdsRequest::parse(&[0x2F, 0x09, 0x50, 0x7A]);
        assert!(matches!(err, Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn empty_and_odd_did_lists_rejected() {
        assert!(UdsRequest::parse(&[0x22]).is_err());
        assert!(UdsRequest::parse(&[0x22, 0xF4]).is_err());
    }

    #[test]
    fn response_encode_parse_round_trip() {
        let rsp = UdsResponse::IoControl {
            did: Did(0x0950),
            param: IoControlParameter::FreezeCurrentState,
            state: vec![0xFF],
        };
        assert_eq!(UdsResponse::parse(&rsp.encode(), &[]).unwrap(), rsp);

        let tp = UdsResponse::TesterPresent;
        assert_eq!(UdsResponse::parse(&tp.encode(), &[]).unwrap(), tp);
    }
}
