//! Application-layer diagnostic protocols: UDS, KWP 2000, and OBD-II.
//!
//! This crate models the three protocols of the paper's Tab. 1 at the level
//! the reverse-engineering pipeline needs:
//!
//! * [`uds`] — ISO 14229 Unified Diagnostic Services: *Read Data By
//!   Identifier* (0x22) and *IO Control* (0x2F) with their request/response
//!   formats (paper Figs. 4–5), plus session control, tester present, ECU
//!   reset, and negative responses.
//! * [`kwp`] — Keyword Protocol 2000: *read data by local identifier*
//!   (0x21) and the two IO-control services (0x30 local id / 0x2F common
//!   id) of paper Figs. 2–3, including the three-byte ECU-signal-value
//!   (`ESV`) encoding `[formula-type, X0, X1]` and a formula-type table.
//! * [`obd`] — OBD-II / SAE J1979 mode 01 with the standard, publicly
//!   documented PID formulas the paper uses as ground truth (Tab. 5).
//!
//! The [`formula`] module defines the closed-form [`EsvFormula`]
//! representation that vehicle profiles use to *encode* sensor values into
//! response bytes and diagnostic tools use to *decode* them — the
//! proprietary mapping DP-Reverser recovers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod formula;
pub mod kwp;
pub mod obd;
pub mod quantity;
pub mod uds;

pub use error::ProtocolError;
pub use formula::EsvFormula;
pub use quantity::Quantity;

/// A service identifier byte of a diagnostic request.
///
/// Positive responses echo the request SID with bit 6 set (`sid + 0x40`);
/// negative responses start with `0x7F` followed by the rejected SID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ServiceId(pub u8);

impl ServiceId {
    /// UDS diagnostic session control.
    pub const UDS_SESSION_CONTROL: ServiceId = ServiceId(0x10);
    /// UDS ECU reset.
    pub const UDS_ECU_RESET: ServiceId = ServiceId(0x11);
    /// KWP 2000 read data by local identifier.
    pub const KWP_READ_DATA_BY_LOCAL_ID: ServiceId = ServiceId(0x21);
    /// UDS read data by identifier.
    pub const UDS_READ_DATA_BY_ID: ServiceId = ServiceId(0x22);
    /// UDS / KWP IO control (by common identifier in KWP).
    pub const IO_CONTROL_BY_ID: ServiceId = ServiceId(0x2F);
    /// KWP 2000 input output control by local identifier.
    pub const KWP_IO_CONTROL_BY_LOCAL_ID: ServiceId = ServiceId(0x30);
    /// UDS tester present.
    pub const UDS_TESTER_PRESENT: ServiceId = ServiceId(0x3E);
    /// OBD-II mode 01 (show current data).
    pub const OBD_CURRENT_DATA: ServiceId = ServiceId(0x01);
    /// The negative-response marker byte.
    pub const NEGATIVE_RESPONSE: u8 = 0x7F;

    /// The SID a positive response to this request carries.
    pub fn positive_response(self) -> u8 {
        self.0 | 0x40
    }

    /// Inverts [`positive_response`](Self::positive_response): given a
    /// response's first byte, the request SID it answers, if it is a
    /// positive response at all.
    pub fn from_positive_response(byte: u8) -> Option<ServiceId> {
        if byte & 0x40 != 0 && byte != Self::NEGATIVE_RESPONSE {
            Some(ServiceId(byte & !0x40))
        } else {
            None
        }
    }
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_response_sets_bit_six() {
        assert_eq!(ServiceId::UDS_READ_DATA_BY_ID.positive_response(), 0x62);
        assert_eq!(ServiceId::IO_CONTROL_BY_ID.positive_response(), 0x6F);
        assert_eq!(ServiceId::KWP_READ_DATA_BY_LOCAL_ID.positive_response(), 0x61);
        assert_eq!(ServiceId::KWP_IO_CONTROL_BY_LOCAL_ID.positive_response(), 0x70);
        assert_eq!(ServiceId::OBD_CURRENT_DATA.positive_response(), 0x41);
    }

    #[test]
    fn from_positive_response_round_trips() {
        for sid in [0x01u8, 0x10, 0x21, 0x22, 0x2F, 0x30, 0x3E] {
            let service = ServiceId(sid);
            assert_eq!(
                ServiceId::from_positive_response(service.positive_response()),
                Some(service)
            );
        }
    }

    #[test]
    fn negative_marker_is_not_a_positive_response() {
        assert_eq!(ServiceId::from_positive_response(0x7F), None);
        // A request SID itself is not a positive response.
        assert_eq!(ServiceId::from_positive_response(0x22), None);
    }
}
