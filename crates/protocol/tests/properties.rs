//! Property-based tests for message encode/parse round trips.

use dpr_protocol::kwp::{KwpRequest, KwpResponse, LocalId, RawEsv};
use dpr_protocol::uds::{Did, IoControlParameter, Nrc, UdsRequest, UdsResponse};
use dpr_protocol::{obd, EsvFormula};
use proptest::prelude::*;

fn arb_io_param() -> impl Strategy<Value = IoControlParameter> {
    prop_oneof![
        Just(IoControlParameter::ReturnControlToEcu),
        Just(IoControlParameter::ResetToDefault),
        Just(IoControlParameter::FreezeCurrentState),
        Just(IoControlParameter::ShortTermAdjustment),
    ]
}

proptest! {
    /// Every UDS request survives encode → parse.
    #[test]
    fn uds_request_round_trip(
        dids in proptest::collection::vec(any::<u16>(), 1..6),
        did in any::<u16>(),
        param in arb_io_param(),
        state in proptest::collection::vec(any::<u8>(), 0..8),
        session in any::<u8>(),
    ) {
        let samples = vec![
            UdsRequest::ReadDataById { dids: dids.iter().map(|&d| Did(d)).collect() },
            UdsRequest::IoControl { did: Did(did), param, state },
            UdsRequest::SessionControl { session },
            UdsRequest::TesterPresent,
        ];
        for req in samples {
            prop_assert_eq!(UdsRequest::parse(&req.encode()).unwrap(), req);
        }
    }

    /// A read-data-by-id response built from distinct DIDs always splits
    /// back into the same records, as long as no record's data embeds the
    /// following DID's byte pattern.
    #[test]
    fn uds_read_response_round_trip(
        raw in proptest::collection::vec((0u16..0x8000, 1usize..5, any::<u8>()), 1..5)
    ) {
        // Make DIDs distinct and data bytes high (>= 0x80) so that record
        // data can never collide with a DID pattern (DIDs < 0x8000 have a
        // high byte < 0x80).
        let mut seen = std::collections::BTreeSet::new();
        let records: Vec<(Did, Vec<u8>)> = raw
            .into_iter()
            .filter(|(d, _, _)| seen.insert(*d))
            .map(|(d, n, b)| (Did(d), vec![b | 0x80; n]))
            .collect();
        prop_assume!(!records.is_empty());
        let dids: Vec<Did> = records.iter().map(|(d, _)| *d).collect();
        let rsp = UdsResponse::ReadDataById { records: records.clone() };
        let parsed = UdsResponse::parse(&rsp.encode(), &dids).unwrap();
        prop_assert_eq!(parsed, rsp);
    }

    /// Negative responses round trip for every NRC byte.
    #[test]
    fn negative_response_round_trip(sid in any::<u8>(), code in any::<u8>()) {
        let rsp = UdsResponse::Negative { sid, nrc: Nrc::from_raw(code) };
        let bytes = rsp.encode();
        prop_assert_eq!(bytes[0], 0x7F);
        prop_assert_eq!(UdsResponse::parse(&bytes, &[]).unwrap(), rsp);
    }

    /// Every KWP request/response survives encode → parse.
    #[test]
    fn kwp_round_trip(
        local in any::<u8>(),
        common in any::<u16>(),
        ecr in proptest::collection::vec(any::<u8>(), 0..8),
        esvs in proptest::collection::vec(any::<(u8, u8, u8)>(), 1..6),
    ) {
        let reqs = vec![
            KwpRequest::ReadDataByLocalId { local_id: LocalId(local) },
            KwpRequest::IoControlByLocalId { local_id: LocalId(local), ecr: ecr.clone() },
            KwpRequest::IoControlByCommonId { common_id: common, ecr },
        ];
        for req in reqs {
            prop_assert_eq!(KwpRequest::parse(&req.encode()).unwrap(), req);
        }
        let rsp = KwpResponse::ReadDataByLocalId {
            local_id: LocalId(local),
            esvs: esvs
                .into_iter()
                .map(|(f, a, b)| RawEsv { f_type: f, x0: a, x1: b })
                .collect(),
        };
        prop_assert_eq!(KwpResponse::parse(&rsp.encode()).unwrap(), rsp);
    }

    /// OBD-II responses round trip for every standard PID and any data.
    #[test]
    fn obd_round_trip(pid in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 1..5)) {
        let rsp = obd::encode_response(obd::Pid(pid), &data);
        let (p, d) = obd::parse_response(&rsp).unwrap();
        prop_assert_eq!(p, obd::Pid(pid));
        prop_assert_eq!(d, &data[..]);
    }

    /// PID encode → decode error is bounded by one quantization step of the
    /// formula for in-range values.
    #[test]
    fn pid_quantization_bounded(idx in 0usize..14, frac in 0.0f64..=1.0) {
        let specs = obd::standard_pids();
        let spec = &specs[idx % specs.len()];
        let q = &spec.quantity;
        let value = q.min() + (q.max() - q.min()) * frac;
        let back = spec.decode(&spec.encode(value));
        let step = match spec.formula {
            EsvFormula::Affine2 { a, .. } | EsvFormula::Linear { a, .. } => a.abs(),
            _ => 1.0,
        };
        prop_assert!((back - value).abs() <= step + 1e-9);
    }

    /// Request/response parsers never panic on arbitrary bytes.
    #[test]
    fn parsers_are_total(payload in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = UdsRequest::parse(&payload);
        let _ = UdsResponse::parse(&payload, &[Did(0x1234)]);
        let _ = KwpRequest::parse(&payload);
        let _ = KwpResponse::parse(&payload);
        let _ = obd::parse_request(&payload);
        let _ = obd::parse_response(&payload);
    }
}
