//! Property test for the pool's worker-time accounting: for every
//! worker of every profiled `par_map` call, `busy + wait + idle ≈ wall`
//! (the invariant `dpr-prof` documents), and the chunk/item bookkeeping
//! is exact.
//!
//! `busy` and `wait` are measured with monotonic clocks and `idle` is
//! the saturating remainder, so the sum can only exceed the wall time
//! by clock-read jitter — the tolerance below absorbs that plus
//! microsecond truncation on a loaded single-core CI machine.
//!
//! Single `#[test]` on purpose: each case reads back its own call from
//! the process-wide profile store via `recent.last()`, which sibling
//! tests in this binary would race.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn busy_wait_idle_sums_to_wall(
        n in 8usize..300,
        workers in 2usize..6,
        spin in 1u32..40,
    ) {
        let items: Vec<u32> = (0..n as u32).collect();
        let out = dpr_prof::with_label("acct.case", || {
            dpr_par::Pool::new(workers).par_map(&items, |x| {
                // Deterministic busy work of varying cost per item.
                let mut acc = *x;
                for i in 0..(spin * 50) {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                acc
            })
        });
        prop_assert_eq!(out.len(), n);

        let snap = dpr_prof::snapshot();
        let call = snap.recent.last().expect("call was recorded");
        prop_assert_eq!(call.label.as_str(), "acct.case");
        prop_assert_eq!(call.items, n as u64);
        prop_assert!(!call.inline);
        prop_assert_eq!(call.workers.len(), workers.min(n));

        // Exact bookkeeping: every chunk and item is attributed to
        // exactly one worker.
        let chunks: u64 = call.workers.iter().map(|w| w.chunks).sum();
        let mapped: u64 = call.workers.iter().map(|w| w.items).sum();
        prop_assert_eq!(chunks, call.chunks);
        prop_assert_eq!(mapped, call.items);

        // The accounting invariant, per worker. The sum is never below
        // wall (idle is the remainder) and only exceeds it by jitter.
        let tolerance = call.wall_us / 10 + 2_000;
        for w in &call.workers {
            let sum = w.busy_us + w.wait_us + w.idle_us;
            prop_assert!(
                sum >= call.wall_us,
                "worker {}: busy {} + wait {} + idle {} < wall {}",
                w.worker, w.busy_us, w.wait_us, w.idle_us, call.wall_us
            );
            prop_assert!(
                sum <= call.wall_us + tolerance,
                "worker {}: busy {} + wait {} + idle {} exceeds wall {} beyond jitter",
                w.worker, w.busy_us, w.wait_us, w.idle_us, call.wall_us
            );
        }

        // Derived ratios stay in range.
        let util = call.utilization();
        prop_assert!((0.0..=1.0).contains(&util), "utilization {util}");
        prop_assert!(call.imbalance() >= 1.0);
        prop_assert!((0.0..=1.0).contains(&call.steal_ratio()));
        prop_assert!(call.spinup_us <= call.wall_us);
        prop_assert!(call.teardown_us <= call.wall_us);
    }
}
