//! Pool workers inherit the submitting thread's `dpr-log` correlation
//! context: a record emitted inside a mapped function carries the
//! submitter's `job_id` no matter which pool thread ran it.

use dpr_log::{FieldValue, LogSink, Record};
use parking_lot::Mutex;
use std::sync::Arc;

struct Collect(Mutex<Vec<Arc<Record>>>);

impl LogSink for Collect {
    fn record(&self, record: &Arc<Record>) {
        self.0.lock().push(Arc::clone(record));
    }
}

#[test]
fn pool_workers_inherit_submitter_context() {
    let tap = Arc::new(Collect(Mutex::new(Vec::new())));
    let tap_id = dpr_log::add_sink(Arc::clone(&tap) as Arc<dyn LogSink>);

    let pool = dpr_par::Pool::new(4);
    let _ctx = dpr_log::push_context("job_id", "job-000042");
    let items: Vec<u64> = (0..64).collect();
    let out = pool.par_map(&items, |&x| {
        dpr_log::info("par.test", "mapped", &[("x", FieldValue::U64(x))]);
        x * 2
    });
    dpr_log::remove_sink(tap_id);

    assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    let records = tap.0.lock();
    let mapped: Vec<&Arc<Record>> = records
        .iter()
        .filter(|r| r.target == "par.test")
        .collect();
    assert_eq!(mapped.len(), items.len());
    for record in mapped {
        assert_eq!(
            record.field("job_id"),
            Some(&FieldValue::Str("job-000042".into())),
            "record lost its inherited context: {record:?}"
        );
    }
}
