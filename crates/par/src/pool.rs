//! The process-wide persistent worker pool.
//!
//! Workers (`gp-worker-N`) are OS threads spawned lazily — up to the
//! largest *extra* worker count any call has requested — and parked on a
//! condvar between jobs. A job is one `par_map` call: the submitter
//! publishes a type-erased [`Task`] plus a participant count, wakes the
//! pool, **claims worker slot 0 itself**, and blocks until every
//! participant has decremented the active counter. Caller participation
//! matters twice over: a 2-thread call needs only one condvar wake-up
//! instead of two, and the submitting thread — already hot, already
//! scheduled — starts chewing chunks immediately, so in the worst case
//! (pool threads scheduled late) the call degenerates to inline speed
//! instead of paying wake-up latency on the critical path. Because the
//! submitter cannot return before the job completes, the task may borrow
//! the caller's stack (items, closures, result slots) without `'static`
//! bounds — that is the invariant the `unsafe` below leans on.
//!
//! Parked workers briefly spin (bounded [`PARK_SPINS`] yields) before
//! sleeping on the condvar, so back-to-back jobs — the GP fitness loop
//! publishes one per generation — are usually picked up without paying
//! a kernel wake-up at all.
//!
//! There is exactly one job slot: concurrent top-level `par_map` calls
//! serialize on it, and a nested call from inside a worker runs inline
//! (see [`in_worker`]) since waiting for the slot from a worker would
//! deadlock the pool against itself.

#![allow(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Raw per-worker samples for one job, all relative to the call's entry
/// instant. Converted into `dpr_prof::WorkerStats` by the caller.
#[derive(Debug, Clone, Default)]
pub(crate) struct RawWorker {
    /// Microseconds from call entry to the worker picking up the job.
    pub(crate) enter_us: u64,
    /// Microseconds from call entry to the worker finishing the job.
    pub(crate) exit_us: u64,
    /// Microseconds inside `init` + the mapped function.
    pub(crate) busy_us: u64,
    /// Microseconds claiming chunks and storing result slots.
    pub(crate) wait_us: u64,
    /// Chunks claimed.
    pub(crate) chunks: u64,
    /// Items mapped.
    pub(crate) items: u64,
    /// Allocations made on this thread during the job (cumulative-delta
    /// from the counting allocator; zero when it is off or absent).
    pub(crate) allocs: u64,
    /// Bytes requested by those allocations.
    pub(crate) alloc_bytes: u64,
}

/// Everything a worker needs to execute one `par_map` call, borrowed
/// from the submitting frame.
pub(crate) struct Ctx<'a, T, S, R, FI, F> {
    pub(crate) items: &'a [T],
    pub(crate) init: &'a FI,
    pub(crate) f: &'a F,
    pub(crate) chunk: usize,
    pub(crate) n_chunks: usize,
    pub(crate) cursor: &'a AtomicUsize,
    pub(crate) slots: &'a Mutex<Vec<Option<Vec<R>>>>,
    pub(crate) stats: &'a Mutex<Vec<RawWorker>>,
    pub(crate) started: Instant,
    pub(crate) _state: std::marker::PhantomData<fn() -> S>,
}

/// What `run_job` hands back to the caller.
pub(crate) struct JobOutcome {
    /// OS threads this call spawned (0 once the pool is warm).
    pub(crate) spawned: u64,
    /// The first worker panic, if any; the caller resumes it after
    /// recording the call profile.
    pub(crate) panic: Option<Box<dyn Any + Send>>,
}

/// A type-erased pointer to a [`Ctx`] on the submitter's stack plus its
/// monomorphized runner.
///
/// SAFETY: `data` is only dereferenced by `run` (which casts it back to
/// the exact `Ctx` type it was erased from), only between job publish
/// and the submitter observing `active == 0` — a window during which
/// the submitter is blocked and the `Ctx` borrow is live. `Send`/`Sync`
/// are sound because `run_job` requires `T: Sync`, `R: Send`, and
/// `Sync` closures, making the pointed-to `Ctx` shareable.
#[derive(Clone, Copy)]
struct Task {
    data: *const (),
    run: unsafe fn(*const (), usize),
}

unsafe impl Send for Task {}
unsafe impl Sync for Task {}

#[derive(Clone)]
struct Job {
    task: Task,
    workers: usize,
    epoch: u64,
    registry: Arc<dpr_telemetry::Registry>,
    /// The submitter's correlation context (`job_id`, `req_id`), carried
    /// onto pool workers so their log records join the same story.
    log_context: Arc<Vec<(&'static str, String)>>,
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
}

#[derive(Default)]
struct State {
    job: Option<Job>,
    epoch: u64,
    active: usize,
    spawned: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for the next job.
    work: Condvar,
    /// Submitters wait here for job completion / slot availability.
    done: Condvar,
}

static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();

fn shared() -> &'static Arc<Shared> {
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    })
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a>(cv: &Condvar, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on pool worker threads; nested `par_map` calls check this and
/// run inline instead of re-entering the single job slot.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Sets the thread's in-worker flag for a scope, restoring it on drop
/// (including across an unwinding panic in the caller's chunk loop).
struct WorkerScope {
    prev: bool,
}

impl WorkerScope {
    fn enter() -> WorkerScope {
        let prev = IN_WORKER.with(Cell::get);
        IN_WORKER.with(|flag| flag.set(true));
        WorkerScope { prev }
    }
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|flag| flag.set(prev));
    }
}

/// Bounded number of `yield_now` loops a worker spins through before
/// parking on the condvar. Back-to-back jobs (one per GP generation)
/// arrive well inside this window, skipping the kernel wake-up.
const PARK_SPINS: usize = 64;

/// Publishes `ctx` as one job for `workers` participants and blocks
/// until all of them finish. The submitter itself takes worker slot 0;
/// only `workers - 1` pool threads are woken. Returns the spawn count
/// and any panic.
pub(crate) fn run_job<T, S, R, FI, F>(ctx: &Ctx<'_, T, S, R, FI, F>, workers: usize) -> JobOutcome
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let shared = shared();
    let registry = dpr_telemetry::registry();
    let panic_slot: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
    let task = Task {
        data: (ctx as *const Ctx<'_, T, S, R, FI, F>).cast(),
        run: run_erased::<T, S, R, FI, F>,
    };
    // The caller is participant 0; the pool contributes the rest.
    let extras = workers - 1;
    let mut spawned = 0u64;
    {
        let mut st = lock(shared);
        while st.job.is_some() {
            st = wait(&shared.done, st);
        }
        while st.spawned < extras {
            let index = st.spawned;
            st.spawned += 1;
            spawned += 1;
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                // Named so trace exporters label each pool row.
                .name(format!("gp-worker-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("spawn dpr-par worker");
        }
        st.epoch += 1;
        st.job = Some(Job {
            task,
            workers: extras,
            epoch: st.epoch,
            registry,
            log_context: Arc::new(dpr_log::context_snapshot()),
            panic: Arc::clone(&panic_slot),
        });
        st.active = extras;
    }
    if extras > 0 {
        shared.work.notify_all();
    }
    // Claim slot 0 on the submitting thread while the pool wakes. The
    // in-worker flag makes any nested par_map inside the mapped function
    // run inline rather than deadlock on the job slot we hold.
    let caller_panic = {
        let _scope = WorkerScope::enter();
        // SAFETY: `ctx` is a live borrow on this very stack frame.
        catch_unwind(AssertUnwindSafe(|| run_typed(ctx, 0))).err()
    };
    {
        let mut st = lock(shared);
        while st.active > 0 {
            st = wait(&shared.done, st);
        }
        st.job = None;
    }
    // Free the job slot for any queued submitter.
    shared.done.notify_all();
    let mut panic = panic_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
    if panic.is_none() {
        panic = caller_panic;
    }
    JobOutcome { spawned, panic }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    IN_WORKER.with(|flag| flag.set(true));
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared);
            let mut spins = 0usize;
            loop {
                let mut claimed = None;
                if let Some(job) = &st.job {
                    if job.epoch > last_epoch {
                        // Mark the job seen even when we sit it out, so a
                        // non-participant never re-examines the same job.
                        last_epoch = job.epoch;
                        if index < job.workers {
                            claimed = Some(job.clone());
                        }
                    }
                }
                if let Some(job) = claimed {
                    break job;
                }
                if spins < PARK_SPINS {
                    // Spin briefly before parking: the next job usually
                    // follows within microseconds on the hot GP path, and
                    // re-checking after a yield beats a condvar round-trip.
                    spins += 1;
                    drop(st);
                    std::thread::yield_now();
                    st = lock(&shared);
                } else {
                    st = wait(&shared.work, st);
                }
            }
        };
        // Re-enter the caller's telemetry registry and log context for the
        // job's duration: both are thread-local, so without this hand-off
        // every span, counter, or log record emitted inside the mapped
        // function would lose its run attribution. The panic is caught
        // *inside* the scope so `scoped` always unwinds its stack cleanly.
        dpr_log::with_context(&job.log_context, || dpr_telemetry::scoped(Arc::clone(&job.registry), || {
            // SAFETY: the submitter blocks until we decrement `active`
            // below, so the `Ctx` behind `task.data` is still alive. The
            // caller holds stats slot 0, so pool thread N records as
            // worker N + 1.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe {
                (job.task.run)(job.task.data, index + 1)
            }));
            if let Err(payload) = result {
                let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }));
        let mut st = lock(&shared);
        st.active -= 1;
        let finished = st.active == 0;
        drop(st);
        if finished {
            shared.done.notify_all();
        }
    }
}

/// Monomorphized trampoline: recovers the concrete `Ctx` type and runs
/// the worker body.
///
/// SAFETY: called only with a `data` pointer produced from the same
/// `Ctx<'_, T, S, R, FI, F>` instantiation in `run_job`, while that
/// `Ctx` is alive (the submitter is blocked).
unsafe fn run_erased<T, S, R, FI, F>(data: *const (), worker: usize)
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let ctx = &*data.cast::<Ctx<'_, T, S, R, FI, F>>();
    run_typed(ctx, worker);
}

/// One worker's share of a job: claim chunks off the cursor until none
/// remain, timing every phase. `wait` is cursor-claim plus slot-store
/// time; `busy` is `init` plus the mapped function.
fn run_typed<T, S, R, FI, F>(ctx: &Ctx<'_, T, S, R, FI, F>, worker: usize)
where
    FI: Fn() -> S,
    F: Fn(&mut S, &T) -> R,
{
    let enter_us = ctx.started.elapsed().as_micros() as u64;
    let alloc_before = dpr_prof::alloc::thread_alloc_stats();
    let mut busy = Duration::ZERO;
    let mut wait_t = Duration::ZERO;
    let mut chunks = 0u64;
    let mut items = 0u64;

    let init_start = Instant::now();
    let mut state = (ctx.init)();
    busy += init_start.elapsed();

    loop {
        let claim_start = Instant::now();
        let c = ctx.cursor.fetch_add(1, Ordering::Relaxed);
        if c >= ctx.n_chunks {
            wait_t += claim_start.elapsed();
            break;
        }
        let start = c * ctx.chunk;
        let end = (start + ctx.chunk).min(ctx.items.len());
        let claimed = Instant::now();
        wait_t += claimed - claim_start;
        let out: Vec<R> = {
            let _span = dpr_telemetry::Span::enter("par.chunk");
            ctx.items[start..end]
                .iter()
                .map(|item| (ctx.f)(&mut state, item))
                .collect()
        };
        let mapped = Instant::now();
        busy += mapped - claimed;
        ctx.slots.lock().unwrap_or_else(|e| e.into_inner())[c] = Some(out);
        wait_t += mapped.elapsed();
        chunks += 1;
        items += (end - start) as u64;
    }

    let alloc = dpr_prof::alloc::thread_alloc_stats().since(alloc_before);
    let exit_us = ctx.started.elapsed().as_micros() as u64;
    let mut stats = ctx.stats.lock().unwrap_or_else(|e| e.into_inner());
    stats[worker] = RawWorker {
        enter_us,
        exit_us,
        busy_us: busy.as_micros() as u64,
        wait_us: wait_t.as_micros() as u64,
        chunks,
        items,
        allocs: alloc.allocs,
        alloc_bytes: alloc.bytes,
    };
}
