//! Deterministic data parallelism for the DP-Reverser stack.
//!
//! A std-only scoped chunked thread pool with a rayon-shaped [`par_map`]
//! API. The design goal is *bit-identical outputs regardless of thread
//! count*: inputs are split into fixed, index-ordered chunks, workers pull
//! chunks off an atomic cursor, and results are reassembled in input order
//! before returning. As long as the mapped function is pure (no shared
//! mutable state, no RNG), `par_map` with 1 thread and with N threads
//! produce the same `Vec` — which is what lets the GP engine parallelize
//! fitness scoring without perturbing its deterministic evolution.
//!
//! # Thread-count resolution
//!
//! [`threads`] resolves, in order:
//!
//! 1. the `DPR_THREADS` environment variable (clamped to at least 1;
//!    unparsable values are ignored),
//! 2. [`std::thread::available_parallelism`],
//! 3. a fallback of 1.
//!
//! `DPR_THREADS=1` (or a single-core machine) makes every call run inline
//! on the caller's thread — no threads are spawned and no synchronization
//! is paid.
//!
//! # Telemetry
//!
//! Workers are named `gp-worker-N` and run inside the caller's scoped
//! telemetry registry (`dpr_telemetry::scoped` is thread-local, so the
//! pool re-enters it on each worker). Every claimed chunk is timed under
//! a `par.chunk` span, which is what makes pool rows visible in exported
//! traces; metrics recorded by the mapped function land in the calling
//! run's registry, not the process-wide global one.
//!
//! # Example
//!
//! ```
//! let squares = dpr_par::par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "DPR_THREADS";

/// The effective worker-thread count: `DPR_THREADS` if set and valid,
/// otherwise the machine's available parallelism, otherwise 1.
///
/// Read on every call (not cached) so tests and long-lived processes can
/// retune the pool between runs.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A chunked fork-join pool over scoped threads.
///
/// The pool is a configuration object, not a set of live threads: each
/// [`par_map`](Pool::par_map) call spawns scoped workers and joins them
/// before returning, so borrowed inputs work without `'static` bounds and
/// a panic in any worker propagates to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`threads`] (the `DPR_THREADS` override).
    pub fn from_env() -> Self {
        Pool::new(threads())
    }

    /// The worker count this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Deterministic for pure `f`: the output is identical for any thread
    /// count, including 1.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_init(items, || (), |(), item| f(item))
    }

    /// Like [`par_map`](Pool::par_map), but hands each worker a private
    /// scratch state built by `init` (rayon's `map_init` shape). `init`
    /// runs once per worker, so per-item allocation (evaluation stacks,
    /// buffers) is amortized across the worker's whole share of the input.
    ///
    /// The state must not influence results (it is scratch, not an
    /// accumulator) or determinism across thread counts is lost.
    pub fn par_map_init<T, S, R, FI, F>(&self, items: &[T], init: FI, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        FI: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut state = init();
            return items.iter().map(|item| f(&mut state, item)).collect();
        }

        // Chunks several times smaller than a worker's fair share keep the
        // pool load-balanced when item costs vary (GP trees differ wildly
        // in size) without paying cursor contention per item.
        let chunk = n.div_ceil(workers * 4).max(1);
        let n_chunks = n.div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Vec<R>>>> =
            Mutex::new((0..n_chunks).map(|_| None).collect());

        // Workers inherit the caller's telemetry registry: scoped registries
        // are thread-local, so without this hand-off every span or counter
        // recorded inside `f` would leak to the process-wide global registry
        // instead of the run that spawned the work.
        let registry = dpr_telemetry::registry();

        std::thread::scope(|scope| {
            let cursor = &cursor;
            let slots = &slots;
            let init = &init;
            let f = &f;
            for w in 0..workers {
                let registry = std::sync::Arc::clone(&registry);
                std::thread::Builder::new()
                    // Named so trace exporters label each pool row.
                    .name(format!("gp-worker-{w}"))
                    .spawn_scoped(scope, move || {
                        dpr_telemetry::scoped(registry, || {
                            let mut state = init();
                            loop {
                                let c = cursor.fetch_add(1, Ordering::Relaxed);
                                if c >= n_chunks {
                                    break;
                                }
                                let _span = dpr_telemetry::Span::enter("par.chunk");
                                let start = c * chunk;
                                let end = (start + chunk).min(n);
                                let out: Vec<R> = items[start..end]
                                    .iter()
                                    .map(|item| f(&mut state, item))
                                    .collect();
                                slots.lock().expect("result mutex")[c] = Some(out);
                            }
                        })
                    })
                    .expect("spawn dpr-par worker");
            }
        });

        slots
            .into_inner()
            .expect("result mutex")
            .into_iter()
            .flat_map(|slot| slot.expect("every chunk was claimed and filled"))
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Maps `f` over `items` on the [`Pool::from_env`] pool, in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Pool::from_env().par_map(items, f)
}

/// [`Pool::par_map_init`] on the [`Pool::from_env`] pool.
pub fn par_map_init<T, S, R, FI, F>(items: &[T], init: FI, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    Pool::from_env().par_map_init(items, init, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = Pool::new(workers).par_map(&items, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        // A float reduction whose value would drift if ordering changed.
        let items: Vec<f64> = (0..777).map(|i| f64::from(i) * 0.3127).collect();
        let f = |x: &f64| (x.sin() * 1e6).mul_add(0.1, x.sqrt());
        let one = Pool::new(1).par_map(&items, f);
        for workers in [2, 5, 16] {
            let many = Pool::new(workers).par_map(&items, f);
            let same = one
                .iter()
                .zip(&many)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "results differ between 1 and {workers} threads");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new(4).par_map(&empty, |x| *x).is_empty());
        assert_eq!(Pool::new(4).par_map(&[7u8], |x| *x + 1), vec![8]);
    }

    #[test]
    fn init_state_is_per_worker_scratch() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = Pool::new(4).par_map_init(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u32>::new()
            },
            |scratch, x| {
                scratch.push(*x);
                *x + 1
            },
        );
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
        // One init per worker, not per item.
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn pool_clamps_to_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn workers_record_into_the_callers_scoped_registry() {
        let reg = std::sync::Arc::new(dpr_telemetry::Registry::new());
        let collector = std::sync::Arc::new(dpr_telemetry::Collector::new());
        reg.add_sink(collector.clone());
        let items: Vec<u64> = (0..64).collect();
        let out = dpr_telemetry::scoped(std::sync::Arc::clone(&reg), || {
            Pool::new(4).par_map(&items, |x| {
                dpr_telemetry::counter("par.test_items").inc(1);
                // Slow enough that one worker cannot drain every chunk
                // before its siblings finish spawning.
                std::thread::sleep(std::time::Duration::from_millis(1));
                x + 1
            })
        });
        assert_eq!(out.len(), 64);
        let snap = reg.snapshot();
        // Counters from inside the mapped fn reached the scoped registry…
        assert_eq!(snap.counters.get("par.test_items"), Some(&64));
        // …and each claimed chunk closed a par.chunk span on a named,
        // distinctly-identified worker thread.
        let records = collector.records();
        let chunks: Vec<_> = records.iter().filter(|r| r.path == "par.chunk").collect();
        assert!(!chunks.is_empty());
        assert_eq!(
            snap.histograms["span.par.chunk"].count,
            chunks.len() as u64
        );
        let tids: std::collections::BTreeSet<u64> = chunks.iter().map(|r| r.tid).collect();
        assert!(tids.len() > 1, "expected multiple worker rows, got {tids:?}");
        assert!(chunks.iter().all(|r| {
            r.thread
                .as_deref()
                .is_some_and(|name| name.starts_with("gp-worker-"))
        }));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let items: Vec<u32> = (0..64).collect();
            Pool::new(4).par_map(&items, |x| {
                assert!(*x != 13, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }
}
